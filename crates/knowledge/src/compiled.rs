//! Compiled annotation engine: one pass per text node, all types at
//! once.
//!
//! The naive path ([`crate::recognizer::Recognizer::recognize`]) is
//! re-run per type per node: each dictionary type re-normalizes the
//! text and probes every word n-gram against its hash map, and each
//! pattern type restarts its regex scan. [`CompiledRecognizerSet`]
//! folds a whole [`RecognizerSet`] into three engines built once per
//! domain:
//!
//! * one [`AhoCorasick`] automaton over the normalized entries of
//!   *every* dictionary type — a single left-to-right scan reports
//!   every dictionary hit for every type;
//! * one [`MultiRegex`] Pike-VM program folding every predefined
//!   pattern (scan semantics) and user regex (whole-string semantics)
//!   — one sweep scores all of them;
//! * per-call scratch ([`MatchScratch`]) so the steady state allocates
//!   nothing.
//!
//! **Equivalence contract**: for every type in the set,
//! [`CompiledRecognizerSet::match_all`] reports exactly the
//! `TypeMatch` that `Recognizer::recognize` reports on the same text —
//! including every tie-breaking rule (longest phrase first, first
//! window wins, first pattern wins coverage ties, the 20% dictionary
//! and 40% pattern coverage floors). The differential tests in this
//! module and in `tests/annotation_equivalence.rs` enforce it.

use crate::aho::{AhoCorasick, AhoCorasickBuilder};
use crate::gazetteer::normalize_into;
use crate::recognizer::{
    Recognizer, RecognizerSet, TypeMatch, MAX_PHRASE_WORDS, MIN_DICT_COVERAGE,
};
use crate::regex::{MultiRegex, RegexScratch};

/// How one entity type is evaluated by the compiled engine.
#[derive(Debug, Clone)]
enum CompiledKind {
    /// Hits come from the shared dictionary automaton.
    Dictionary,
    /// Whole-string pattern at `slot` in the multi-regex program.
    UserRegex { slot: usize, confidence: f64 },
    /// Scan patterns at `slots` (in declaration order) in the
    /// multi-regex program.
    Predefined {
        slots: std::ops::Range<usize>,
        confidence: f64,
    },
}

/// One dictionary pattern in the shared automaton (index = pattern id).
#[derive(Debug, Clone)]
struct DictPat {
    /// Index into `types` of the owning dictionary type.
    type_idx: u32,
    /// Entry confidence.
    confidence: f64,
    /// Starts and ends with an alphanumeric char: eligible for the
    /// embedded-phrase path (a junk-trimmed phrase always does; keys
    /// with edge junk can only match the whole trimmed text exactly).
    phrase_ok: bool,
}

/// A word of the normalized text (byte positions, matching the
/// byte-level automaton).
#[derive(Debug, Clone, Copy)]
struct WordInfo {
    /// One past the word's last byte (words sort by `end`, which is
    /// all the hit→window mapping needs).
    end: u32,
    /// Start of the first alphanumeric char and exclusive end of the
    /// last one, if any (`None` for all-junk words, which phrase
    /// trimming can consume entirely).
    alnum: Option<(u32, u32)>,
}

/// Per-dictionary-type accumulator for one `match_all` call.
#[derive(Debug, Clone, Copy, Default)]
struct DictState {
    /// Confidence of an exact whole-text match, if seen.
    exact: Option<f64>,
    /// Best embedded phrase: word count (0 = none), start word,
    /// confidence. Larger `n` wins; at equal `n` the smaller `s` wins
    /// — exactly the naive scan order.
    n: u32,
    s: u32,
    conf: f64,
}

/// Reusable per-thread scratch for [`CompiledRecognizerSet::match_all`].
/// All buffers grow to the high-water mark and are reused; the steady
/// state performs no allocations.
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Normalized text (lowercased, single-space-joined words).
    norm: String,
    words: Vec<WordInfo>,
    /// Raw automaton hits `(pattern, end_byte)` of the current text.
    hits: Vec<(u32, u32)>,
    dict_state: Vec<DictState>,
    regex: RegexScratch,
    pat_results: Vec<Option<(usize, usize)>>,
}

impl MatchScratch {
    pub fn new() -> MatchScratch {
        MatchScratch::default()
    }
}

/// A [`RecognizerSet`] compiled for one-pass multi-type matching. Build
/// once per domain ([`CompiledRecognizerSet::compile`]), share freely:
/// matching is a pure read (`Send + Sync`), all mutable state lives in
/// the caller's [`MatchScratch`].
#[derive(Debug, Clone, Default)]
pub struct CompiledRecognizerSet {
    /// Type names in annotation order (Algorithm 1).
    types: Vec<String>,
    kinds: Vec<CompiledKind>,
    ac: AhoCorasick,
    /// Indexed by automaton pattern id.
    dict_pats: Vec<DictPat>,
    multi: MultiRegex,
    has_dict: bool,
}

impl CompiledRecognizerSet {
    /// Compile `set`. Deterministic: dictionary entries feed the
    /// automaton in sorted key order, types in annotation order.
    pub fn compile(set: &RecognizerSet) -> CompiledRecognizerSet {
        objectrunner_obs::global_count("objectrunner.knowledge.compile.engines", 1);
        let types: Vec<String> = set
            .annotation_order()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let mut kinds = Vec::with_capacity(types.len());
        let mut builder = AhoCorasickBuilder::new();
        let mut dict_pats = Vec::new();
        let mut multi = MultiRegex::new();
        let mut has_dict = false;
        for (t, name) in types.iter().enumerate() {
            let rec = set.get(name).expect("annotation_order lists set members");
            match rec {
                Recognizer::Dictionary(g) => {
                    has_dict = true;
                    let mut entries: Vec<(&str, f64)> = g
                        .iter_normalized()
                        .map(|(k, e)| (k, e.confidence))
                        .collect();
                    entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
                    for (key, confidence) in entries {
                        let first_alnum = key.chars().next().is_some_and(char::is_alphanumeric);
                        let last_alnum = key.chars().next_back().is_some_and(char::is_alphanumeric);
                        let id = builder.insert(key);
                        debug_assert_eq!(id as usize, dict_pats.len());
                        dict_pats.push(DictPat {
                            type_idx: t as u32,
                            confidence,
                            phrase_ok: first_alnum && last_alnum,
                        });
                    }
                    kinds.push(CompiledKind::Dictionary);
                }
                Recognizer::UserRegex { regex, confidence } => {
                    let slot = multi.push_full(regex);
                    kinds.push(CompiledKind::UserRegex {
                        slot,
                        confidence: *confidence,
                    });
                }
                Recognizer::Predefined {
                    patterns,
                    confidence,
                    ..
                } => {
                    let start = multi.len();
                    for p in patterns {
                        multi.push_find(p);
                    }
                    kinds.push(CompiledKind::Predefined {
                        slots: start..multi.len(),
                        confidence: *confidence,
                    });
                }
            }
        }
        CompiledRecognizerSet {
            types,
            kinds,
            ac: builder.build(),
            dict_pats,
            multi,
            has_dict,
        }
    }

    /// Type names in annotation order.
    pub fn type_names(&self) -> impl Iterator<Item = &str> {
        self.types.iter().map(String::as_str)
    }

    /// Number of types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Name of type `idx` (the indices reported by
    /// [`CompiledRecognizerSet::match_all`]).
    pub fn type_name(&self, idx: u32) -> &str {
        &self.types[idx as usize]
    }

    /// Index of `name`, if registered.
    pub fn type_index(&self, name: &str) -> Option<u32> {
        self.types.iter().position(|t| t == name).map(|i| i as u32)
    }

    /// Match `text` against every type in one pass. `out` receives
    /// `(type_index, TypeMatch)` pairs in annotation order — exactly
    /// the types for which the naive `Recognizer::recognize` returns
    /// `Some`, with identical confidence and coverage.
    pub fn match_all(
        &self,
        text: &str,
        scratch: &mut MatchScratch,
        out: &mut Vec<(u32, TypeMatch)>,
    ) {
        out.clear();
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return;
        }
        if self.has_dict {
            self.scan_dictionaries(trimmed, scratch);
        }
        if !self.multi.is_empty() {
            if self.multi.could_match_in(trimmed) {
                self.multi
                    .run_into(trimmed, &mut scratch.regex, &mut scratch.pat_results);
            } else {
                scratch.pat_results.clear();
                scratch.pat_results.resize(self.multi.len(), None);
            }
        }
        for (t, kind) in self.kinds.iter().enumerate() {
            let m = match kind {
                CompiledKind::Dictionary => {
                    let st = &scratch.dict_state[t];
                    if let Some(confidence) = st.exact {
                        Some(TypeMatch {
                            confidence,
                            coverage: 1.0,
                        })
                    } else if st.n > 0 {
                        Some(TypeMatch {
                            confidence: st.conf,
                            coverage: st.n as f64 / scratch.words.len() as f64,
                        })
                    } else {
                        None
                    }
                }
                CompiledKind::UserRegex { slot, confidence } => {
                    scratch.pat_results[*slot].map(|_| TypeMatch {
                        confidence: *confidence,
                        coverage: 1.0,
                    })
                }
                CompiledKind::Predefined { slots, confidence } => {
                    // First pattern wins coverage ties (strictly-greater
                    // fold, same as the naive loop).
                    let mut best: Option<f64> = None;
                    for slot in slots.clone() {
                        if let Some((s, e)) = scratch.pat_results[slot] {
                            let coverage = (e - s) as f64 / trimmed.len() as f64;
                            if best.map(|b| coverage > b).unwrap_or(true) {
                                best = Some(coverage);
                            }
                        }
                    }
                    best.filter(|c| *c >= 0.4).map(|coverage| TypeMatch {
                        confidence: *confidence,
                        coverage,
                    })
                }
            };
            if let Some(m) = m {
                out.push((t as u32, m));
            }
        }
    }

    /// One automaton scan over the normalized text, accumulating the
    /// best exact/embedded dictionary match per type.
    fn scan_dictionaries(&self, trimmed: &str, scratch: &mut MatchScratch) {
        normalize_into(trimmed, &mut scratch.norm);
        scratch.dict_state.clear();
        scratch
            .dict_state
            .resize(self.kinds.len(), DictState::default());
        // Run the automaton first, collecting raw hits: most text
        // nodes have none, and word boundaries are only needed to
        // interpret hits — deferring the word scan skips it entirely
        // on the common miss path.
        let MatchScratch { norm, hits, .. } = scratch;
        hits.clear();
        self.ac
            .scan(norm.as_bytes(), |pat, end| hits.push((pat, end)));
        if scratch.hits.is_empty() {
            return;
        }
        // Word boundaries and their alphanumeric extents, in byte
        // positions of the normalized text (words are single-space
        // separated by construction, and the separator is one byte).
        scratch.words.clear();
        let mut in_word = false;
        let mut alnum: Option<(u32, u32)> = None;
        if scratch.norm.is_ascii() {
            // ASCII fast path: the separator is the byte `' '` and
            // `is_alphanumeric` degenerates to the ASCII test.
            for (i, &b) in scratch.norm.as_bytes().iter().enumerate() {
                if b == b' ' {
                    if in_word {
                        in_word = false;
                        scratch.words.push(WordInfo {
                            end: i as u32,
                            alnum: alnum.take(),
                        });
                    }
                } else {
                    in_word = true;
                    if b.is_ascii_alphanumeric() {
                        let end = (i + 1) as u32;
                        alnum = Some((alnum.map_or(i as u32, |(f, _)| f), end));
                    }
                }
            }
        } else {
            for (i, c) in scratch.norm.char_indices() {
                if c == ' ' {
                    if in_word {
                        in_word = false;
                        scratch.words.push(WordInfo {
                            end: i as u32,
                            alnum: alnum.take(),
                        });
                    }
                } else {
                    in_word = true;
                    if c.is_alphanumeric() {
                        let end = (i + c.len_utf8()) as u32;
                        alnum = Some((alnum.map_or(i as u32, |(f, _)| f), end));
                    }
                }
            }
        }
        let norm_len = scratch.norm.len() as u32;
        if in_word {
            scratch.words.push(WordInfo {
                end: norm_len,
                alnum,
            });
        }
        let w_count = scratch.words.len();

        // The naive scan caps phrases at min(MAX_PHRASE_WORDS, W-1)
        // words and requires at least two words in the text.
        let n_cap = if w_count >= 2 {
            MAX_PHRASE_WORDS.min(w_count - 1) as u32
        } else {
            0
        };
        let words = &scratch.words;
        let dict_state = &mut scratch.dict_state;
        // Replay the collected hits in scan order — identical state
        // updates to processing them inside the scan callback.
        for &(pat, end) in &scratch.hits {
            let p = &self.dict_pats[pat as usize];
            let hs = end - self.ac.pattern_len(pat);
            // Exact whole-text match (`g.get(trimmed)`): coverage 1.0.
            if hs == 0 && end == norm_len {
                dict_state[p.type_idx as usize].exact = Some(p.confidence);
            }
            if n_cap == 0 || !p.phrase_ok {
                continue;
            }
            // Embedded phrase: the hit must be exactly the junk-trimmed
            // content of some word window. The hit start must be the
            // start of the first alphanumeric char of its word, the hit
            // end the end of the last alphanumeric char of its word;
            // all-junk neighbor words can be absorbed by the trim,
            // widening the window.
            let he = end - 1; // a byte inside the hit's last char
            let wi = words.partition_point(|w| w.end <= hs);
            let wj = words.partition_point(|w| w.end <= he);
            if words[wi].alnum.map(|(f, _)| f) != Some(hs)
                || words[wj].alnum.map(|(_, l)| l) != Some(end)
            {
                continue;
            }
            let mut s_min = wi;
            while s_min > 0 && words[s_min - 1].alnum.is_none() {
                s_min -= 1;
            }
            let mut e_max = wj;
            while e_max + 1 < w_count && words[e_max + 1].alnum.is_none() {
                e_max += 1;
            }
            let st = &mut dict_state[p.type_idx as usize];
            for s in s_min..=wi {
                for e in wj..=e_max {
                    let n = (e - s + 1) as u32;
                    if n > n_cap {
                        continue;
                    }
                    // Same float computation as the naive path.
                    let coverage = n as f64 / w_count as f64;
                    if coverage < MIN_DICT_COVERAGE {
                        continue;
                    }
                    // Longest phrase wins; at equal length the earliest
                    // window wins (the naive scan order).
                    if n > st.n || (n == st.n && (s as u32) < st.s) {
                        st.n = n;
                        st.s = s as u32;
                        st.conf = p.confidence;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::Gazetteer;

    fn assert_equivalent(set: &RecognizerSet, texts: &[&str]) {
        let compiled = CompiledRecognizerSet::compile(set);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        for text in texts {
            compiled.match_all(text, &mut scratch, &mut out);
            for name in compiled.type_names() {
                let naive = set.get(name).expect("type").recognize(text);
                let idx = compiled.type_index(name).expect("indexed");
                let got = out.iter().find(|(t, _)| *t == idx).map(|(_, m)| m);
                match (naive, got) {
                    (None, None) => {}
                    (Some(n), Some(g)) => {
                        assert_eq!(n.confidence, g.confidence, "{name} conf on {text:?}");
                        assert_eq!(n.coverage, g.coverage, "{name} cov on {text:?}");
                    }
                    (n, g) => panic!("{name} diverged on {text:?}: naive={n:?} compiled={g:?}"),
                }
            }
        }
    }

    fn band_set() -> RecognizerSet {
        let mut bands = Gazetteer::new();
        bands.insert("Metallica", 0.95, 5.0);
        bands.insert("Iron Maiden", 0.9, 4.0);
        bands.insert("The Iron Echoes", 0.9, 2.0);
        bands.insert("Iron", 0.5, 9.0);
        let mut venues = Gazetteer::new();
        venues.insert("Madison Square Garden", 0.9, 3.0);
        venues.insert("Iron Maiden", 0.4, 8.0); // overlaps the band dict
        let mut set = RecognizerSet::new();
        set.insert("band", Recognizer::dictionary(bands));
        set.insert("venue", Recognizer::dictionary(venues));
        set.insert("date", Recognizer::predefined_date());
        set.insert("price", Recognizer::predefined_price());
        set.insert(
            "code",
            Recognizer::user_regex(r"[A-Z]{2}\d{4}", 0.9).expect("compiles"),
        );
        set
    }

    #[test]
    fn compiled_matches_naive_on_representative_texts() {
        assert_equivalent(
            &band_set(),
            &[
                "Metallica",
                "metallica",
                "Metallica!",
                "Metallica concert tickets",
                "Iron Maiden at Madison Square Garden",
                "The Iron Echoes",
                "Emma by The Iron Echoes",
                "Saturday August 8, 2010 8:00pm",
                "only $12.99 today",
                "$12.99",
                "AB1234",
                "xxAB1234",
                "",
                "   ",
                "!!! ---",
                "Iron",
                "iron iron iron iron iron iron iron iron",
            ],
        );
    }

    #[test]
    fn overlapping_types_both_reported() {
        let set = band_set();
        let compiled = CompiledRecognizerSet::compile(&set);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        compiled.match_all("Iron Maiden", &mut scratch, &mut out);
        let band = compiled.type_index("band").expect("band");
        let venue = compiled.type_index("venue").expect("venue");
        let band_m = out.iter().find(|(t, _)| *t == band).expect("band match");
        let venue_m = out.iter().find(|(t, _)| *t == venue).expect("venue match");
        assert_eq!(band_m.1.confidence, 0.9);
        assert_eq!(venue_m.1.confidence, 0.4);
    }

    #[test]
    fn single_word_with_punctuation_does_not_match() {
        // "Metallica!" fails the naive exact lookup and has only one
        // word, so the phrase path never runs — the compiled engine
        // must agree (the classic off-by-one trap for automatons).
        let set = band_set();
        let compiled = CompiledRecognizerSet::compile(&set);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        compiled.match_all("Metallica!", &mut scratch, &mut out);
        let band = compiled.type_index("band").expect("band");
        assert!(out.iter().all(|(t, _)| *t != band));
        // With a second word, junk trimming kicks in and it matches.
        compiled.match_all("Metallica !", &mut scratch, &mut out);
        assert!(out.iter().any(|(t, _)| *t == band));
    }

    #[test]
    fn longest_phrase_beats_shorter_one() {
        let set = band_set();
        let compiled = CompiledRecognizerSet::compile(&set);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        compiled.match_all("Emma by The Iron Echoes", &mut scratch, &mut out);
        let band = compiled.type_index("band").expect("band");
        let m = out.iter().find(|(t, _)| *t == band).expect("match");
        // "The Iron Echoes" (3 words / 5) at confidence 0.9, not the
        // embedded "Iron" (1 word) at 0.5.
        assert_eq!(m.1.confidence, 0.9);
        assert!((m.1.coverage - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn phrase_at_max_words_matches_and_beyond_does_not() {
        let mut g = Gazetteer::new();
        g.insert("a b c d e f", 0.9, 1.0);
        g.insert("a b c d e f g", 0.9, 1.0);
        let mut set = RecognizerSet::new();
        set.insert("t", Recognizer::dictionary(g));
        assert_equivalent(
            &set,
            &[
                "a b c d e f tail",
                "a b c d e f g tail",
                "head a b c d e f",
                "a b c d e f",
            ],
        );
    }

    #[test]
    fn empty_set_matches_nothing() {
        let set = RecognizerSet::new();
        let compiled = CompiledRecognizerSet::compile(&set);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        compiled.match_all("anything", &mut scratch, &mut out);
        assert!(out.is_empty());
        assert_eq!(compiled.type_count(), 0);
    }

    /// Compile-time guarantee backing shared use across workers.
    #[test]
    fn compiled_set_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledRecognizerSet>();
    }
}
