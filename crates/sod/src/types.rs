//! The SOD type algebra.
//!
//! "A set type is a pair `t = [{ti}, mi]` where `{ti}` denotes a set
//! of instances of type `ti` (atomic or not) and `mi` denotes a
//! multiplicity constraint … A tuple type denotes an unordered
//! collection of set or tuple types. A disjunction type denotes a pair
//! of mutually exclusive types. A Structured Object Description (SOD)
//! denotes any complex type." (paper §II-A)

use std::fmt;

/// Multiplicity constraints on set types: "n−m for at least n and at
/// most m, * for zero or more, + for one or more, ? for zero or one,
/// 1 for exactly one".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Multiplicity {
    /// Exactly one (`1`).
    One,
    /// Zero or one (`?`).
    Optional,
    /// Zero or more (`*`).
    Star,
    /// One or more (`+`).
    Plus,
    /// Between `min` and `max` inclusive (`n−m`).
    Range(u32, u32),
}

impl Multiplicity {
    /// Inclusive lower bound.
    pub fn min(&self) -> u32 {
        match self {
            Multiplicity::One | Multiplicity::Plus => 1,
            Multiplicity::Optional | Multiplicity::Star => 0,
            Multiplicity::Range(n, _) => *n,
        }
    }

    /// Inclusive upper bound, `None` = unbounded.
    pub fn max(&self) -> Option<u32> {
        match self {
            Multiplicity::One | Multiplicity::Optional => Some(1),
            Multiplicity::Star | Multiplicity::Plus => None,
            Multiplicity::Range(_, m) => Some(*m),
        }
    }

    /// Does `count` satisfy the constraint?
    pub fn accepts(&self, count: usize) -> bool {
        let count = count as u32;
        count >= self.min() && self.max().map(|m| count <= m).unwrap_or(true)
    }

    /// May the component be absent?
    pub fn is_optional(&self) -> bool {
        self.min() == 0
    }

    /// May the component repeat?
    pub fn is_repeating(&self) -> bool {
        self.max().map(|m| m > 1).unwrap_or(true)
    }
}

impl fmt::Display for Multiplicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Multiplicity::One => write!(f, "1"),
            Multiplicity::Optional => write!(f, "?"),
            Multiplicity::Star => write!(f, "*"),
            Multiplicity::Plus => write!(f, "+"),
            Multiplicity::Range(n, m) => write!(f, "{n}-{m}"),
        }
    }
}

/// A node of the SOD type tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SodNode {
    /// An entity (atomic) type, identified by its type name. The
    /// multiplicity covers the common "optional attribute" case
    /// (`?`) and repeated atomic fields (shorthand for a set of the
    /// entity type).
    Entity {
        type_name: String,
        multiplicity: Multiplicity,
    },
    /// An unordered collection of component types.
    Tuple {
        name: String,
        children: Vec<SodNode>,
    },
    /// A set of instances of the child type under a multiplicity.
    Set {
        child: Box<SodNode>,
        multiplicity: Multiplicity,
    },
    /// Two mutually exclusive alternatives.
    Disjunction(Box<SodNode>, Box<SodNode>),
}

impl SodNode {
    /// Collect the entity type names in document order.
    pub fn entity_types<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            SodNode::Entity { type_name, .. } => out.push(type_name),
            SodNode::Tuple { children, .. } => {
                for c in children {
                    c.entity_types(out);
                }
            }
            SodNode::Set { child, .. } => child.entity_types(out),
            SodNode::Disjunction(a, b) => {
                a.entity_types(out);
                b.entity_types(out);
            }
        }
    }

    /// Number of nodes in the type tree.
    pub fn size(&self) -> usize {
        1 + match self {
            SodNode::Entity { .. } => 0,
            SodNode::Tuple { children, .. } => children.iter().map(SodNode::size).sum(),
            SodNode::Set { child, .. } => child.size(),
            SodNode::Disjunction(a, b) => a.size() + b.size(),
        }
    }
}

impl fmt::Display for SodNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SodNode::Entity {
                type_name,
                multiplicity,
            } => {
                if *multiplicity == Multiplicity::One {
                    write!(f, "{type_name}")
                } else {
                    write!(f, "{type_name}{multiplicity}")
                }
            }
            SodNode::Tuple { name, children } => {
                write!(f, "{name}(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            SodNode::Set {
                child,
                multiplicity,
            } => write!(f, "{{{child}}}{multiplicity}"),
            SodNode::Disjunction(a, b) => write!(f, "({a} | {b})"),
        }
    }
}

/// A complete Structured Object Description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sod {
    root: SodNode,
}

impl Sod {
    /// Wrap a type tree as an SOD.
    pub fn new(root: SodNode) -> Sod {
        Sod { root }
    }

    /// The root type.
    pub fn root(&self) -> &SodNode {
        &self.root
    }

    /// All entity type names, in document order.
    pub fn entity_types(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.root.entity_types(&mut out);
        out
    }

    /// Entity type names that live under a set constructor (their
    /// values repeat within one object).
    pub fn set_entity_types(&self) -> Vec<&str> {
        fn walk<'a>(node: &'a SodNode, in_set: bool, out: &mut Vec<&'a str>) {
            match node {
                SodNode::Entity { type_name, .. } => {
                    if in_set {
                        out.push(type_name);
                    }
                }
                SodNode::Tuple { children, .. } => {
                    children.iter().for_each(|c| walk(c, in_set, out))
                }
                SodNode::Set { child, .. } => walk(child, true, out),
                SodNode::Disjunction(a, b) => {
                    walk(a, in_set, out);
                    walk(b, in_set, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, false, &mut out);
        out
    }

    /// Entity type names whose multiplicity admits absence.
    pub fn optional_entity_types(&self) -> Vec<&str> {
        fn walk<'a>(node: &'a SodNode, out: &mut Vec<&'a str>) {
            match node {
                SodNode::Entity {
                    type_name,
                    multiplicity,
                } => {
                    if multiplicity.is_optional() {
                        out.push(type_name);
                    }
                }
                SodNode::Tuple { children, .. } => children.iter().for_each(|c| walk(c, out)),
                SodNode::Set { child, .. } => walk(child, out),
                SodNode::Disjunction(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }
}

impl fmt::Display for Sod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)
    }
}

/// Fluent construction of tuple-rooted SODs.
///
/// ```
/// use objectrunner_sod::{Multiplicity, SodBuilder};
/// let sod = SodBuilder::tuple("book")
///     .entity("title", Multiplicity::One)
///     .set_of_entity("author", Multiplicity::Plus)
///     .entity("price", Multiplicity::One)
///     .entity("date", Multiplicity::Optional)
///     .build();
/// assert_eq!(sod.to_string(), "book(title, {author}+, price, date?)");
/// ```
#[derive(Debug, Clone)]
pub struct SodBuilder {
    name: String,
    children: Vec<SodNode>,
}

impl SodBuilder {
    /// Start a tuple type named `name`.
    pub fn tuple(name: &str) -> SodBuilder {
        SodBuilder {
            name: name.to_owned(),
            children: Vec::new(),
        }
    }

    /// Add an entity component.
    pub fn entity(mut self, type_name: &str, multiplicity: Multiplicity) -> Self {
        self.children.push(SodNode::Entity {
            type_name: type_name.to_owned(),
            multiplicity,
        });
        self
    }

    /// Add a set of an entity type (e.g. `{author}+`).
    pub fn set_of_entity(mut self, type_name: &str, multiplicity: Multiplicity) -> Self {
        self.children.push(SodNode::Set {
            child: Box::new(SodNode::Entity {
                type_name: type_name.to_owned(),
                multiplicity: Multiplicity::One,
            }),
            multiplicity,
        });
        self
    }

    /// Add a nested tuple component.
    pub fn nested(mut self, inner: SodBuilder) -> Self {
        self.children.push(inner.into_node());
        self
    }

    /// Add a set of a nested tuple (e.g. repeated records).
    pub fn set_of(mut self, inner: SodBuilder, multiplicity: Multiplicity) -> Self {
        self.children.push(SodNode::Set {
            child: Box::new(inner.into_node()),
            multiplicity,
        });
        self
    }

    /// Add a disjunction of two entity types.
    pub fn either(mut self, a: &str, b: &str) -> Self {
        self.children.push(SodNode::Disjunction(
            Box::new(SodNode::Entity {
                type_name: a.to_owned(),
                multiplicity: Multiplicity::One,
            }),
            Box::new(SodNode::Entity {
                type_name: b.to_owned(),
                multiplicity: Multiplicity::One,
            }),
        ));
        self
    }

    /// Finish into an [`Sod`].
    pub fn build(self) -> Sod {
        Sod::new(self.into_node())
    }

    fn into_node(self) -> SodNode {
        SodNode::Tuple {
            name: self.name,
            children: self.children,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicity_bounds() {
        assert!(Multiplicity::One.accepts(1));
        assert!(!Multiplicity::One.accepts(0));
        assert!(!Multiplicity::One.accepts(2));
        assert!(Multiplicity::Optional.accepts(0));
        assert!(Multiplicity::Optional.accepts(1));
        assert!(!Multiplicity::Optional.accepts(2));
        assert!(Multiplicity::Star.accepts(0));
        assert!(Multiplicity::Star.accepts(99));
        assert!(!Multiplicity::Plus.accepts(0));
        assert!(Multiplicity::Plus.accepts(5));
        assert!(Multiplicity::Range(2, 4).accepts(3));
        assert!(!Multiplicity::Range(2, 4).accepts(1));
        assert!(!Multiplicity::Range(2, 4).accepts(5));
    }

    #[test]
    fn multiplicity_display() {
        assert_eq!(Multiplicity::One.to_string(), "1");
        assert_eq!(Multiplicity::Optional.to_string(), "?");
        assert_eq!(Multiplicity::Star.to_string(), "*");
        assert_eq!(Multiplicity::Plus.to_string(), "+");
        assert_eq!(Multiplicity::Range(2, 5).to_string(), "2-5");
    }

    #[test]
    fn concert_sod_shape() {
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .nested(
                SodBuilder::tuple("location")
                    .entity("theater", Multiplicity::One)
                    .entity("address", Multiplicity::Optional),
            )
            .build();
        assert_eq!(
            sod.entity_types(),
            vec!["artist", "date", "theater", "address"]
        );
        assert_eq!(sod.optional_entity_types(), vec!["address"]);
        assert_eq!(
            sod.to_string(),
            "concert(artist, date, location(theater, address?))"
        );
    }

    #[test]
    fn book_sod_with_author_set() {
        let sod = SodBuilder::tuple("book")
            .entity("title", Multiplicity::One)
            .set_of_entity("author", Multiplicity::Plus)
            .entity("price", Multiplicity::One)
            .entity("date", Multiplicity::Optional)
            .build();
        assert_eq!(sod.entity_types(), vec!["title", "author", "price", "date"]);
        assert_eq!(sod.to_string(), "book(title, {author}+, price, date?)");
    }

    #[test]
    fn disjunction_lists_both_sides() {
        let sod = SodBuilder::tuple("listing")
            .either("price", "auction_bid")
            .build();
        assert_eq!(sod.entity_types(), vec!["price", "auction_bid"]);
        assert!(sod.to_string().contains('|'));
    }

    #[test]
    fn size_counts_nodes() {
        let sod = SodBuilder::tuple("t")
            .entity("a", Multiplicity::One)
            .set_of_entity("b", Multiplicity::Star)
            .build();
        // tuple + a + set + b
        assert_eq!(sod.root().size(), 4);
    }

    #[test]
    fn set_of_tuple_nests() {
        let sod = SodBuilder::tuple("publication")
            .entity("title", Multiplicity::One)
            .set_of(
                SodBuilder::tuple("authorship").entity("author", Multiplicity::One),
                Multiplicity::Plus,
            )
            .build();
        assert_eq!(sod.to_string(), "publication(title, {authorship(author)}+)");
    }
}
