//! # objectrunner-eval
//!
//! The paper's evaluation methodology (§IV-B) and the harness that
//! regenerates every table and figure:
//!
//! * [`classify`] — the golden-standard test: correct / partially
//!   correct / incorrect attributes and objects, and the two precision
//!   measures `Pc = Oc/No` and `Pp = (Oc+Op)/No`.
//! * [`runners`] — drive ObjectRunner, ExAlg and RoadRunner over a
//!   generated source and normalize their outputs.
//! * [`tables`] — Table I (per-source results), Table II (sample
//!   selection strategies) and Table III (system comparison).
//! * [`figures`] — Figure 6(a) object classification rates and 6(b)
//!   incompletely-managed source rates.
//!
//! Binaries: `table1`, `table2`, `table3`, `figure6`,
//! `dictionary_coverage` (Appendix A), `support_sweep` (Appendix B).

pub mod classify;
pub mod figures;
pub mod runners;
pub mod tables;

pub use classify::{classify_source, AttrStatus, ExtractedObject, ObjectStatus, SourceReport};
pub use runners::{run_exalg, run_objectrunner, run_roadrunner, SourceRun, SystemId};
