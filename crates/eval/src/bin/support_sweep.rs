//! Appendix B: the effect of the support parameter (3–5) and the
//! self-validation loop on publication-like sources.

use objectrunner_core::sample::SampleStrategy;
use objectrunner_eval::runners::run_objectrunner_custom;
use objectrunner_eval::tables::domain_precision;
use objectrunner_webgen::{knowledge, paper_corpus, Domain};

fn main() {
    objectrunner_eval::parse_stats_json_flag(std::env::args().skip(1).collect());
    eprintln!("generating publication sources…");
    let corpus = paper_corpus();
    let sources: Vec<_> = corpus
        .sites
        .iter()
        .filter(|s| s.domain == Domain::Publications)
        .map(objectrunner_webgen::generate_site)
        .collect();

    println!("APPENDIX B — SUPPORT PARAMETER SWEEP (Publications, %)");
    println!("{:<22} {:>8} {:>8}", "Support", "Pc", "Pp");
    for support in 3..=5usize {
        let reports: Vec<_> = sources
            .iter()
            .map(|s| {
                run_objectrunner_custom(
                    s,
                    SampleStrategy::SodBased,
                    knowledge::recognizers_for(Domain::Publications, 0.2),
                    (support, support),
                    None,
                )
                .report
            })
            .collect();
        let (pc, pp) = domain_precision(&reports.iter().collect::<Vec<_>>());
        println!(
            "{:<22} {:>8.2} {:>8.2}",
            format!("fixed {support}"),
            pc * 100.0,
            pp * 100.0
        );
    }
    // The self-validation loop varies support automatically (3–5).
    let reports: Vec<_> = sources
        .iter()
        .map(|s| {
            run_objectrunner_custom(
                s,
                SampleStrategy::SodBased,
                knowledge::recognizers_for(Domain::Publications, 0.2),
                (3, 5),
                None,
            )
            .report
        })
        .collect();
    let (pc, pp) = domain_precision(&reports.iter().collect::<Vec<_>>());
    println!(
        "{:<22} {:>8.2} {:>8.2}",
        "auto (3–5 loop)",
        pc * 100.0,
        pp * 100.0
    );
}
