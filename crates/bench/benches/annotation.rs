//! Annotation throughput: "if done naively, this step could dominate
//! the extraction costs" (§III-B). Measures recognizer matching over
//! cleaned pages and the full Algorithm 1 sample selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use objectrunner_bench::bench_source;
use objectrunner_core::annotate::{
    annotate_page, propagate_upwards_into, AnnotationMap, Annotator,
};
use objectrunner_core::exec::Executor;
use objectrunner_core::sample::{select_sample, SampleConfig, SampleStrategy};
use objectrunner_html::{clean_document, parse, CleanOptions, Document};
use objectrunner_webgen::{knowledge, Domain};
use std::hint::black_box;

fn docs_for(domain: Domain) -> Vec<Document> {
    bench_source(domain, 20)
        .pages
        .iter()
        .map(|h| {
            let mut d = parse(h);
            clean_document(&mut d, &CleanOptions::default());
            d
        })
        .collect()
}

fn annotate(c: &mut Criterion) {
    let mut group = c.benchmark_group("annotation");
    for domain in [Domain::Concerts, Domain::Books] {
        let docs = docs_for(domain);
        let recognizers = knowledge::recognizers_for(domain, 0.2);
        group.bench_with_input(
            BenchmarkId::new("annotate_20_pages", domain.name()),
            &docs,
            |b, docs| {
                b.iter(|| {
                    for doc in docs {
                        black_box(annotate_page(doc.clone(), &recognizers));
                    }
                });
            },
        );
    }
    group.finish();
}

/// Compiled engine vs the naive path above (`annotate_20_pages`), and
/// cold vs warm memo cache: `compiled_cold` rebuilds the `Annotator`
/// (and so re-matches every unique text) each iteration, while
/// `compiled_warm` reuses one annotator so every text is a memo hit.
fn compiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("annotation_compiled");
    for domain in [Domain::Concerts, Domain::Books] {
        let docs = docs_for(domain);
        let recognizers = knowledge::recognizers_for(domain, 0.2);
        let annotate_all = |annotator: &Annotator, docs: &[Document]| {
            let types = recognizers.annotation_order();
            for doc in docs {
                let mut map = AnnotationMap::new();
                annotator.annotate_types_into(doc, &mut map, &types);
                propagate_upwards_into(doc, &mut map);
                black_box(&map);
            }
        };
        group.bench_with_input(
            BenchmarkId::new("compiled_cold", domain.name()),
            &docs,
            |b, docs| {
                b.iter(|| annotate_all(&Annotator::new(&recognizers), docs));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compiled_warm", domain.name()),
            &docs,
            |b, docs| {
                let annotator = Annotator::new(&recognizers);
                annotate_all(&annotator, docs); // prime the memo
                b.iter(|| annotate_all(&annotator, docs));
            },
        );
    }
    group.finish();
}

fn sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_selection");
    group.sample_size(10);
    for strategy in [SampleStrategy::SodBased, SampleStrategy::Random(7)] {
        let docs = docs_for(Domain::Albums);
        let recognizers = knowledge::recognizers_for(Domain::Albums, 0.2);
        let sod = Domain::Albums.sod();
        let label = match strategy {
            SampleStrategy::SodBased => "sod_based",
            SampleStrategy::Random(_) => "random",
        };
        let exec = Executor::sequential();
        group.bench_function(BenchmarkId::new("algorithm1", label), |b| {
            b.iter(|| {
                black_box(
                    select_sample(
                        &docs,
                        &recognizers,
                        &sod,
                        &SampleConfig {
                            sample_size: 10,
                            ..SampleConfig::default()
                        },
                        strategy,
                        &exec,
                    )
                    .expect("sample"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, annotate, compiled, sampling);
criterion_main!(benches);
