//! Property-based tests for the HTML substrate.

use objectrunner_html::{parse, to_html, token_stream, PageToken};
use proptest::prelude::*;

/// Arbitrary "tag soup": random interleavings of tags, text and junk.
fn tag_soup() -> impl Strategy<Value = String> {
    let piece = prop_oneof![
        "[a-z]{1,8}".prop_map(|w| w),
        Just("<div>".to_owned()),
        Just("</div>".to_owned()),
        Just("<p>".to_owned()),
        Just("</p>".to_owned()),
        Just("<li>".to_owned()),
        Just("<br>".to_owned()),
        Just("<span class=\"x\">".to_owned()),
        Just("</span>".to_owned()),
        Just("<".to_owned()),
        Just(">".to_owned()),
        Just("&amp;".to_owned()),
        Just("&bogus;".to_owned()),
        Just("<!-- c -->".to_owned()),
        Just("<script>a<b</script>".to_owned()),
    ];
    prop::collection::vec(piece, 0..40).prop_map(|v| v.join(" "))
}

/// Well-formed random documents.
fn well_formed(depth: u32) -> impl Strategy<Value = String> {
    let leaf = "[a-z]{1,6}( [a-z]{1,6}){0,3}".prop_map(|w| w);
    leaf.prop_recursive(depth, 64, 4, |inner| {
        (
            prop::sample::select(vec!["div", "span", "p", "ul", "table", "em"]),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, kids)| format!("<{tag}>{}</{tag}>", kids.join("")))
    })
}

proptest! {
    /// The parser must never panic, whatever the input.
    #[test]
    fn parse_never_panics(input in tag_soup()) {
        let _ = parse(&input);
    }

    /// Parsing always yields a tree where every reachable node's parent
    /// link is consistent with the children lists.
    #[test]
    fn tree_links_consistent(input in tag_soup()) {
        let doc = parse(&input);
        for id in doc.descendants(doc.root()) {
            for &c in doc.children(id) {
                prop_assert_eq!(doc.parent(c), Some(id));
            }
        }
    }

    /// For well-formed input, serialize(parse(x)) is a fixpoint:
    /// parsing the output again gives the same serialization.
    #[test]
    fn serialize_is_fixpoint(input in well_formed(3)) {
        let doc1 = parse(&input);
        let out1 = to_html(&doc1, doc1.root());
        let doc2 = parse(&out1);
        let out2 = to_html(&doc2, doc2.root());
        prop_assert_eq!(out1, out2);
    }

    /// Token streams are balanced: every Close matches the innermost
    /// unclosed Open of the same tag.
    #[test]
    fn token_stream_balanced(input in tag_soup()) {
        let doc = parse(&input);
        let mut stack: Vec<objectrunner_html::Symbol> = Vec::new();
        for (tok, _) in token_stream(&doc, doc.root()) {
            match tok {
                PageToken::Open(t) => {
                    if !objectrunner_html::dom::is_void(t) {
                        stack.push(t);
                    }
                }
                PageToken::Close(t) => {
                    prop_assert_eq!(stack.pop(), Some(t));
                }
                PageToken::Word(_) => {}
            }
        }
        prop_assert!(stack.is_empty());
    }

    /// Text content survives a parse→serialize→parse round trip.
    #[test]
    fn text_survives_round_trip(input in well_formed(3)) {
        let doc1 = parse(&input);
        let text1 = doc1.text_content(doc1.root());
        let doc2 = parse(&to_html(&doc1, doc1.root()));
        prop_assert_eq!(text1, doc2.text_content(doc2.root()));
    }

    /// Entity decoding never grows the string in byte length by more
    /// than the decoded replacements allow and never panics.
    #[test]
    fn entity_decode_never_panics(input in ".{0,200}") {
        let _ = objectrunner_html::entities::decode(&input);
    }
}
