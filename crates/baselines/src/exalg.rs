//! The ExAlg baseline (Arasu & Garcia-Molina, SIGMOD 2003).
//!
//! ExAlg infers a page template from occurrence-vector equivalence
//! classes, with token roles differentiated by HTML context and by
//! positions relative to the classes — *no semantics*. It then
//! extracts every data field of the inferred template.
//!
//! Differences from ObjectRunner (all three matter in the paper's
//! comparison):
//!
//! 1. No annotated-word guard: data that is "too regular" (the paper's
//!    repeated "New York") joins the template and is lost.
//! 2. No annotation-driven role splits: tokens structure alone cannot
//!    distinguish stay merged, so adjacent attributes end up in one
//!    field (partially correct extractions).
//! 3. No SOD: the record region is chosen by a structural heuristic
//!    (the most data-rich repeating class), and *all* fields are
//!    extracted.

use crate::FlatRecord;
use objectrunner_core::annotate::AnnotatedPage;
use objectrunner_core::extract::{
    hosting_gap, instance_gap_text, match_node_instances, page_stream,
};
use objectrunner_core::roles::{differentiate, DiffConfig};
use objectrunner_core::template::{build_template, GapKind, NodeMultiplicity, TemplateTree};
use objectrunner_core::tokens::SourceTokens;
use objectrunner_html::Document;
use std::collections::HashMap;

/// ExAlg configuration.
#[derive(Debug, Clone)]
pub struct ExalgConfig {
    /// LFEQ support: minimum pages a token must occur in.
    pub min_support: usize,
}

impl Default for ExalgConfig {
    fn default() -> Self {
        ExalgConfig { min_support: 3 }
    }
}

/// Why induction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExalgError {
    /// Fewer than two input pages.
    TooFewPages,
    /// No template class with data fields was found.
    NoTemplate,
}

impl std::fmt::Display for ExalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExalgError::TooFewPages => write!(f, "need at least two pages"),
            ExalgError::NoTemplate => write!(f, "no data-bearing template class found"),
        }
    }
}

impl std::error::Error for ExalgError {}

/// A field of the inferred relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldRef {
    /// Template node owning the gap.
    pub node: usize,
    /// Gap index within the node.
    pub gap: usize,
    /// True when the field collects values of a repeating sub-region
    /// (multi-valued per record).
    pub repeated: bool,
}

/// The induced ExAlg wrapper.
#[derive(Debug, Clone)]
pub struct ExalgWrapper {
    template: TemplateTree,
    /// The record-region template node.
    record_node: usize,
    /// Field schema in template order.
    pub fields: Vec<FieldRef>,
}

/// Induce an ExAlg wrapper from sample pages.
pub fn induce(docs: &[Document], cfg: &ExalgConfig) -> Result<ExalgWrapper, ExalgError> {
    if docs.len() < 2 {
        return Err(ExalgError::TooFewPages);
    }
    // Annotation-free pages: the same machinery, zero semantics.
    let pages: Vec<AnnotatedPage> = docs
        .iter()
        .map(|doc| AnnotatedPage {
            doc: doc.clone(),
            annotations: HashMap::new(),
        })
        .collect();
    let mut src = SourceTokens::from_pages(&pages);
    let diff_cfg = DiffConfig {
        eq: objectrunner_core::eqclass::EqConfig {
            min_support: cfg.min_support,
            annotations_guard: false,
            ..objectrunner_core::eqclass::EqConfig::default()
        },
        // ExAlg differentiates by HTML context and class positions
        // only — the paper: "the three <div> occurrences would have
        // the same role" (§III-C).
        ordinal_split: false,
        ..DiffConfig::default()
    };
    let outcome = differentiate(&mut src, &diff_cfg, |_, _| false);
    let template = build_template(&src, &outcome.analysis);

    let record_node =
        choose_record_node(&template, &outcome.analysis).ok_or(ExalgError::NoTemplate)?;
    let fields = collect_fields(&template, record_node);
    if fields.is_empty() {
        return Err(ExalgError::NoTemplate);
    }
    Ok(ExalgWrapper {
        template,
        record_node,
        fields,
    })
}

/// Record-region heuristic: the template node with the most data gaps
/// in its tuple reach, preferring repeating nodes (list regions), then
/// more instances.
fn choose_record_node(
    tree: &TemplateTree,
    analysis: &objectrunner_core::eqclass::EqAnalysis,
) -> Option<usize> {
    let mut best: Option<(i64, usize)> = None;
    for n in 1..tree.nodes.len() {
        let reach = tree.tuple_reach(n);
        let data_gaps = reach
            .iter()
            .map(|&m| {
                tree.nodes[m]
                    .gaps
                    .iter()
                    .filter(|g| g.kind() == GapKind::Data)
                    .count()
            })
            .sum::<usize>() as i64;
        // Data living in repeating children (author-list style) also
        // counts towards the region's richness.
        let repeating_children: Vec<usize> = reach
            .iter()
            .flat_map(|&m| tree.nodes[m].children.iter().copied())
            .filter(|&c| tree.nodes[c].multiplicity == NodeMultiplicity::Repeating && c != n)
            .collect();
        let child_data_gaps = repeating_children
            .iter()
            .map(|&c| {
                tree.nodes[c]
                    .gaps
                    .iter()
                    .filter(|g| g.kind() == GapKind::Data)
                    .count()
            })
            .sum::<usize>() as i64;
        if data_gaps + child_data_gaps == 0 {
            continue;
        }
        let mut score = data_gaps * 10 + child_data_gaps * 5;
        if tree.nodes[n].multiplicity == NodeMultiplicity::Repeating {
            score += 100;
        }
        // Records often *contain* finer repeating regions (author
        // lists, uniform cells); prefer the coarser granularity — but
        // a node occurring a small constant number of times per page
        // whose repeating child holds MORE data than itself is page
        // furniture (nav/content/footer shells) wrapped around the
        // real record region.
        if child_data_gaps > 0 {
            let shellish = tree.nodes[n]
                .class
                .map(|c| {
                    let v = &analysis.classes[c].vector;
                    let first = v.first().copied().unwrap_or(0);
                    first > 0 && first <= 5 && v.iter().all(|&x| x == first)
                })
                .unwrap_or(false);
            if child_data_gaps > data_gaps && shellish {
                score -= 120;
            } else if child_data_gaps > data_gaps {
                score += 30;
            } else {
                score += 50;
            }
        }
        // Among otherwise-equal candidates, shallower regions are the
        // records, deeper ones their sub-lists.
        let mut depth = 0i64;
        let mut cur = tree.nodes[n].parent;
        while let Some(p) = cur {
            depth += 1;
            cur = tree.nodes[p].parent;
        }
        score -= depth;
        if best.map(|(s, _)| score > s).unwrap_or(true) {
            best = Some((score, n));
        }
    }
    best.map(|(_, n)| n)
}

/// All data fields reachable from the record node: its own data gaps,
/// data gaps of One/Optional descendants, and (as repeated fields) the
/// data gaps of repeating children.
fn collect_fields(tree: &TemplateTree, record: usize) -> Vec<FieldRef> {
    let mut fields = Vec::new();
    for &n in &tree.tuple_reach(record) {
        for (j, gap) in tree.nodes[n].gaps.iter().enumerate() {
            if gap.kind() == GapKind::Data {
                fields.push(FieldRef {
                    node: n,
                    gap: j,
                    repeated: false,
                });
            }
            // Repeating children hosted in this gap contribute
            // multi-valued fields.
            for &c in &gap.children {
                if tree.nodes[c].multiplicity == NodeMultiplicity::Repeating {
                    for (cj, cgap) in tree.nodes[c].gaps.iter().enumerate() {
                        if cgap.kind() == GapKind::Data {
                            fields.push(FieldRef {
                                node: c,
                                gap: cj,
                                repeated: true,
                            });
                        }
                    }
                }
            }
        }
    }
    fields
}

impl ExalgWrapper {
    /// Number of fields in the inferred relation.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Extract the records of one page.
    pub fn extract(&self, doc: &Document) -> Vec<FlatRecord> {
        let stream = page_stream(doc);
        let instances =
            match_node_instances(&self.template, self.record_node, &stream, 0, stream.len());
        instances
            .iter()
            .map(|positions| {
                let region = (
                    positions.first().copied().unwrap_or(0),
                    positions.last().copied().unwrap_or(0) + 1,
                );
                let mut record = FlatRecord {
                    fields: vec![Vec::new(); self.fields.len()],
                };
                // Pre-match descendant nodes used by fields, bounded
                // to the gap that hosts them (ambiguous matchers).
                let mut node_instances: HashMap<usize, Vec<Vec<usize>>> = HashMap::new();
                for f in &self.fields {
                    if f.node != self.record_node {
                        let (lo, hi) = match hosting_gap(&self.template, self.record_node, f.node) {
                            Some(g) if g + 1 < positions.len() => {
                                (positions[g] + 1, positions[g + 1])
                            }
                            _ => region,
                        };
                        node_instances.entry(f.node).or_insert_with(|| {
                            match_node_instances(&self.template, f.node, &stream, lo, hi)
                        });
                    }
                }
                for (fi, f) in self.fields.iter().enumerate() {
                    if f.node == self.record_node {
                        let v = instance_gap_text(&stream, positions, f.gap);
                        if !v.is_empty() {
                            record.fields[fi].push(v);
                        }
                    } else {
                        let insts = node_instances
                            .get(&f.node)
                            .map(Vec::as_slice)
                            .unwrap_or(&[]);
                        let take = if f.repeated {
                            insts.len()
                        } else {
                            insts.len().min(1)
                        };
                        for inst in insts.iter().take(take) {
                            let v = instance_gap_text(&stream, inst, f.gap);
                            if !v.is_empty() {
                                record.fields[fi].push(v);
                            }
                        }
                    }
                }
                record
            })
            .filter(|r| !r.is_empty())
            .collect()
    }

    /// Extract from every page.
    pub fn extract_source(&self, docs: &[Document]) -> Vec<FlatRecord> {
        docs.iter().flat_map(|d| self.extract(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_html::parse;

    /// Distinct per-attribute markup: ExAlg separates the columns by
    /// DOM path.
    fn list_page(records: &[(&str, &str)]) -> Document {
        let recs: String = records
            .iter()
            .map(|(a, d)| format!("<li><b>{a}</b><i>{d}</i></li>"))
            .collect();
        parse(&format!("<body><ul>{recs}</ul></body>"))
    }

    /// Uniform cells: same tag, same path — ExAlg cannot tell the
    /// attributes apart (the paper's three-<div> argument).
    fn uniform_page(records: &[(&str, &str)]) -> Document {
        let recs: String = records
            .iter()
            .map(|(a, d)| format!("<li><div>{a}</div><div>{d}</div></li>"))
            .collect();
        parse(&format!("<body><ul>{recs}</ul></body>"))
    }

    fn sample() -> Vec<Document> {
        // Dates vary in month and year: no date word is frequent
        // enough to be mistaken for template text.
        vec![
            list_page(&[("Alpha", "Jan 1, 2008"), ("Beta", "Feb 2, 2009")]),
            list_page(&[("Gamma", "Mar 3, 2010")]),
            list_page(&[
                ("Delta", "Apr 4, 2011"),
                ("Eps", "May 5, 2012"),
                ("Zeta", "Jul 6, 2013"),
            ]),
            list_page(&[("Eta", "Aug 7, 2014"), ("Theta", "Sep 8, 2015")]),
        ]
    }

    #[test]
    fn induces_record_region_and_extracts_fields() {
        let wrapper = induce(&sample(), &ExalgConfig::default()).expect("wrapper");
        assert!(wrapper.arity() >= 2);
        let unseen = list_page(&[("Muse", "June 19, 2010"), ("Korn", "June 20, 2010")]);
        let records = wrapper.extract(&unseen);
        assert_eq!(records.len(), 2);
        let all: Vec<&str> = records[0].entries().map(|(_, v)| v).collect();
        assert!(all.contains(&"Muse"));
        assert!(all.contains(&"June 19, 2010"));
    }

    #[test]
    fn too_regular_data_joins_the_template_and_is_lost() {
        // Every record ends with "New York" — with no semantics the
        // constant word becomes template text and is never extracted.
        let page = |n: usize| {
            let recs: String = (0..n)
                .map(|i| format!("<li><div>Band{i}</div><div>New York</div></li>"))
                .collect();
            parse(&format!("<body><ul>{recs}</ul></body>"))
        };
        let docs = vec![page(2), page(1), page(3), page(2)];
        let wrapper = induce(&docs, &ExalgConfig::default()).expect("wrapper");
        let records = wrapper.extract_source(&docs);
        let values: Vec<&str> = records
            .iter()
            .flat_map(|r| r.entries())
            .map(|(_, v)| v)
            .collect();
        assert!(
            !values.iter().any(|v| v.contains("New York")),
            "constant city must be treated as template: {values:?}"
        );
    }

    #[test]
    fn repeated_subregions_become_multivalued_fields() {
        let page = |authors: &[&[&str]]| {
            let recs: String = authors
                .iter()
                .map(|auths| {
                    let spans: String = auths.iter().map(|a| format!("<span>{a}</span>")).collect();
                    format!("<li><div>Title</div><p>{spans}</p></li>")
                })
                .collect();
            parse(&format!("<body><ul>{recs}</ul></body>"))
        };
        let docs = vec![
            page(&[&["A1"], &["A2", "A3"]]),
            page(&[&["B1", "B2"]]),
            page(&[&["C1"], &["C2"], &["C3", "C4", "C5"]]),
        ];
        let wrapper = induce(&docs, &ExalgConfig::default()).expect("wrapper");
        assert!(wrapper.fields.iter().any(|f| f.repeated));
        let unseen = page(&[&["X1", "X2", "X3"]]);
        let records = wrapper.extract(&unseen);
        assert_eq!(records.len(), 1);
        let repeated_field = wrapper
            .fields
            .iter()
            .position(|f| f.repeated)
            .expect("repeated field");
        assert_eq!(records[0].fields[repeated_field].len(), 3);
    }

    #[test]
    fn uniform_cells_stay_merged() {
        // "The three <div> occurrences would have the same role"
        // (§III-C): without annotations, same-path cells collapse into
        // one repeating field and attributes are extracted together.
        let docs = vec![
            uniform_page(&[("Alpha", "Jan 1, 2008"), ("Beta", "Feb 2, 2009")]),
            uniform_page(&[("Gamma", "Mar 3, 2010")]),
            uniform_page(&[
                ("Delta", "Apr 4, 2011"),
                ("Eps", "May 5, 2012"),
                ("Zeta", "Jul 6, 2013"),
            ]),
            uniform_page(&[("Eta", "Aug 7, 2014"), ("Theta", "Sep 8, 2015")]),
        ];
        let wrapper = induce(&docs, &ExalgConfig::default()).expect("wrapper");
        // One repeated field holding both attributes' values.
        assert!(wrapper.fields.iter().any(|f| f.repeated));
        let unseen = uniform_page(&[("Muse", "June 19, 2016")]);
        let records = wrapper.extract(&unseen);
        assert_eq!(records.len(), 1);
        let values: Vec<&str> = records[0].entries().map(|(_, v)| v).collect();
        assert!(values.contains(&"Muse"));
        assert!(values.contains(&"June 19, 2016"));
    }

    #[test]
    fn too_few_pages_is_an_error() {
        let docs = vec![list_page(&[("A", "B")])];
        assert_eq!(
            induce(&docs, &ExalgConfig::default()).expect_err("too few"),
            ExalgError::TooFewPages
        );
    }

    #[test]
    fn pages_without_structure_fail() {
        let docs: Vec<Document> = (0..4)
            .map(|i| {
                parse(&format!(
                    "<body><p>totally unique prose number {i}</p></body>"
                ))
            })
            .collect();
        // Either no template at all, or a template with no repeating
        // data-rich region that extracts nothing meaningful.
        match induce(&docs, &ExalgConfig::default()) {
            Err(ExalgError::NoTemplate) => {}
            Ok(w) => {
                let records = w.extract_source(&docs);
                // The degenerate wrapper may grab the one varying word,
                // but must not invent more records than pages.
                assert!(records.len() <= docs.len());
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
}
