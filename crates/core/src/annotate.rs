//! Automatic annotation of pages (paper §III-B).
//!
//! "The annotation is done by assigning an attribute to the DOM node
//! containing the text that matched the given type. Multiple
//! annotations may be assigned to a given node. … Annotations will
//! also be propagated upwards in the DOM tree to ancestors as long as
//! these nodes have only one child (i.e., on a linear path) or all
//! children have the same annotation."

use objectrunner_html::{Document, NodeId, NodeKind};
use objectrunner_knowledge::recognizer::RecognizerSet;
use std::collections::HashMap;

/// One type annotation on a DOM node.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// The entity type name from the SOD.
    pub type_name: String,
    /// Recognizer confidence.
    pub confidence: f64,
}

/// A page together with its node annotations.
#[derive(Debug, Clone)]
pub struct AnnotatedPage {
    pub doc: Document,
    /// Annotations per node; absent key = unannotated.
    pub annotations: HashMap<NodeId, Vec<Annotation>>,
}

/// The annotation map of one page: annotations per node, absent key =
/// unannotated. Sampling keeps these maps *next to* borrowed documents
/// (one map per page index) so annotation rounds never clone a DOM.
pub type AnnotationMap = HashMap<NodeId, Vec<Annotation>>;

/// The single *best* annotation of a node in `annotations`, if any:
/// highest confidence wins; ties broken by type name for determinism.
pub fn best_annotation_in(annotations: &AnnotationMap, id: NodeId) -> Option<&Annotation> {
    annotations.get(&id).into_iter().flatten().max_by(|a, b| {
        a.confidence
            .partial_cmp(&b.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.type_name.cmp(&a.type_name))
    })
}

impl AnnotatedPage {
    /// Annotations on a node (empty slice when none).
    pub fn annotations_of(&self, id: NodeId) -> &[Annotation] {
        self.annotations.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The single *best* annotation of a node, if any: highest
    /// confidence wins; ties broken by type name for determinism.
    pub fn best_annotation(&self, id: NodeId) -> Option<&Annotation> {
        best_annotation_in(&self.annotations, id)
    }

    /// Number of annotation assignments of a given type on the page.
    pub fn count_of_type(&self, type_name: &str) -> usize {
        self.annotations
            .values()
            .flatten()
            .filter(|a| a.type_name == type_name)
            .count()
    }

    /// Total number of annotated nodes.
    pub fn annotated_node_count(&self) -> usize {
        self.annotations.len()
    }
}

/// Annotate a page against every type of `recognizers` (or a chosen
/// subset via [`annotate_page_types`]).
pub fn annotate_page(doc: Document, recognizers: &RecognizerSet) -> AnnotatedPage {
    let types: Vec<&str> = recognizers.annotation_order();
    annotate_page_types(doc, recognizers, &types)
}

/// Annotate a page against the listed types only (Algorithm 1
/// processes types in selectivity order and may stop early; the caller
/// controls which types run).
pub fn annotate_page_types(
    doc: Document,
    recognizers: &RecognizerSet,
    types: &[&str],
) -> AnnotatedPage {
    let mut page = AnnotatedPage {
        doc,
        annotations: HashMap::new(),
    };
    for &type_name in types {
        annotate_type(&mut page, recognizers, type_name);
    }
    propagate_upwards(&mut page);
    page
}

/// Add annotations of one more type to an already-annotated page
/// (one "annotation round" of Algorithm 1).
pub fn annotate_type(page: &mut AnnotatedPage, recognizers: &RecognizerSet, type_name: &str) {
    annotate_type_into(&page.doc, &mut page.annotations, recognizers, type_name);
}

/// [`annotate_type`] over a borrowed document and a detached annotation
/// map — the form sampling uses so a round can run over `&[Document]`
/// without cloning any page.
pub fn annotate_type_into(
    doc: &Document,
    annotations: &mut AnnotationMap,
    recognizers: &RecognizerSet,
    type_name: &str,
) {
    let Some(recognizer) = recognizers.get(type_name) else {
        return;
    };
    for id in doc.descendants(doc.root()) {
        let NodeKind::Text(text) = &doc.node(id).kind else {
            continue;
        };
        if let Some(m) = recognizer.recognize(text) {
            let anns = annotations.entry(id).or_default();
            if !anns.iter().any(|a| a.type_name == type_name) {
                anns.push(Annotation {
                    type_name: type_name.to_owned(),
                    confidence: m.confidence * m.coverage.max(0.5),
                });
            }
        }
    }
}

/// Upward propagation: an element inherits an annotation when it has a
/// single annotated child, or when all children carry the same
/// annotation type.
pub fn propagate_upwards(page: &mut AnnotatedPage) {
    propagate_upwards_into(&page.doc, &mut page.annotations);
}

/// [`propagate_upwards`] over a borrowed document and a detached
/// annotation map.
pub fn propagate_upwards_into(doc: &Document, annotations: &mut AnnotationMap) {
    // Bottom-up order: process nodes by decreasing depth.
    let mut nodes: Vec<(usize, NodeId)> = doc
        .descendants(doc.root())
        .map(|id| (objectrunner_html::path::depth(doc, id), id))
        .collect();
    nodes.sort_by_key(|&(depth, _)| std::cmp::Reverse(depth));

    for (_, id) in nodes {
        if !matches!(doc.node(id).kind, NodeKind::Element { .. }) {
            continue;
        }
        let children = doc.children(id);
        if children.is_empty() {
            continue;
        }
        let inherited: Option<Annotation> = if children.len() == 1 {
            best_annotation_in(annotations, children[0]).cloned()
        } else {
            // All children share one annotation type?
            let first = best_annotation_in(annotations, children[0]).cloned();
            match first {
                Some(ann)
                    if children.iter().all(|&c| {
                        best_annotation_in(annotations, c)
                            .map(|a| a.type_name == ann.type_name)
                            .unwrap_or(false)
                    }) =>
                {
                    Some(ann)
                }
                _ => None,
            }
        };
        if let Some(ann) = inherited {
            let anns = annotations.entry(id).or_default();
            if !anns.iter().any(|a| a.type_name == ann.type_name) {
                anns.push(ann);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_html::parse;
    use objectrunner_knowledge::gazetteer::Gazetteer;
    use objectrunner_knowledge::recognizer::Recognizer;

    fn concert_recognizers() -> RecognizerSet {
        let mut artists = Gazetteer::new();
        artists.insert("Metallica", 0.95, 5.0);
        artists.insert("Madonna", 0.92, 8.0);
        let mut set = RecognizerSet::new();
        set.insert("artist", Recognizer::dictionary(artists));
        set.insert("date", Recognizer::predefined_date());
        set
    }

    #[test]
    fn annotates_matching_text_nodes() {
        let doc = parse("<li><div>Metallica</div><div>Monday May 11, 8:00pm</div></li>");
        let page = annotate_page(doc, &concert_recognizers());
        let texts: Vec<NodeId> = page
            .doc
            .descendants(page.doc.root())
            .filter(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
            .collect();
        assert_eq!(
            page.best_annotation(texts[0])
                .expect("artist ann")
                .type_name,
            "artist"
        );
        assert_eq!(
            page.best_annotation(texts[1]).expect("date ann").type_name,
            "date"
        );
    }

    #[test]
    fn propagates_to_single_child_ancestors() {
        // <div><span><a>Metallica</a></span></div>: the paper's linear
        // path — all three elements get the artist annotation.
        let doc = parse("<div><span><a>Metallica</a></span></div>");
        let page = annotate_page(doc, &concert_recognizers());
        for tag in ["a", "span", "div"] {
            let el = page.doc.elements_by_tag(page.doc.root(), tag)[0];
            assert_eq!(
                page.best_annotation(el).map(|a| a.type_name.as_str()),
                Some("artist"),
                "tag {tag}"
            );
        }
    }

    #[test]
    fn propagates_when_all_children_agree() {
        let mut g = Gazetteer::new();
        g.insert("Jane Austen", 0.9, 3.0);
        g.insert("Fiona Stafford", 0.9, 3.0);
        let mut set = RecognizerSet::new();
        set.insert("author", Recognizer::dictionary(g));
        let doc = parse("<span><b>Jane Austen</b><b>Fiona Stafford</b></span>");
        let page = annotate_page(doc, &set);
        let span = page.doc.elements_by_tag(page.doc.root(), "span")[0];
        assert_eq!(
            page.best_annotation(span).map(|a| a.type_name.as_str()),
            Some("author")
        );
    }

    #[test]
    fn does_not_propagate_across_mixed_children() {
        let doc = parse("<li><div>Metallica</div><div>Monday May 11, 8:00pm</div></li>");
        let page = annotate_page(doc, &concert_recognizers());
        let li = page.doc.elements_by_tag(page.doc.root(), "li")[0];
        assert!(page.best_annotation(li).is_none());
    }

    #[test]
    fn unmatched_text_is_unannotated() {
        let doc = parse("<div>some random words</div>");
        let page = annotate_page(doc, &concert_recognizers());
        assert_eq!(page.annotated_node_count(), 0);
    }

    #[test]
    fn multiple_annotations_on_one_node() {
        // "10019" is both a plausible zip (address) and matched by a
        // dictionary — multiple annotations must coexist.
        let mut g = Gazetteer::new();
        g.insert("10019", 0.6, 2.0);
        let mut set = RecognizerSet::new();
        set.insert("zipcode_dict", Recognizer::dictionary(g));
        set.insert("address", Recognizer::predefined_address());
        let doc = parse("<span>10019</span>");
        let page = annotate_page(doc, &set);
        let text = page
            .doc
            .descendants(page.doc.root())
            .find(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
            .expect("text node");
        assert_eq!(page.annotations_of(text).len(), 2);
    }

    #[test]
    fn count_of_type_counts_assignments() {
        let doc = parse("<ul><li>Metallica</li><li>Madonna</li></ul>");
        let page = annotate_page(doc, &concert_recognizers());
        // 2 text nodes + 2 propagated to <li> (single child each); the
        // <ul> also inherits since both children agree.
        assert!(page.count_of_type("artist") >= 4);
    }

    #[test]
    fn incremental_round_api() {
        let doc = parse("<div>Metallica</div>");
        let recs = concert_recognizers();
        let mut page = AnnotatedPage {
            doc,
            annotations: HashMap::new(),
        };
        annotate_type(&mut page, &recs, "artist");
        assert_eq!(page.annotated_node_count(), 1);
        annotate_type(&mut page, &recs, "artist"); // idempotent
        let text = page
            .doc
            .descendants(page.doc.root())
            .find(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
            .expect("text");
        assert_eq!(page.annotations_of(text).len(), 1);
    }
}
