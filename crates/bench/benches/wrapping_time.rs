//! E6 — the paper's timing claim (§IV): "the wrapping time of our
//! algorithm ranged from 4 to 9 seconds. Once the wrapper is
//! constructed, the time required to extract the data was negligible."
//!
//! We measure (a) full wrapper generation (annotation + sampling +
//! differentiation + matching) per domain and (b) extraction alone,
//! so the wrapping ≫ extraction relationship can be verified.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use objectrunner_bench::{bench_config, bench_pipeline, bench_source, run_pipeline};
use objectrunner_core::annotate::annotate_page;
use objectrunner_core::tokens::SourceTokens;
use objectrunner_html::{clean_document, parse, CleanOptions};
use objectrunner_webgen::{knowledge, Domain};
use std::hint::black_box;

fn wrapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("wrapping_time");
    group.sample_size(10);
    for domain in Domain::ALL {
        let source = bench_source(domain, 30);
        group.bench_with_input(
            BenchmarkId::new("wrap", domain.name()),
            &source,
            |b, source| {
                b.iter(|| {
                    let pipeline = bench_pipeline(domain, bench_config());
                    black_box(pipeline.run_on_html(&source.pages).expect("wraps"))
                });
            },
        );
    }
    group.finish();
}

fn extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("extraction_time");
    group.sample_size(10);
    for domain in [Domain::Cars, Domain::Concerts, Domain::Books] {
        let source = bench_source(domain, 30);
        let outcome = run_pipeline(domain, &source, bench_config());
        let docs: Vec<_> = source
            .pages
            .iter()
            .map(|h| {
                let mut d = parse(h);
                clean_document(&mut d, &CleanOptions::default());
                d
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("extract_30_pages", domain.name()),
            &docs,
            |b, docs| {
                b.iter(|| black_box(outcome.wrapper.extract_source(docs)));
            },
        );
    }
    group.finish();
}

/// Microbench for the interned identity layer: (a) tokenize = parse +
/// clean 30 pages (tag/attribute names are interned to `Symbol`s inside
/// the tokenizer), (b) role assignment = `SourceTokens::from_pages`,
/// which streams every page and interns each `(token, PathId)` dtoken
/// into the role table — the pure-integer hot path of Algorithm 2.
fn tokenize_and_roles(c: &mut Criterion) {
    let mut group = c.benchmark_group("tokenize_and_roles");
    for domain in [Domain::Cars, Domain::Concerts, Domain::Books] {
        let source = bench_source(domain, 30);
        group.bench_with_input(
            BenchmarkId::new("tokenize_30_pages", domain.name()),
            &source,
            |b, source| {
                b.iter(|| {
                    for html in &source.pages {
                        let mut d = parse(html);
                        clean_document(&mut d, &CleanOptions::default());
                        black_box(&d);
                    }
                });
            },
        );
        let recognizers = knowledge::recognizers_for(domain, 0.2);
        let pages: Vec<_> = source
            .pages
            .iter()
            .map(|h| {
                let mut d = parse(h);
                clean_document(&mut d, &CleanOptions::default());
                annotate_page(d, &recognizers)
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("role_assignment_30_pages", domain.name()),
            &pages,
            |b, pages| {
                b.iter(|| black_box(SourceTokens::from_pages(pages)));
            },
        );
    }
    group.finish();
}

/// Thread-scaling curve for the staged executor: the full pipeline
/// (parse → clean → segment → annotate/sample → wrap → extract) on a
/// 12-page source at 1/2/4/8 worker threads. Output is byte-identical
/// at every point (see `tests/determinism.rs`); this measures only the
/// wall-clock effect of the fan-out. Recorded in EXPERIMENTS.md.
fn thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_scaling");
    group.sample_size(10);
    let source = bench_source(Domain::Concerts, 12);
    for threads in [1usize, 2, 4, 8] {
        let mut config = bench_config();
        config.threads = Some(threads);
        group.bench_with_input(
            BenchmarkId::new("pipeline_12_pages", threads),
            &config,
            |b, config| {
                b.iter(|| {
                    let pipeline = bench_pipeline(Domain::Concerts, config.clone());
                    black_box(pipeline.run_on_html(&source.pages).expect("wraps"))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    wrapping,
    extraction,
    tokenize_and_roles,
    thread_scaling
);
criterion_main!(benches);
