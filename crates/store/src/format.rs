//! The versioned on-disk wrapper format (`.orw`).
//!
//! A learned wrapper is process-bound: its separator matchers hold
//! [`Symbol`] and [`PathId`] handles that only mean something inside
//! the interner tables of the process that induced it. Persisting a
//! wrapper therefore **externalizes** every interned identity — tokens
//! as `kind/string` pairs, paths as segment-string lists (deduplicated
//! in a table, referenced by index) — and loading re-interns them,
//! rebuilding equivalent handles in the loading process.
//!
//! File layout:
//!
//! ```text
//! ORWRAP v2 <payload-bytes> <fnv64-hex>\n      ← checksummed header
//! {"format_version":2, ...}                    ← JSON payload
//! ```
//!
//! The header carries the format version and an FNV-1a/64 checksum of
//! the payload, so truncation and bit rot fail loudly before any field
//! is trusted. The payload's key order, float form and annotation sort
//! are all fixed, which gives the save fixed point the round-trip test
//! relies on: `save(load(save(w))) == save(w)` byte for byte.
//!
//! Deliberately *not* serialized:
//!
//! * the template's per-node `permutation` (role ids) — roles are
//!   sample-side identities that die with the inducing process, and
//!   extraction, drift scoring and SOD re-validation only read the
//!   matchers, multiplicities, gaps and mapping;
//! * timestamps of any kind — equal wrappers must produce equal bytes.
//!
//! Version history: v1 had no per-node stable ids and no repair
//! provenance. v1 files still **load** (stable ids are synthesized as
//! the node index, provenance as `None`) but are always re-saved as
//! v2 — `save` emits only the current version.

use crate::json::Json;
use objectrunner_core::matching::{GapRef, SetMapping, SodMapping, TupleMapping};
use objectrunner_core::template::{GapInfo, Matcher, NodeMultiplicity, TemplateNode, TemplateTree};
use objectrunner_core::wrapper::Wrapper;
use objectrunner_html::{CleanOptions, FxHashMap, NodeSignature, PageToken, PathId, Symbol};
use objectrunner_segment::MainBlockChoice;
use objectrunner_sod::{Multiplicity, Sod, SodNode};
use std::path::Path;

/// Current format version; bumped on any incompatible payload change.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest version `load` still understands.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// Header magic.
const MAGIC: &str = "ORWRAP";

/// Everything needed to serve a source without re-induction: the
/// wrapper, the SOD it was matched against, the cleaning options and
/// main-block choice that reproduce its page preparation, and the
/// store-side lifecycle metadata.
#[derive(Debug, Clone)]
pub struct StoredWrapper {
    /// Source identifier (the serving key).
    pub source: String,
    /// Domain name (resolved to recognizers at re-induction time).
    pub domain: String,
    /// Wrapper revision, starting at 1; bumped on every re-induction.
    pub revision: u64,
    pub sod: Sod,
    pub wrapper: Wrapper,
    /// The segment stage's vote at induction time (None when the
    /// source yielded no candidate block).
    pub main_block: Option<MainBlockChoice>,
    /// Cleaning options the wrapper's pages were prepared with.
    pub clean: CleanOptions,
    /// How this revision was produced: `None` for fresh induction,
    /// `Some` when it was patched out of a previous revision by
    /// tree-diff repair.
    pub repair: Option<RepairProvenance>,
}

/// Provenance recorded when a wrapper revision was produced by
/// tree-diff repair (`core::wrapper::repair_wrapper`) rather than
/// fresh induction: which revision was patched and a summary of the
/// template-tree node mapping the patch went through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairProvenance {
    /// Revision the patch was computed against.
    pub repaired_from: u64,
    /// Old-template nodes matched isomorphically (top-down pass).
    pub matched_exact: usize,
    /// Old-template nodes matched by dice similarity (bottom-up pass).
    pub matched_container: usize,
    /// Old-template nodes with no counterpart in the new template.
    pub unmatched_old: usize,
    /// New-template nodes with no counterpart in the old template.
    pub unmatched_new: usize,
}

/// Load/save failures.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    /// Not an `ORWRAP` file, or the header line is malformed.
    BadHeader,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// Payload length or checksum mismatch (truncation / corruption).
    Corrupt {
        expected: String,
        found: String,
    },
    /// The payload is not valid JSON.
    Json(crate::json::JsonError),
    /// The payload parsed but a field is missing or mistyped.
    Malformed(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::BadHeader => write!(f, "not an ORWRAP file (bad header)"),
            StoreError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            StoreError::Corrupt { expected, found } => {
                write!(f, "corrupt payload: expected {expected}, found {found}")
            }
            StoreError::Json(e) => write!(f, "payload: {e}"),
            StoreError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// FNV-1a, 64-bit. Small, dependency-free, and plenty for detecting
/// truncation and accidental corruption (not an integrity MAC).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Streaming form of [`fnv64`], for checksums over data that is not
/// in memory as one contiguous slice (the object store's manifest
/// checksums each segment's committed prefix incrementally as records
/// append). Feeding the same bytes in any chunking yields the same
/// value as `fnv64` over the concatenation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Resume from a previously [`finish`](Fnv64::finish)ed state.
    pub fn resume(state: u64) -> Fnv64 {
        Fnv64(state)
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value (the hasher may keep absorbing).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

// ------------------------------------------------------------- saving

/// Serialize to the on-disk format (header + payload).
pub fn save(stored: &StoredWrapper) -> String {
    crate::frame::encode(MAGIC, FORMAT_VERSION, &payload_json(stored).render())
}

/// Serialize and write to `path`.
pub fn save_file(path: &Path, stored: &StoredWrapper) -> Result<(), StoreError> {
    std::fs::write(path, save(stored))?;
    Ok(())
}

/// Interned-path externalization table: paths referenced by payload
/// index, stored as segment-string lists in first-use order.
struct PathTable {
    index: FxHashMap<PathId, usize>,
    rows: Vec<PathId>,
}

impl PathTable {
    fn new() -> PathTable {
        PathTable {
            index: FxHashMap::default(),
            rows: Vec::new(),
        }
    }

    fn intern(&mut self, path: PathId) -> usize {
        if let Some(&i) = self.index.get(&path) {
            return i;
        }
        let i = self.rows.len();
        self.rows.push(path);
        self.index.insert(path, i);
        i
    }

    fn rows_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|p| Json::Arr(p.segments().iter().map(|s| Json::str(s.as_str())).collect()))
                .collect(),
        )
    }
}

fn payload_json(stored: &StoredWrapper) -> Json {
    let mut paths = PathTable::new();
    // Template first so path-table order tracks node order.
    let template = template_json(&stored.wrapper.template, &mut paths);
    let mapping = sod_mapping_json(&stored.wrapper.mapping);
    let main_block = match &stored.main_block {
        Some(c) => main_block_json(c, &mut paths),
        None => Json::Null,
    };
    let wrapper = Json::Obj(vec![
        ("object_name".into(), Json::str(&stored.wrapper.object_name)),
        ("quality".into(), Json::Float(stored.wrapper.quality)),
        (
            "conflict_splits".into(),
            Json::int(stored.wrapper.conflict_splits),
        ),
        ("rounds".into(), Json::int(stored.wrapper.rounds)),
        ("support".into(), Json::int(stored.wrapper.support)),
        ("template".into(), template),
        ("mapping".into(), mapping),
    ]);
    Json::Obj(vec![
        ("format_version".into(), Json::int(FORMAT_VERSION)),
        ("source".into(), Json::str(&stored.source)),
        ("domain".into(), Json::str(&stored.domain)),
        ("revision".into(), Json::int(stored.revision as i64)),
        ("repair".into(), repair_json(&stored.repair)),
        ("sod".into(), sod_node_json(stored.sod.root())),
        ("clean".into(), clean_json(&stored.clean)),
        ("main_block".into(), main_block),
        ("paths".into(), paths.rows_json()),
        ("wrapper".into(), wrapper),
    ])
}

fn repair_json(repair: &Option<RepairProvenance>) -> Json {
    match repair {
        None => Json::Null,
        Some(r) => Json::Obj(vec![
            ("repaired_from".into(), Json::int(r.repaired_from as i64)),
            ("matched_exact".into(), Json::int(r.matched_exact)),
            ("matched_container".into(), Json::int(r.matched_container)),
            ("unmatched_old".into(), Json::int(r.unmatched_old)),
            ("unmatched_new".into(), Json::int(r.unmatched_new)),
        ]),
    }
}

fn token_json(token: PageToken) -> Json {
    Json::str(match token {
        PageToken::Open(s) => format!("o/{}", s.as_str()),
        PageToken::Close(s) => format!("c/{}", s.as_str()),
        PageToken::Word(s) => format!("w/{}", s.as_str()),
    })
}

fn multiplicity_str(m: Multiplicity) -> String {
    m.to_string() // "1" | "?" | "*" | "+" | "n-m"
}

fn sod_node_json(node: &SodNode) -> Json {
    match node {
        SodNode::Entity {
            type_name,
            multiplicity,
        } => Json::Obj(vec![
            ("t".into(), Json::str("entity")),
            ("name".into(), Json::str(type_name)),
            ("mult".into(), Json::str(multiplicity_str(*multiplicity))),
        ]),
        SodNode::Tuple { name, children } => Json::Obj(vec![
            ("t".into(), Json::str("tuple")),
            ("name".into(), Json::str(name)),
            (
                "children".into(),
                Json::Arr(children.iter().map(sod_node_json).collect()),
            ),
        ]),
        SodNode::Set {
            child,
            multiplicity,
        } => Json::Obj(vec![
            ("t".into(), Json::str("set")),
            ("mult".into(), Json::str(multiplicity_str(*multiplicity))),
            ("child".into(), sod_node_json(child)),
        ]),
        SodNode::Disjunction(a, b) => Json::Obj(vec![
            ("t".into(), Json::str("or")),
            ("a".into(), sod_node_json(a)),
            ("b".into(), sod_node_json(b)),
        ]),
    }
}

fn clean_json(c: &CleanOptions) -> Json {
    Json::Obj(vec![
        (
            "drop_elements".into(),
            Json::Arr(c.drop_elements.iter().map(Json::str).collect()),
        ),
        ("drop_comments".into(), Json::Bool(c.drop_comments)),
        ("drop_hidden".into(), Json::Bool(c.drop_hidden)),
        (
            "keep_attrs".into(),
            Json::Arr(c.keep_attrs.iter().map(Json::str).collect()),
        ),
        (
            "normalize_whitespace".into(),
            Json::Bool(c.normalize_whitespace),
        ),
        (
            "drop_empty_elements".into(),
            Json::Bool(c.drop_empty_elements),
        ),
    ])
}

fn main_block_json(choice: &MainBlockChoice, paths: &mut PathTable) -> Json {
    let sig = &choice.signature;
    Json::Obj(vec![
        ("tag".into(), Json::str(sig.tag.as_str())),
        ("path".into(), Json::int(paths.intern(sig.path))),
        (
            // Attribute order is identity-relevant (NodeSignature
            // compares the Vec), so it is preserved, not sorted.
            "attrs".into(),
            Json::Arr(
                sig.attrs
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::str(k.as_str()), Json::str(v.as_str())]))
                    .collect(),
            ),
        ),
        ("support".into(), Json::int(choice.support)),
        ("score".into(), Json::Float(choice.score)),
    ])
}

fn template_json(tree: &TemplateTree, paths: &mut PathTable) -> Json {
    Json::Obj(vec![(
        "nodes".into(),
        Json::Arr(
            tree.nodes
                .iter()
                .map(|n| template_node_json(n, paths))
                .collect(),
        ),
    )])
}

fn template_node_json(node: &TemplateNode, paths: &mut PathTable) -> Json {
    let mult = match node.multiplicity {
        NodeMultiplicity::One => "one",
        NodeMultiplicity::Optional => "opt",
        NodeMultiplicity::Repeating => "rep",
    };
    let matchers = Json::Arr(
        node.matchers
            .iter()
            .map(|m| Json::Arr(vec![token_json(m.token), Json::int(paths.intern(m.path))]))
            .collect(),
    );
    let gaps = Json::Arr(node.gaps.iter().map(gap_json).collect());
    Json::Obj(vec![
        (
            "class".into(),
            node.class.map(Json::int).unwrap_or(Json::Null),
        ),
        ("sid".into(), Json::int(node.stable_id as i64)),
        ("mult".into(), Json::str(mult)),
        ("matchers".into(), matchers),
        ("gaps".into(), gaps),
        (
            "children".into(),
            Json::Arr(node.children.iter().map(|&c| Json::int(c)).collect()),
        ),
        (
            "parent".into(),
            node.parent.map(Json::int).unwrap_or(Json::Null),
        ),
    ])
}

fn gap_json(gap: &GapInfo) -> Json {
    // FxHashMap iteration order is process-dependent; sort by type name
    // so equal gaps serialize to equal bytes.
    let mut annotations: Vec<(&str, usize)> = gap
        .annotations
        .iter()
        .map(|(s, &n)| (s.as_str(), n))
        .collect();
    annotations.sort_unstable();
    Json::Obj(vec![
        (
            "annotations".into(),
            Json::Arr(
                annotations
                    .into_iter()
                    .map(|(t, n)| Json::Arr(vec![Json::str(t), Json::int(n)]))
                    .collect(),
            ),
        ),
        ("data_instances".into(), Json::int(gap.data_instances)),
        ("total_instances".into(), Json::int(gap.total_instances)),
        (
            "children".into(),
            Json::Arr(gap.children.iter().map(|&c| Json::int(c)).collect()),
        ),
        (
            "samples".into(),
            Json::Arr(gap.samples.iter().map(Json::str).collect()),
        ),
    ])
}

fn gap_ref_json(g: &GapRef) -> Json {
    Json::Arr(vec![Json::int(g.node), Json::int(g.gap)])
}

fn tuple_mapping_json(m: &TupleMapping) -> Json {
    Json::Obj(vec![
        ("anchor".into(), Json::int(m.anchor)),
        (
            "atomics".into(),
            Json::Arr(
                m.atomics
                    .iter()
                    .map(|(t, g)| Json::Arr(vec![Json::str(t), gap_ref_json(g)]))
                    .collect(),
            ),
        ),
        (
            "sets".into(),
            Json::Arr(
                m.sets
                    .iter()
                    .map(|s| match s {
                        SetMapping::Repeated { set_node, element } => Json::Obj(vec![
                            ("kind".into(), Json::str("repeated")),
                            ("set_node".into(), Json::int(*set_node)),
                            ("element".into(), tuple_mapping_json(element)),
                        ]),
                        SetMapping::Collapsed { type_name, gap } => Json::Obj(vec![
                            ("kind".into(), Json::str("collapsed")),
                            ("type".into(), Json::str(type_name)),
                            ("gap".into(), gap_ref_json(gap)),
                        ]),
                    })
                    .collect(),
            ),
        ),
        (
            "missing_optional".into(),
            Json::Arr(m.missing_optional.iter().map(Json::str).collect()),
        ),
    ])
}

fn sod_mapping_json(m: &SodMapping) -> Json {
    Json::Obj(vec![
        ("record".into(), tuple_mapping_json(&m.record)),
        ("record_repeats".into(), Json::Bool(m.record_repeats)),
    ])
}

// ------------------------------------------------------------ loading

/// Parse the on-disk format, verifying header, length and checksum,
/// and re-interning every externalized identity.
pub fn load(data: &str) -> Result<StoredWrapper, StoreError> {
    let (_, payload) = crate::frame::decode(data, MAGIC, MIN_SUPPORTED_VERSION, FORMAT_VERSION)
        .map_err(|e| match e {
            crate::frame::FrameError::BadHeader => StoreError::BadHeader,
            crate::frame::FrameError::UnsupportedVersion(v) => StoreError::UnsupportedVersion(v),
            crate::frame::FrameError::Corrupt { expected, found } => {
                StoreError::Corrupt { expected, found }
            }
        })?;
    let json = Json::parse(payload).map_err(StoreError::Json)?;
    payload_from_json(&json)
}

/// Read and parse `path`.
pub fn load_file(path: &Path) -> Result<StoredWrapper, StoreError> {
    let data = std::fs::read_to_string(path)?;
    load(&data)
}

fn field<'a>(json: &'a Json, key: &str) -> Result<&'a Json, StoreError> {
    json.get(key)
        .ok_or_else(|| StoreError::Malformed(format!("missing field '{key}'")))
}

fn str_field(json: &Json, key: &str) -> Result<String, StoreError> {
    field(json, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| StoreError::Malformed(format!("field '{key}' is not a string")))
}

fn usize_field(json: &Json, key: &str) -> Result<usize, StoreError> {
    field(json, key)?
        .as_usize()
        .ok_or_else(|| StoreError::Malformed(format!("field '{key}' is not an unsigned integer")))
}

fn arr_field<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], StoreError> {
    field(json, key)?
        .as_arr()
        .ok_or_else(|| StoreError::Malformed(format!("field '{key}' is not an array")))
}

fn bool_field(json: &Json, key: &str) -> Result<bool, StoreError> {
    field(json, key)?
        .as_bool()
        .ok_or_else(|| StoreError::Malformed(format!("field '{key}' is not a bool")))
}

fn payload_from_json(json: &Json) -> Result<StoredWrapper, StoreError> {
    let payload_version = usize_field(json, "format_version")? as u32;
    if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&payload_version) {
        return Err(StoreError::UnsupportedVersion(payload_version));
    }

    // Re-intern the path table.
    let mut paths: Vec<PathId> = Vec::new();
    for row in arr_field(json, "paths")? {
        let segments = row
            .as_arr()
            .ok_or_else(|| StoreError::Malformed("path row is not an array".into()))?;
        let strings: Vec<&str> = segments
            .iter()
            .map(|s| {
                s.as_str()
                    .ok_or_else(|| StoreError::Malformed("path segment is not a string".into()))
            })
            .collect::<Result<_, _>>()?;
        paths.push(PathId::from_segments(strings));
    }

    let wrapper_json = field(json, "wrapper")?;
    let template = template_from_json(field(wrapper_json, "template")?, &paths, payload_version)?;
    let mapping = sod_mapping_from_json(field(wrapper_json, "mapping")?)?;
    let wrapper = Wrapper {
        template,
        mapping,
        object_name: str_field(wrapper_json, "object_name")?,
        quality: field(wrapper_json, "quality")?
            .as_f64()
            .ok_or_else(|| StoreError::Malformed("quality is not a number".into()))?,
        conflict_splits: usize_field(wrapper_json, "conflict_splits")?,
        rounds: usize_field(wrapper_json, "rounds")?,
        support: usize_field(wrapper_json, "support")?,
    };

    let main_block = match field(json, "main_block")? {
        Json::Null => None,
        mb => Some(main_block_from_json(mb, &paths)?),
    };

    // `repair` was introduced in v2; absent in v1 payloads.
    let repair = match json.get("repair") {
        None | Some(Json::Null) => None,
        Some(r) => Some(repair_from_json(r)?),
    };

    Ok(StoredWrapper {
        source: str_field(json, "source")?,
        domain: str_field(json, "domain")?,
        revision: usize_field(json, "revision")? as u64,
        sod: Sod::new(sod_node_from_json(field(json, "sod")?)?),
        wrapper,
        main_block,
        clean: clean_from_json(field(json, "clean")?)?,
        repair,
    })
}

fn repair_from_json(json: &Json) -> Result<RepairProvenance, StoreError> {
    Ok(RepairProvenance {
        repaired_from: usize_field(json, "repaired_from")? as u64,
        matched_exact: usize_field(json, "matched_exact")?,
        matched_container: usize_field(json, "matched_container")?,
        unmatched_old: usize_field(json, "unmatched_old")?,
        unmatched_new: usize_field(json, "unmatched_new")?,
    })
}

fn token_from_str(s: &str) -> Result<PageToken, StoreError> {
    let (kind, body) = s
        .split_once('/')
        .ok_or_else(|| StoreError::Malformed(format!("bad token '{s}'")))?;
    let sym = Symbol::intern(body);
    match kind {
        "o" => Ok(PageToken::Open(sym)),
        "c" => Ok(PageToken::Close(sym)),
        "w" => Ok(PageToken::Word(sym)),
        _ => Err(StoreError::Malformed(format!("bad token kind '{kind}'"))),
    }
}

fn multiplicity_from_str(s: &str) -> Result<Multiplicity, StoreError> {
    match s {
        "1" => Ok(Multiplicity::One),
        "?" => Ok(Multiplicity::Optional),
        "*" => Ok(Multiplicity::Star),
        "+" => Ok(Multiplicity::Plus),
        range => {
            let (n, m) = range
                .split_once('-')
                .ok_or_else(|| StoreError::Malformed(format!("bad multiplicity '{s}'")))?;
            let n = n
                .parse()
                .map_err(|_| StoreError::Malformed(format!("bad multiplicity '{s}'")))?;
            let m = m
                .parse()
                .map_err(|_| StoreError::Malformed(format!("bad multiplicity '{s}'")))?;
            Ok(Multiplicity::Range(n, m))
        }
    }
}

fn sod_node_from_json(json: &Json) -> Result<SodNode, StoreError> {
    match str_field(json, "t")?.as_str() {
        "entity" => Ok(SodNode::Entity {
            type_name: str_field(json, "name")?,
            multiplicity: multiplicity_from_str(&str_field(json, "mult")?)?,
        }),
        "tuple" => Ok(SodNode::Tuple {
            name: str_field(json, "name")?,
            children: arr_field(json, "children")?
                .iter()
                .map(sod_node_from_json)
                .collect::<Result<_, _>>()?,
        }),
        "set" => Ok(SodNode::Set {
            multiplicity: multiplicity_from_str(&str_field(json, "mult")?)?,
            child: Box::new(sod_node_from_json(field(json, "child")?)?),
        }),
        "or" => Ok(SodNode::Disjunction(
            Box::new(sod_node_from_json(field(json, "a")?)?),
            Box::new(sod_node_from_json(field(json, "b")?)?),
        )),
        other => Err(StoreError::Malformed(format!("bad sod node '{other}'"))),
    }
}

fn string_list(json: &Json, key: &str) -> Result<Vec<String>, StoreError> {
    arr_field(json, key)?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| StoreError::Malformed(format!("'{key}' holds a non-string")))
        })
        .collect()
}

fn clean_from_json(json: &Json) -> Result<CleanOptions, StoreError> {
    Ok(CleanOptions {
        drop_elements: string_list(json, "drop_elements")?,
        drop_comments: bool_field(json, "drop_comments")?,
        drop_hidden: bool_field(json, "drop_hidden")?,
        keep_attrs: string_list(json, "keep_attrs")?,
        normalize_whitespace: bool_field(json, "normalize_whitespace")?,
        drop_empty_elements: bool_field(json, "drop_empty_elements")?,
    })
}

fn path_at(paths: &[PathId], idx: usize) -> Result<PathId, StoreError> {
    paths
        .get(idx)
        .copied()
        .ok_or_else(|| StoreError::Malformed(format!("path index {idx} out of range")))
}

fn main_block_from_json(json: &Json, paths: &[PathId]) -> Result<MainBlockChoice, StoreError> {
    let attrs = arr_field(json, "attrs")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| StoreError::Malformed("bad signature attr".into()))?;
            let k = pair[0]
                .as_str()
                .ok_or_else(|| StoreError::Malformed("bad signature attr".into()))?;
            let v = pair[1]
                .as_str()
                .ok_or_else(|| StoreError::Malformed("bad signature attr".into()))?;
            Ok((Symbol::intern(k), Symbol::intern(v)))
        })
        .collect::<Result<Vec<_>, StoreError>>()?;
    Ok(MainBlockChoice {
        signature: NodeSignature {
            tag: Symbol::intern(&str_field(json, "tag")?),
            path: path_at(paths, usize_field(json, "path")?)?,
            attrs,
        },
        support: usize_field(json, "support")?,
        score: field(json, "score")?
            .as_f64()
            .ok_or_else(|| StoreError::Malformed("score is not a number".into()))?,
    })
}

fn template_from_json(
    json: &Json,
    paths: &[PathId],
    version: u32,
) -> Result<TemplateTree, StoreError> {
    let nodes = arr_field(json, "nodes")?
        .iter()
        .enumerate()
        .map(|(idx, n)| template_node_from_json(n, paths, version, idx))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TemplateTree { nodes })
}

fn usize_list(json: &Json, key: &str) -> Result<Vec<usize>, StoreError> {
    arr_field(json, key)?
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| StoreError::Malformed(format!("'{key}' holds a non-integer")))
        })
        .collect()
}

fn template_node_from_json(
    json: &Json,
    paths: &[PathId],
    version: u32,
    idx: usize,
) -> Result<TemplateNode, StoreError> {
    let multiplicity = match str_field(json, "mult")?.as_str() {
        "one" => NodeMultiplicity::One,
        "opt" => NodeMultiplicity::Optional,
        "rep" => NodeMultiplicity::Repeating,
        other => return Err(StoreError::Malformed(format!("bad multiplicity '{other}'"))),
    };
    let matchers = arr_field(json, "matchers")?
        .iter()
        .map(|m| {
            let pair = m
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| StoreError::Malformed("bad matcher".into()))?;
            let token = token_from_str(
                pair[0]
                    .as_str()
                    .ok_or_else(|| StoreError::Malformed("bad matcher token".into()))?,
            )?;
            let path = path_at(
                paths,
                pair[1]
                    .as_usize()
                    .ok_or_else(|| StoreError::Malformed("bad matcher path".into()))?,
            )?;
            Ok(Matcher { token, path })
        })
        .collect::<Result<Vec<_>, StoreError>>()?;
    let gaps = arr_field(json, "gaps")?
        .iter()
        .map(gap_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let class =
        match field(json, "class")? {
            Json::Null => None,
            v => Some(v.as_usize().ok_or_else(|| {
                StoreError::Malformed("class is neither null nor an integer".into())
            })?),
        };
    let parent = match field(json, "parent")? {
        Json::Null => None,
        v => Some(v.as_usize().ok_or_else(|| {
            StoreError::Malformed("parent is neither null nor an integer".into())
        })?),
    };
    // v1 predates stable ids; fresh inductions assigned id = index, so
    // synthesizing the index is exactly what the inducing process had.
    let stable_id = if version >= 2 {
        usize_field(json, "sid")? as u64
    } else {
        idx as u64
    };
    Ok(TemplateNode {
        class,
        stable_id,
        multiplicity,
        matchers,
        // Roles are process-local sample identities; extraction, drift
        // scoring and mapping replay never read them.
        permutation: Vec::new(),
        gaps,
        children: usize_list(json, "children")?,
        parent,
    })
}

fn gap_from_json(json: &Json) -> Result<GapInfo, StoreError> {
    let mut annotations: FxHashMap<Symbol, usize> = FxHashMap::default();
    for pair in arr_field(json, "annotations")? {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| StoreError::Malformed("bad annotation".into()))?;
        let t = pair[0]
            .as_str()
            .ok_or_else(|| StoreError::Malformed("bad annotation type".into()))?;
        let n = pair[1]
            .as_usize()
            .ok_or_else(|| StoreError::Malformed("bad annotation count".into()))?;
        annotations.insert(Symbol::intern(t), n);
    }
    Ok(GapInfo {
        annotations,
        data_instances: usize_field(json, "data_instances")?,
        total_instances: usize_field(json, "total_instances")?,
        children: usize_list(json, "children")?,
        samples: string_list(json, "samples")?,
    })
}

fn gap_ref_from_json(json: &Json) -> Result<GapRef, StoreError> {
    let pair = json
        .as_arr()
        .filter(|p| p.len() == 2)
        .ok_or_else(|| StoreError::Malformed("bad gap ref".into()))?;
    Ok(GapRef {
        node: pair[0]
            .as_usize()
            .ok_or_else(|| StoreError::Malformed("bad gap ref".into()))?,
        gap: pair[1]
            .as_usize()
            .ok_or_else(|| StoreError::Malformed("bad gap ref".into()))?,
    })
}

fn tuple_mapping_from_json(json: &Json) -> Result<TupleMapping, StoreError> {
    let atomics = arr_field(json, "atomics")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| StoreError::Malformed("bad atomic".into()))?;
            let t = pair[0]
                .as_str()
                .ok_or_else(|| StoreError::Malformed("bad atomic type".into()))?;
            Ok((t.to_owned(), gap_ref_from_json(&pair[1])?))
        })
        .collect::<Result<Vec<_>, StoreError>>()?;
    let sets = arr_field(json, "sets")?
        .iter()
        .map(|s| match str_field(s, "kind")?.as_str() {
            "repeated" => Ok(SetMapping::Repeated {
                set_node: usize_field(s, "set_node")?,
                element: tuple_mapping_from_json(field(s, "element")?)?,
            }),
            "collapsed" => Ok(SetMapping::Collapsed {
                type_name: str_field(s, "type")?,
                gap: gap_ref_from_json(field(s, "gap")?)?,
            }),
            other => Err(StoreError::Malformed(format!("bad set kind '{other}'"))),
        })
        .collect::<Result<Vec<_>, StoreError>>()?;
    Ok(TupleMapping {
        anchor: usize_field(json, "anchor")?,
        atomics,
        sets,
        missing_optional: string_list(json, "missing_optional")?,
    })
}

fn sod_mapping_from_json(json: &Json) -> Result<SodMapping, StoreError> {
    Ok(SodMapping {
        record: tuple_mapping_from_json(field(json, "record")?)?,
        record_repeats: bool_field(json, "record_repeats")?,
    })
}
