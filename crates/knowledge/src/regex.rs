//! A small regular-expression engine (Thompson NFA construction with a
//! single-sweep Pike-VM simulation — linear time in `input × states`,
//! no catastrophic backtracking, no per-position restarts).
//!
//! Supported syntax: literals, `.`, character classes `[a-z0-9]` /
//! `[^…]`, escapes `\d \w \s \D \W \S` and escaped metacharacters,
//! repetition `* + ?` and `{n}` / `{n,}` / `{n,m}`, alternation `|`,
//! grouping `( )`, anchors `^ $`. The sweep walks raw UTF-8 bytes:
//! ASCII bytes (the overwhelming majority in web text) are matched
//! against precompiled 128-bit per-instruction bitmaps without any
//! char decode or matcher dispatch, and only non-ASCII lead bytes fall
//! back to decoding the `char` and consulting the class — so Unicode
//! text stays safe (classes are ASCII-oriented, as the paper's
//! predefined types need) while the hot loop is branch-light.
//!
//! Unanchored scanning injects a fresh thread at every input position
//! during **one** pass, tracking the leftmost-longest match per
//! pattern — the same result the old restart-per-start loop computed
//! in O(len² × states). [`MultiRegex`] folds many patterns into one
//! program with per-pattern `Match` instructions, so one sweep scores
//! every predefined recognizer pattern at once. Scratch state lives in
//! a caller-provided [`RegexScratch`] (zero steady-state allocations).

use std::fmt;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    program: Vec<Inst>,
    pattern: String,
    anchored_start: bool,
    anchored_end: bool,
    /// ASCII chars a match can start with (spawn prefilter).
    first_ascii: u128,
    /// Whether a match could start with a non-ASCII char.
    first_non_ascii: bool,
    /// Whether the pattern can match the empty string.
    empty_ok: bool,
    /// Per-instruction ASCII bitmap: bit `b` of `char_ascii[pc]` is set
    /// iff `pc` is a `Char` instruction matching the ASCII char `b`.
    char_ascii: Vec<u128>,
    /// Per-instruction epsilon closures (kept in list form so
    /// [`MultiRegex::push`] can remap them when folding programs).
    closures: Vec<Closure>,
    /// Frozen per-instruction closures, indexed by pc.
    ctab: ClosureTable,
    /// Frozen merged per-ASCII-byte spawn closures ([`spawn_table`]).
    stab: ClosureTable,
}

/// The epsilon closure of one instruction, flattened at compile time:
/// the `Char` pcs a thread entering here lands on, and the pattern ids
/// whose `Match` it reaches without consuming input. The runtime walks
/// these flat lists instead of recursing through `Jmp`/`Split` chains.
#[derive(Debug, Clone, Default)]
struct Closure {
    chars: Vec<u32>,
    matches: Vec<u16>,
}

/// A frozen set of closures in CSR form: one contiguous `chars` array
/// and one contiguous `matches` array with per-entry offset rows. The
/// hot loop indexes two flat slices instead of chasing the two heap
/// pointers a `Vec<Closure>` would put on every entry.
#[derive(Debug, Clone, Default)]
struct ClosureTable {
    char_start: Vec<u32>,
    chars: Vec<u32>,
    match_start: Vec<u32>,
    matches: Vec<u16>,
}

impl ClosureTable {
    fn freeze(closures: &[Closure]) -> ClosureTable {
        let mut t = ClosureTable::default();
        for cl in closures {
            t.char_start.push(t.chars.len() as u32);
            t.chars.extend_from_slice(&cl.chars);
            t.match_start.push(t.matches.len() as u32);
            t.matches.extend_from_slice(&cl.matches);
        }
        t.char_start.push(t.chars.len() as u32);
        t.match_start.push(t.matches.len() as u32);
        t
    }

    #[inline(always)]
    fn chars_of(&self, i: usize) -> &[u32] {
        &self.chars[self.char_start[i] as usize..self.char_start[i + 1] as usize]
    }

    #[inline(always)]
    fn matches_of(&self, i: usize) -> &[u16] {
        &self.matches[self.match_start[i] as usize..self.match_start[i + 1] as usize]
    }
}

/// Merged spawn closures per ASCII byte: entry `b` concatenates, in
/// pattern order, the start closures of every *unanchored* pattern
/// whose match may begin with byte `b`. While no pattern has matched
/// yet (the overwhelmingly common state), the per-position spawn loop
/// collapses to one table lookup plus one flat closure application —
/// per-pattern eligibility checks vanish from the hot path. Anchored
/// patterns spawn only at position 0, which uses the general loop.
///
/// The entries are filtered at the *pc* level: a spawned thread
/// consumes byte `b` in the very same iteration, so a start pc whose
/// class can't match `b` would die before doing anything — it is
/// simply left out (skipping its generation stamp is safe: any
/// later same-generation add of that pc faces the same byte and dies
/// identically).
fn spawn_table(closures: &[Closure], char_ascii: &[u128], pats: &[PatMeta]) -> Vec<Closure> {
    (0..128u8)
        .map(|b| {
            let mut merged = Closure::default();
            for meta in pats {
                if !meta.anchored_start && meta.may_start_with(b as char) {
                    let cl = &closures[meta.start];
                    merged.chars.extend(
                        cl.chars
                            .iter()
                            .filter(|&&pc| char_ascii[pc as usize] >> b & 1 == 1),
                    );
                    merged.matches.extend_from_slice(&cl.matches);
                }
            }
            merged
        })
        .collect()
}

/// Flatten the epsilon closure of every instruction. DFS preorder with
/// `Split(a, b)` visiting `a` first — the same order the old recursive
/// `add_thread` produced, so thread-list priority is unchanged.
fn closure_table(program: &[Inst]) -> Vec<Closure> {
    let mut out = Vec::with_capacity(program.len());
    let mut seen = vec![u32::MAX; program.len()];
    for start in 0..program.len() {
        let mut cl = Closure::default();
        let mut stack = vec![start];
        while let Some(pc) = stack.pop() {
            if seen[pc] == start as u32 {
                continue;
            }
            seen[pc] = start as u32;
            match &program[pc] {
                Inst::Jmp(t) => stack.push(*t),
                Inst::Split(a, b) => {
                    // LIFO stack: push b first so a is visited first.
                    stack.push(*b);
                    stack.push(*a);
                }
                Inst::Char(_) => cl.chars.push(pc as u32),
                Inst::Match(p) => cl.matches.push(*p),
            }
        }
        out.push(cl);
    }
    out
}

/// Errors from [`Regex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// Unbalanced parenthesis or bracket.
    Unbalanced(&'static str),
    /// A quantifier with nothing to repeat.
    DanglingQuantifier,
    /// Malformed `{n,m}` repetition.
    BadRepetition,
    /// Trailing backslash.
    TrailingEscape,
    /// Empty character class.
    EmptyClass,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegexError::Unbalanced(what) => write!(f, "unbalanced {what}"),
            RegexError::DanglingQuantifier => write!(f, "quantifier with nothing to repeat"),
            RegexError::BadRepetition => write!(f, "malformed {{n,m}} repetition"),
            RegexError::TrailingEscape => write!(f, "trailing backslash"),
            RegexError::EmptyClass => write!(f, "empty character class"),
        }
    }
}

impl std::error::Error for RegexError {}

/// Character matcher for one NFA step.
#[derive(Debug, Clone, PartialEq)]
enum CharClass {
    Literal(char),
    Any,
    Digit(bool),
    Word(bool),
    Space(bool),
    /// Ranges and singletons; `negated` flips membership.
    Set {
        ranges: Vec<(char, char)>,
        negated: bool,
    },
}

impl CharClass {
    fn matches(&self, c: char) -> bool {
        match self {
            CharClass::Literal(l) => *l == c,
            CharClass::Any => true,
            CharClass::Digit(pos) => c.is_ascii_digit() == *pos,
            CharClass::Word(pos) => (c.is_ascii_alphanumeric() || c == '_') == *pos,
            CharClass::Space(pos) => c.is_whitespace() == *pos,
            CharClass::Set { ranges, negated } => {
                let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
                inside != *negated
            }
        }
    }

    /// Could this class match *some* non-ASCII char? Conservative
    /// (true on doubt) — used only to build the spawn prefilter, so
    /// over-approximation costs speed, never correctness.
    fn may_match_non_ascii(&self) -> bool {
        match self {
            CharClass::Literal(l) => !l.is_ascii(),
            CharClass::Any => true,
            CharClass::Digit(pos) => !*pos,
            CharClass::Word(pos) => !*pos,
            CharClass::Space(_) => true,
            CharClass::Set { ranges, negated } => {
                *negated || ranges.iter().any(|&(_, hi)| !hi.is_ascii())
            }
        }
    }
}

/// Bitmap of the ASCII chars a class matches — the byte-level fast
/// path tests one bit instead of dispatching on the class shape.
fn ascii_bitmap(cc: &CharClass) -> u128 {
    let mut bm = 0u128;
    for b in 0..128u32 {
        if cc.matches(char::from_u32(b).expect("ascii")) {
            bm |= 1 << b;
        }
    }
    bm
}

/// One bitmap per instruction (zero for non-`Char` instructions).
fn ascii_bitmaps(program: &[Inst]) -> Vec<u128> {
    program
        .iter()
        .map(|inst| match inst {
            Inst::Char(cc) => ascii_bitmap(cc),
            _ => 0,
        })
        .collect()
}

/// The chars that can begin a match of the fragment starting at
/// `start`: an ASCII bitmap, a conservative non-ASCII flag, and
/// whether the fragment can match the empty string (in which case the
/// prefilter must never suppress a spawn).
fn first_chars(program: &[Inst], start: usize) -> (u128, bool, bool) {
    let mut stack = vec![start];
    let mut seen = vec![false; program.len()];
    let mut ascii = 0u128;
    let mut non_ascii = false;
    let mut empty_ok = false;
    while let Some(pc) = stack.pop() {
        if seen[pc] {
            continue;
        }
        seen[pc] = true;
        match &program[pc] {
            Inst::Jmp(t) => stack.push(*t),
            Inst::Split(a, b) => {
                stack.push(*a);
                stack.push(*b);
            }
            Inst::Match(_) => empty_ok = true,
            Inst::Char(cc) => {
                ascii |= ascii_bitmap(cc);
                non_ascii |= cc.may_match_non_ascii();
            }
        }
    }
    (ascii, non_ascii, empty_ok)
}

/// NFA instruction. `Match` carries the index of the pattern whose
/// fragment it terminates (always 0 in a single-pattern [`Regex`];
/// [`MultiRegex`] renumbers on concatenation).
#[derive(Debug, Clone)]
enum Inst {
    Char(CharClass),
    Split(usize, usize),
    Jmp(usize),
    Match(u16),
}

// ---------------------------------------------------------------------
// Parser: pattern -> AST
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Ast {
    Empty,
    Char(CharClass),
    Concat(Vec<Ast>),
    Alt(Box<Ast>, Box<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Quest(Box<Ast>),
    Repeat(Box<Ast>, usize, Option<usize>),
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            chars: pattern.chars().peekable(),
        }
    }

    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let left = self.parse_concat()?;
        if self.chars.peek() == Some(&'|') {
            self.chars.next();
            let right = self.parse_alt()?;
            Ok(Ast::Alt(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("len checked"),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.parse_atom()?;
        match self.chars.peek() {
            Some('*') => {
                self.chars.next();
                Ok(Ast::Star(Box::new(atom)))
            }
            Some('+') => {
                self.chars.next();
                Ok(Ast::Plus(Box::new(atom)))
            }
            Some('?') => {
                self.chars.next();
                Ok(Ast::Quest(Box::new(atom)))
            }
            Some('{') => {
                self.chars.next();
                let (min, max) = self.parse_bounds()?;
                Ok(Ast::Repeat(Box::new(atom), min, max))
            }
            _ => Ok(atom),
        }
    }

    fn parse_bounds(&mut self) -> Result<(usize, Option<usize>), RegexError> {
        let mut min_s = String::new();
        while let Some(&c) = self.chars.peek() {
            if c.is_ascii_digit() {
                min_s.push(c);
                self.chars.next();
            } else {
                break;
            }
        }
        let min: usize = min_s.parse().map_err(|_| RegexError::BadRepetition)?;
        match self.chars.next() {
            Some('}') => Ok((min, Some(min))),
            Some(',') => {
                let mut max_s = String::new();
                while let Some(&c) = self.chars.peek() {
                    if c.is_ascii_digit() {
                        max_s.push(c);
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                match self.chars.next() {
                    Some('}') => {
                        let max = if max_s.is_empty() {
                            None
                        } else {
                            let m: usize = max_s.parse().map_err(|_| RegexError::BadRepetition)?;
                            if m < min {
                                return Err(RegexError::BadRepetition);
                            }
                            Some(m)
                        };
                        Ok((min, max))
                    }
                    _ => Err(RegexError::BadRepetition),
                }
            }
            _ => Err(RegexError::BadRepetition),
        }
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.chars.next() {
            None => Ok(Ast::Empty),
            Some('(') => {
                let inner = self.parse_alt()?;
                match self.chars.next() {
                    Some(')') => Ok(inner),
                    _ => Err(RegexError::Unbalanced("parenthesis")),
                }
            }
            Some(')') => Err(RegexError::Unbalanced("parenthesis")),
            Some('[') => self.parse_class(),
            Some('.') => Ok(Ast::Char(CharClass::Any)),
            Some('\\') => self.parse_escape(),
            Some(c @ ('*' | '+' | '?')) => {
                let _ = c;
                Err(RegexError::DanglingQuantifier)
            }
            Some(c) => Ok(Ast::Char(CharClass::Literal(c))),
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, RegexError> {
        match self.chars.next() {
            None => Err(RegexError::TrailingEscape),
            Some('d') => Ok(Ast::Char(CharClass::Digit(true))),
            Some('D') => Ok(Ast::Char(CharClass::Digit(false))),
            Some('w') => Ok(Ast::Char(CharClass::Word(true))),
            Some('W') => Ok(Ast::Char(CharClass::Word(false))),
            Some('s') => Ok(Ast::Char(CharClass::Space(true))),
            Some('S') => Ok(Ast::Char(CharClass::Space(false))),
            Some('n') => Ok(Ast::Char(CharClass::Literal('\n'))),
            Some('t') => Ok(Ast::Char(CharClass::Literal('\t'))),
            Some(c) => Ok(Ast::Char(CharClass::Literal(c))),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let mut negated = false;
        if self.chars.peek() == Some(&'^') {
            negated = true;
            self.chars.next();
        }
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            match self.chars.next() {
                None => return Err(RegexError::Unbalanced("bracket")),
                Some(']') => {
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    break;
                }
                Some('\\') => {
                    let c = self.chars.next().ok_or(RegexError::TrailingEscape)?;
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    match c {
                        'd' => ranges.push(('0', '9')),
                        'w' => {
                            ranges.push(('a', 'z'));
                            ranges.push(('A', 'Z'));
                            ranges.push(('0', '9'));
                            ranges.push(('_', '_'));
                        }
                        's' => {
                            ranges.push((' ', ' '));
                            ranges.push(('\t', '\t'));
                            ranges.push(('\n', '\n'));
                        }
                        other => pending = Some(other),
                    }
                }
                Some('-') if pending.is_some() && self.chars.peek() != Some(&']') => {
                    let lo = pending.take().expect("checked");
                    let hi = match self.chars.next() {
                        Some('\\') => self.chars.next().ok_or(RegexError::TrailingEscape)?,
                        Some(c) => c,
                        None => return Err(RegexError::Unbalanced("bracket")),
                    };
                    ranges.push((lo.min(hi), lo.max(hi)));
                }
                Some(c) => {
                    if let Some(p) = pending.take() {
                        ranges.push((p, p));
                    }
                    pending = Some(c);
                }
            }
        }
        if ranges.is_empty() {
            return Err(RegexError::EmptyClass);
        }
        Ok(Ast::Char(CharClass::Set { ranges, negated }))
    }
}

// ---------------------------------------------------------------------
// Compiler: AST -> NFA program
// ---------------------------------------------------------------------

fn compile(ast: &Ast, program: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Char(cc) => program.push(Inst::Char(cc.clone())),
        Ast::Concat(items) => {
            for item in items {
                compile(item, program);
            }
        }
        Ast::Alt(a, b) => {
            let split_at = program.len();
            program.push(Inst::Jmp(0)); // placeholder -> Split
            compile(a, program);
            let jmp_at = program.len();
            program.push(Inst::Jmp(0)); // placeholder
            let b_start = program.len();
            compile(b, program);
            let end = program.len();
            program[split_at] = Inst::Split(split_at + 1, b_start);
            program[jmp_at] = Inst::Jmp(end);
        }
        Ast::Star(inner) => {
            let split_at = program.len();
            program.push(Inst::Jmp(0));
            compile(inner, program);
            program.push(Inst::Jmp(split_at));
            let end = program.len();
            program[split_at] = Inst::Split(split_at + 1, end);
        }
        Ast::Plus(inner) => {
            let start = program.len();
            compile(inner, program);
            let split_at = program.len();
            program.push(Inst::Split(start, split_at + 1));
        }
        Ast::Quest(inner) => {
            let split_at = program.len();
            program.push(Inst::Jmp(0));
            compile(inner, program);
            let end = program.len();
            program[split_at] = Inst::Split(split_at + 1, end);
        }
        Ast::Repeat(inner, min, max) => {
            for _ in 0..*min {
                compile(inner, program);
            }
            match max {
                None => compile(&Ast::Star(inner.clone()), program),
                Some(m) => {
                    for _ in *min..*m {
                        compile(&Ast::Quest(inner.clone()), program);
                    }
                }
            }
        }
    }
}

impl Regex {
    /// Compile `pattern`. Leading `^` and trailing `$` act as anchors;
    /// without them, [`Regex::find`] scans and [`Regex::is_full_match`]
    /// still requires a whole-string match.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let anchored_start = pattern.starts_with('^');
        let anchored_end = pattern.ends_with('$') && !pattern.ends_with("\\$");
        let core = {
            let mut p = pattern;
            if anchored_start {
                p = &p[1..];
            }
            if anchored_end && !p.is_empty() {
                p = &p[..p.len() - 1];
            }
            p
        };
        let mut parser = Parser::new(core);
        let ast = parser.parse_alt()?;
        if parser.chars.next().is_some() {
            return Err(RegexError::Unbalanced("parenthesis"));
        }
        let mut program = Vec::new();
        compile(&ast, &mut program);
        program.push(Inst::Match(0));
        let (first_ascii, first_non_ascii, empty_ok) = first_chars(&program, 0);
        let char_ascii = ascii_bitmaps(&program);
        let closures = closure_table(&program);
        let meta = PatMeta {
            start: 0,
            anchored_start,
            anchored_end,
            first_ascii,
            first_non_ascii,
            empty_ok,
        };
        let spawn = spawn_table(&closures, &char_ascii, std::slice::from_ref(&meta));
        let ctab = ClosureTable::freeze(&closures);
        let stab = ClosureTable::freeze(&spawn);
        Ok(Regex {
            program,
            pattern: pattern.to_owned(),
            anchored_start,
            anchored_end,
            first_ascii,
            first_non_ascii,
            empty_ok,
            char_ascii,
            closures,
            ctab,
            stab,
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Does the *entire* input match?
    pub fn is_full_match(&self, input: &str) -> bool {
        DEFAULT_SCRATCH.with(|s| self.is_full_match_with(input, &mut s.borrow_mut()))
    }

    /// [`Regex::is_full_match`] with caller-provided scratch (no
    /// thread-local lookup, zero allocations once warm).
    pub fn is_full_match_with(&self, input: &str, scratch: &mut RegexScratch) -> bool {
        pike_run(
            &self.program,
            &self.char_ascii,
            &self.ctab,
            &self.stab,
            &[self.meta()],
            input,
            true,
            scratch,
        );
        scratch.best[0].is_some()
    }

    /// Find the first match; returns `(byte_start, byte_end)`.
    pub fn find(&self, input: &str) -> Option<(usize, usize)> {
        DEFAULT_SCRATCH.with(|s| self.find_with(input, &mut s.borrow_mut()))
    }

    /// [`Regex::find`] with caller-provided scratch.
    pub fn find_with(&self, input: &str, scratch: &mut RegexScratch) -> Option<(usize, usize)> {
        pike_run(
            &self.program,
            &self.char_ascii,
            &self.ctab,
            &self.stab,
            &[self.meta()],
            input,
            false,
            scratch,
        );
        scratch.best[0].map(|(s, e)| (s as usize, e as usize))
    }

    fn meta(&self) -> PatMeta {
        PatMeta {
            start: 0,
            anchored_start: self.anchored_start,
            anchored_end: self.anchored_end,
            first_ascii: self.first_ascii,
            first_non_ascii: self.first_non_ascii,
            empty_ok: self.empty_ok,
        }
    }

    /// All non-overlapping matches as `(byte_start, byte_end)`.
    pub fn find_all(&self, input: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut base = 0;
        while base <= input.len() {
            let Some((s, e)) = self.find(&input[base..]) else {
                break;
            };
            out.push((base + s, base + e));
            // Advance past the match (at least one char) to avoid loops.
            let step = if e > s {
                e
            } else {
                match input[base + s..].chars().next() {
                    Some(c) => s + c.len_utf8(),
                    None => break,
                }
            };
            base += step;
            if self.anchored_start {
                break;
            }
        }
        out
    }
}

thread_local! {
    /// Backing scratch for the allocation-free `find`/`is_full_match`
    /// convenience API; hot paths pass their own [`RegexScratch`].
    static DEFAULT_SCRATCH: std::cell::RefCell<RegexScratch> =
        std::cell::RefCell::new(RegexScratch::default());
}

/// A pattern's role inside a combined program.
#[derive(Debug, Clone)]
struct PatMeta {
    /// First instruction of the pattern's fragment.
    start: usize,
    /// Threads spawn only at position 0.
    anchored_start: bool,
    /// Matches are recorded only at end of input.
    anchored_end: bool,
    /// ASCII chars a match can start with (spawn prefilter).
    first_ascii: u128,
    /// Whether a match could start with a non-ASCII char.
    first_non_ascii: bool,
    /// Whether the pattern can match the empty string.
    empty_ok: bool,
}

impl PatMeta {
    /// Can a match of this pattern begin with `c`? The prefilter for
    /// spawning fresh threads: a spawn whose first consumable char
    /// can't be `c` dies in the very next step, so skipping it changes
    /// nothing. Empty-matching patterns always spawn (their `Match`
    /// records during the spawn itself, before any char is consumed).
    #[inline]
    fn may_start_with(&self, c: char) -> bool {
        if self.empty_ok {
            return true;
        }
        if (c as u32) < 128 {
            self.first_ascii >> (c as u32) & 1 == 1
        } else {
            self.first_non_ascii
        }
    }
}

/// Reusable Pike-VM state: thread lists, generation-stamped visited
/// marks, and per-pattern best matches. One scratch serves any number
/// of programs; buffers grow to the high-water mark and are reused.
#[derive(Debug, Default)]
pub struct RegexScratch {
    /// Live threads `(pc, start_byte)` for the current position.
    clist: Vec<(u32, u32)>,
    /// Threads for the next position.
    nlist: Vec<(u32, u32)>,
    /// Generation stamp per instruction (current list).
    cseen: Vec<u64>,
    /// Generation stamp per instruction (next list).
    nseen: Vec<u64>,
    cgen: u64,
    ngen: u64,
    /// Monotone generation counter (never reset, so stale stamps from
    /// earlier runs can never collide).
    counter: u64,
    /// Best `(start_byte, end_byte)` per pattern so far.
    best: Vec<Option<(u32, u32)>>,
}

/// One sweep of the Pike VM over `input`, filling `scratch.best` with
/// the leftmost-longest match per pattern (`None` if it never matched).
/// `force_full` overrides every pattern to whole-string semantics.
///
/// The sweep iterates raw bytes: an ASCII byte is matched against
/// `char_ascii[pc]` with one shift-and-mask (no decode, no dispatch on
/// the class shape); a non-ASCII lead byte decodes its `char` once and
/// falls back to [`CharClass::matches`]. Positions were already byte
/// offsets, so results are bit-identical to the old char-level loop.
///
/// Thread-list invariant: lists stay sorted by increasing `start`
/// (stepped threads precede freshly spawned ones), so the first thread
/// reaching a `Match` instruction in a generation carries the smallest
/// start — pc-level dedup can never hide a better match.
#[allow(clippy::too_many_arguments)] // hot internal loop; a params struct would cost an indirection
fn pike_run(
    insts: &[Inst],
    char_ascii: &[u128],
    closures: &ClosureTable,
    spawn: &ClosureTable,
    pats: &[PatMeta],
    input: &str,
    force_full: bool,
    scratch: &mut RegexScratch,
) {
    let RegexScratch {
        clist,
        nlist,
        cseen,
        nseen,
        cgen,
        ngen,
        counter,
        best,
    } = scratch;
    if cseen.len() < insts.len() {
        cseen.resize(insts.len(), 0);
        nseen.resize(insts.len(), 0);
    }
    best.clear();
    best.resize(pats.len(), None);
    let len = input.len() as u32;

    *counter += 1;
    *cgen = *counter;
    clist.clear();
    if input.is_empty() {
        // No chars to prefilter against: spawn every pattern at 0 so
        // empty matches (anchored or not) record during the spawn.
        for meta in pats {
            add_closure(
                closures.chars_of(meta.start),
                closures.matches_of(meta.start),
                pats,
                0,
                0,
                len,
                force_full,
                clist,
                cseen,
                *cgen,
                best,
            );
        }
        return;
    }
    // Union prefilter: one bit-test per char decides whether the
    // per-pattern spawn loop runs at all.
    let mut union_ascii = 0u128;
    let mut union_non_ascii = false;
    let mut any_empty = false;
    for meta in pats {
        union_ascii |= meta.first_ascii;
        union_non_ascii |= meta.first_non_ascii;
        any_empty |= meta.empty_ok;
    }
    let bytes = input.as_bytes();
    let mut byte_i = 0usize;
    // Whether any pattern has recorded a match yet — the gate for the
    // merged spawn table (which assumes every pattern is still hunting).
    let mut matched_any = false;
    while byte_i < bytes.len() {
        // Fast-forward: with no live threads and no empty-matching
        // pattern, nothing can happen until a byte that may *start*
        // a match — hunt for it with a tight byte scan instead of
        // paying the per-position generation bookkeeping. Skipped
        // non-ASCII chars are skipped whole (continuation bytes only
        // follow lead bytes the predicate already rejected), so the
        // loop always resumes on a char boundary.
        if clist.is_empty() && !any_empty {
            let Some(off) = bytes[byte_i..].iter().position(|&b| {
                if b < 0x80 {
                    union_ascii >> b & 1 == 1
                } else {
                    union_non_ascii && b >= 0xC0
                }
            }) else {
                break;
            };
            byte_i += off;
        }
        let b = bytes[byte_i];
        // ASCII bytes never decode; a non-ASCII lead byte decodes its
        // char once for this position (spawn filter + class fallback).
        let (c, width) = if b < 0x80 {
            (b as char, 1)
        } else {
            let c = input[byte_i..].chars().next().expect("lead byte");
            (c, c.len_utf8())
        };
        let bpos = byte_i as u32;
        // Spawn fresh threads starting at this position — after the
        // threads stepped from earlier positions, so earlier starts
        // keep pc priority. The common state (ASCII byte, past the
        // start, nothing matched yet, scan semantics) takes the merged
        // per-byte table: one flat closure instead of a pattern loop.
        if byte_i != 0 && !force_full && !matched_any && b < 0x80 {
            matched_any |= add_closure(
                spawn.chars_of(b as usize),
                spawn.matches_of(b as usize),
                pats,
                bpos,
                bpos,
                len,
                force_full,
                clist,
                cseen,
                *cgen,
                best,
            );
        } else {
            let may_spawn_here = any_empty
                || if b < 0x80 {
                    union_ascii >> b & 1 == 1
                } else {
                    union_non_ascii
                };
            if may_spawn_here {
                for (pid, meta) in pats.iter().enumerate() {
                    let eligible = if byte_i == 0 {
                        true
                    } else {
                        !(meta.anchored_start || force_full) && best[pid].is_none()
                    };
                    if eligible && meta.may_start_with(c) {
                        matched_any |= add_closure(
                            closures.chars_of(meta.start),
                            closures.matches_of(meta.start),
                            pats,
                            bpos,
                            bpos,
                            len,
                            force_full,
                            clist,
                            cseen,
                            *cgen,
                            best,
                        );
                    }
                }
            }
        }
        let pos = bpos + width as u32;
        *counter += 1;
        *ngen = *counter;
        nlist.clear();
        for &(pc, start) in clist.iter() {
            // clist holds only `Char` pcs (add_thread's invariant), so
            // the bitmap row is authoritative for ASCII bytes.
            let hit = if b < 0x80 {
                char_ascii[pc as usize] >> b & 1 == 1
            } else {
                match &insts[pc as usize] {
                    Inst::Char(cc) => cc.matches(c),
                    _ => unreachable!("clist holds only Char instructions"),
                }
            };
            if hit {
                matched_any |= add_closure(
                    closures.chars_of(pc as usize + 1),
                    closures.matches_of(pc as usize + 1),
                    pats,
                    start,
                    pos,
                    len,
                    force_full,
                    nlist,
                    nseen,
                    *ngen,
                    best,
                );
            }
        }
        std::mem::swap(clist, nlist);
        std::mem::swap(cseen, nseen);
        std::mem::swap(cgen, ngen);
        if clist.is_empty() {
            // Dead only if no pattern may ever spawn again.
            let can_spawn = pats
                .iter()
                .enumerate()
                .any(|(pid, m)| !(m.anchored_start || force_full) && best[pid].is_none());
            if !can_spawn {
                break;
            }
        }
        byte_i += width;
    }
    // Spawn once more at end of input: consumes nothing, but lets an
    // empty-matching `$`-anchored pattern record a match at (len, len).
    // (After an early break this is provably a no-op — the break
    // condition is exactly "no pattern is eligible to spawn".)
    for (pid, meta) in pats.iter().enumerate() {
        if !(meta.anchored_start || force_full) && best[pid].is_none() && meta.empty_ok {
            add_closure(
                closures.chars_of(meta.start),
                closures.matches_of(meta.start),
                pats,
                len,
                len,
                len,
                force_full,
                clist,
                cseen,
                *cgen,
                best,
            );
        }
    }
}

/// Apply a precomputed epsilon closure: enqueue its `Char` pcs (pc-level
/// dedup via generation stamps) and record its `Match`es into `best`
/// under the leftmost-longest rule. Flat-list replacement for the
/// classic recursive `add_thread`; match recording is comparison-based,
/// so revisiting a `Match` pc from a later (larger-start) thread in the
/// same generation can never displace a better result. Returns whether
/// a previously-unmatched pattern recorded its first match (the signal
/// that spawn eligibility changed).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn add_closure(
    chars: &[u32],
    matches: &[u16],
    pats: &[PatMeta],
    start: u32,
    pos: u32,
    len: u32,
    force_full: bool,
    list: &mut Vec<(u32, u32)>,
    seen: &mut [u64],
    gen: u64,
    best: &mut [Option<(u32, u32)>],
) -> bool {
    for &pc in chars {
        let stamp = &mut seen[pc as usize];
        if *stamp != gen {
            *stamp = gen;
            list.push((pc, start));
        }
    }
    let mut newly_matched = false;
    for &p in matches {
        let pid = p as usize;
        if !(pats[pid].anchored_end || force_full) || pos == len {
            match &mut best[pid] {
                slot @ None => {
                    *slot = Some((start, pos));
                    newly_matched = true;
                }
                Some((bs, be)) => {
                    if start < *bs {
                        *bs = start;
                        *be = pos;
                    } else if start == *bs && pos > *be {
                        *be = pos;
                    }
                }
            }
        }
    }
    newly_matched
}

/// Several [`Regex`] programs folded into one instruction stream so a
/// single [`pike_run`] sweep scores every pattern at once — the engine
/// behind the compiled Predefined/UserRegex recognizers.
#[derive(Debug, Clone, Default)]
pub struct MultiRegex {
    insts: Vec<Inst>,
    /// Parallel to `insts`: per-instruction ASCII bitmaps.
    char_ascii: Vec<u128>,
    /// Parallel to `insts`: precomputed epsilon closures (list form,
    /// remapped on push; frozen into `ctab` after every push).
    closures: Vec<Closure>,
    /// Frozen per-instruction closures, indexed by pc.
    ctab: ClosureTable,
    /// Frozen merged per-ASCII-byte spawn closures, rebuilt per push.
    stab: ClosureTable,
    pats: Vec<PatMeta>,
    /// Union of the patterns' spawn prefilters, for a whole-input
    /// pre-scan ([`MultiRegex::could_match_in`]).
    union_ascii: u128,
    union_non_ascii: bool,
    any_empty: bool,
}

impl MultiRegex {
    pub fn new() -> MultiRegex {
        MultiRegex::default()
    }

    /// Number of patterns added.
    pub fn len(&self) -> usize {
        self.pats.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pats.is_empty()
    }

    /// Add `re` with scan semantics ([`Regex::find`], honoring the
    /// pattern's own `^`/`$` anchors); returns the pattern's slot.
    pub fn push_find(&mut self, re: &Regex) -> usize {
        self.push(re, false)
    }

    /// Add `re` with whole-string semantics: its slot is `Some` iff
    /// the entire input matches ([`Regex::is_full_match`]).
    pub fn push_full(&mut self, re: &Regex) -> usize {
        self.push(re, true)
    }

    fn push(&mut self, re: &Regex, full: bool) -> usize {
        let pid = self.pats.len();
        assert!(pid < u16::MAX as usize, "too many patterns in MultiRegex");
        let base = self.insts.len();
        for inst in &re.program {
            self.insts.push(match inst {
                Inst::Char(cc) => Inst::Char(cc.clone()),
                Inst::Split(a, b) => Inst::Split(a + base, b + base),
                Inst::Jmp(t) => Inst::Jmp(t + base),
                Inst::Match(_) => Inst::Match(pid as u16),
            });
        }
        // The fragment's instructions mirror `re.program` one-to-one:
        // bitmaps copy verbatim, closures shift their pc targets by
        // `base` and renumber every `Match` to this pattern's slot.
        self.char_ascii.extend_from_slice(&re.char_ascii);
        self.closures.extend(re.closures.iter().map(|cl| Closure {
            chars: cl.chars.iter().map(|&pc| pc + base as u32).collect(),
            matches: cl.matches.iter().map(|_| pid as u16).collect(),
        }));
        self.pats.push(PatMeta {
            start: base,
            anchored_start: re.anchored_start || full,
            anchored_end: re.anchored_end || full,
            first_ascii: re.first_ascii,
            first_non_ascii: re.first_non_ascii,
            empty_ok: re.empty_ok,
        });
        self.union_ascii |= re.first_ascii;
        self.union_non_ascii |= re.first_non_ascii;
        self.any_empty |= re.empty_ok;
        self.ctab = ClosureTable::freeze(&self.closures);
        self.stab =
            ClosureTable::freeze(&spawn_table(&self.closures, &self.char_ascii, &self.pats));
        pid
    }

    /// Could *any* pattern match somewhere in `input`? A cheap single
    /// scan over the union of the patterns' first-char sets; when it
    /// returns `false`, [`MultiRegex::run_into`] is guaranteed to
    /// produce all-`None`, so callers can skip the sweep entirely.
    pub fn could_match_in(&self, input: &str) -> bool {
        // Byte-level: a non-ASCII char is represented by its lead byte
        // (continuation bytes only follow a lead byte already tested),
        // so the scan never decodes a char.
        self.any_empty
            || input.bytes().any(|b| {
                if b < 0x80 {
                    self.union_ascii >> b & 1 == 1
                } else {
                    self.union_non_ascii && b >= 0xC0
                }
            })
    }

    /// One sweep over `input`; `out[slot]` receives that pattern's
    /// leftmost-longest match as byte offsets (for whole-string slots:
    /// `Some` iff the full input matched).
    pub fn run_into(
        &self,
        input: &str,
        scratch: &mut RegexScratch,
        out: &mut Vec<Option<(usize, usize)>>,
    ) {
        pike_run(
            &self.insts,
            &self.char_ascii,
            &self.ctab,
            &self.stab,
            &self.pats,
            input,
            false,
            scratch,
        );
        out.clear();
        out.extend(
            scratch
                .best
                .iter()
                .map(|b| b.map(|(s, e)| (s as usize, e as usize))),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).expect("pattern should compile")
    }

    #[test]
    fn literal_match() {
        assert!(re("abc").is_full_match("abc"));
        assert!(!re("abc").is_full_match("abd"));
        assert!(!re("abc").is_full_match("abcd"));
    }

    #[test]
    fn dot_and_classes() {
        assert!(re("a.c").is_full_match("axc"));
        assert!(re("[a-c]+").is_full_match("abcabc"));
        assert!(!re("[a-c]+").is_full_match("abd"));
        assert!(re("[^0-9]+").is_full_match("abc"));
        assert!(!re("[^0-9]+").is_full_match("a1c"));
    }

    #[test]
    fn escapes() {
        assert!(re(r"\d{3}").is_full_match("123"));
        assert!(re(r"\w+").is_full_match("ab_1"));
        assert!(re(r"\s").is_full_match(" "));
        assert!(re(r"\$\d+").is_full_match("$42"));
        assert!(re(r"\D+").is_full_match("abc"));
    }

    #[test]
    fn quantifiers() {
        assert!(re("ab*c").is_full_match("ac"));
        assert!(re("ab*c").is_full_match("abbbc"));
        assert!(re("ab+c").is_full_match("abc"));
        assert!(!re("ab+c").is_full_match("ac"));
        assert!(re("ab?c").is_full_match("ac"));
        assert!(re("ab?c").is_full_match("abc"));
        assert!(!re("ab?c").is_full_match("abbc"));
    }

    #[test]
    fn bounded_repetition() {
        assert!(re(r"\d{2,4}").is_full_match("12"));
        assert!(re(r"\d{2,4}").is_full_match("1234"));
        assert!(!re(r"\d{2,4}").is_full_match("1"));
        assert!(!re(r"\d{2,4}").is_full_match("12345"));
        assert!(re(r"a{3}").is_full_match("aaa"));
        assert!(re(r"a{2,}").is_full_match("aaaaa"));
        assert!(!re(r"a{2,}").is_full_match("a"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(re("cat|dog").is_full_match("cat"));
        assert!(re("cat|dog").is_full_match("dog"));
        assert!(!re("cat|dog").is_full_match("cow"));
        assert!(re("(ab)+").is_full_match("ababab"));
        assert!(re("a(b|c)d").is_full_match("abd"));
        assert!(re("a(b|c)d").is_full_match("acd"));
    }

    #[test]
    fn find_scans() {
        assert_eq!(re(r"\d+").find("abc 123 xyz"), Some((4, 7)));
        assert_eq!(re("zzz").find("abc"), None);
    }

    #[test]
    fn find_returns_longest_at_start() {
        assert_eq!(re(r"\d+").find("1234"), Some((0, 4)));
    }

    #[test]
    fn find_all_non_overlapping() {
        let ms = re(r"\d+").find_all("a1b22c333");
        assert_eq!(ms, vec![(1, 2), (3, 5), (6, 9)]);
    }

    #[test]
    fn anchors() {
        assert_eq!(re("^ab").find("xxab"), None);
        assert_eq!(re("^ab").find("abxx"), Some((0, 2)));
        assert_eq!(re("ab$").find("abxx"), None);
        assert_eq!(re("ab$").find("xxab"), Some((2, 4)));
        assert!(re("^ab$").is_full_match("ab"));
    }

    #[test]
    fn unicode_safe() {
        assert!(re("..").is_full_match("é€"));
        let m = re("€").find("a€b").expect("match");
        assert_eq!(&"a€b"[m.0..m.1], "€");
    }

    #[test]
    fn error_cases() {
        assert!(Regex::new("(ab").is_err());
        assert!(Regex::new("ab)").is_err());
        assert!(Regex::new("[ab").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{2,1}").is_err());
        assert!(Regex::new("a\\").is_err());
        assert!(Regex::new("a{x}").is_err());
    }

    #[test]
    fn no_catastrophic_backtracking() {
        // (a+)+b against aaaa...c — NFA simulation stays linear.
        let r = re("(a+)+b");
        let input = "a".repeat(200) + "c";
        assert_eq!(r.find(&input), None);
    }

    #[test]
    fn class_with_escape_and_dash() {
        assert!(re(r"[\d-]+").is_full_match("12-34"));
        assert!(re(r"[a\]]+").is_full_match("a]a"));
    }

    #[test]
    fn date_like_pattern() {
        let r = re(
            r"(January|February|March|April|May|June|July|August|September|October|November|December) \d{1,2}, \d{4}",
        );
        assert!(r.find("Concert on August 8, 2010 at 8pm").is_some());
        assert!(r.find("Concert on Augst 8, 2010").is_none());
    }

    #[test]
    fn price_like_pattern() {
        let r = re(r"\$\d+\.\d{2}");
        assert_eq!(r.find("only $12.99 today"), Some((5, 11)));
    }
}
