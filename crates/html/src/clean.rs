//! Page cleaning (paper §III, pre-processing).
//!
//! "Often, there are many segments in Web pages that do not encode
//! useful information, such as headers, scripts, styles, comments,
//! images, hidden tags, white spaces, tag properties, empty tags, etc."
//!
//! [`clean_document`] removes those in place: script/style/noise
//! elements, comments, hidden elements, presentational attributes,
//! whitespace-only text nodes, and (repeatedly) empty elements.

use crate::dom::{is_void, Document, NodeId, NodeKind};

/// Configuration for [`clean_document`].
#[derive(Debug, Clone)]
pub struct CleanOptions {
    /// Elements removed entirely, subtree included.
    pub drop_elements: Vec<String>,
    /// Remove comment nodes.
    pub drop_comments: bool,
    /// Remove elements with `style="display:none"` / `hidden` /
    /// `type="hidden"`.
    pub drop_hidden: bool,
    /// Keep only these attributes (the ones later stages need to
    /// identify blocks); everything else is presentational noise.
    pub keep_attrs: Vec<String>,
    /// Remove whitespace-only text nodes and collapse internal runs.
    pub normalize_whitespace: bool,
    /// Repeatedly remove childless non-void elements.
    pub drop_empty_elements: bool,
}

impl Default for CleanOptions {
    fn default() -> Self {
        CleanOptions {
            drop_elements: ["script", "style", "noscript", "iframe", "svg", "head"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            drop_comments: true,
            drop_hidden: true,
            keep_attrs: ["id", "class", "type", "href"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            normalize_whitespace: true,
            drop_empty_elements: true,
        }
    }
}

/// Clean `doc` in place according to `opts`.
pub fn clean_document(doc: &mut Document, opts: &CleanOptions) {
    objectrunner_obs::global_count("objectrunner.html.clean.documents", 1);
    let victims: Vec<NodeId> = doc
        .descendants(doc.root())
        .filter(|&id| should_drop(doc, id, opts))
        .collect();
    for id in victims {
        doc.detach(id);
    }

    strip_attrs(doc, opts);

    if opts.normalize_whitespace {
        normalize_text_nodes(doc);
    }

    if opts.drop_empty_elements {
        // Removing an empty element can make its parent empty; iterate
        // to a fixpoint (bounded by tree depth).
        loop {
            let empties: Vec<NodeId> = doc
                .descendants(doc.root())
                .filter(|&id| is_empty_element(doc, id))
                .collect();
            if empties.is_empty() {
                break;
            }
            for id in empties {
                doc.detach(id);
            }
        }
    }
}

fn should_drop(doc: &Document, id: NodeId, opts: &CleanOptions) -> bool {
    match &doc.node(id).kind {
        NodeKind::Comment(_) => opts.drop_comments,
        NodeKind::Element { name, attrs } => {
            let name = name.as_str();
            if opts.drop_elements.iter().any(|d| d == name) {
                return true;
            }
            if opts.drop_hidden {
                let hidden_attr = attrs.iter().any(|&(a, v)| {
                    let a = a.as_str();
                    (a == "hidden")
                        || (a == "type" && v.as_str() == "hidden")
                        || (a == "style" && v.as_str().replace(' ', "").contains("display:none"))
                });
                if hidden_attr {
                    return true;
                }
            }
            false
        }
        _ => false,
    }
}

fn strip_attrs(doc: &mut Document, opts: &CleanOptions) {
    let ids: Vec<NodeId> = doc.descendants(doc.root()).collect();
    for id in ids {
        if let NodeKind::Element { attrs, .. } = &mut doc.node_mut(id).kind {
            attrs.retain(|(a, _)| opts.keep_attrs.iter().any(|k| k == a.as_str()));
        }
    }
}

fn normalize_text_nodes(doc: &mut Document) {
    let ids: Vec<NodeId> = doc.descendants(doc.root()).collect();
    let mut empty_text = Vec::new();
    for id in ids {
        if let NodeKind::Text(t) = &mut doc.node_mut(id).kind {
            let norm = crate::dom::normalize_ws(t);
            if norm.is_empty() {
                empty_text.push(id);
            } else {
                *t = norm;
            }
        }
    }
    for id in empty_text {
        doc.detach(id);
    }
}

fn is_empty_element(doc: &Document, id: NodeId) -> bool {
    match &doc.node(id).kind {
        NodeKind::Element { name, .. } => !is_void(*name) && doc.children(id).is_empty(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn cleaned(html: &str) -> Document {
        let mut doc = parse(html);
        clean_document(&mut doc, &CleanOptions::default());
        doc
    }

    #[test]
    fn drops_scripts_and_styles() {
        let doc = cleaned("<body><script>x()</script><style>.a{}</style><p>keep</p></body>");
        assert_eq!(doc.text_content(doc.root()), "keep");
        assert!(doc.elements_by_tag(doc.root(), "script").is_empty());
        assert!(doc.elements_by_tag(doc.root(), "style").is_empty());
    }

    #[test]
    fn drops_head() {
        let doc = cleaned("<html><head><title>T</title></head><body><p>b</p></body></html>");
        assert_eq!(doc.text_content(doc.root()), "b");
    }

    #[test]
    fn drops_comments() {
        let doc = cleaned("<p>a<!-- hidden note -->b</p>");
        assert_eq!(doc.text_content(doc.root()), "a b");
    }

    #[test]
    fn drops_hidden_elements() {
        let doc = cleaned(
            "<div><span hidden>h1</span><input type=\"hidden\" value=\"v\">\
             <span style=\"display: none\">h2</span><span>vis</span></div>",
        );
        assert_eq!(doc.text_content(doc.root()), "vis");
    }

    #[test]
    fn strips_presentational_attributes() {
        let doc = cleaned("<div id=\"m\" style=\"color:red\" onclick=\"x()\" class=\"c\">t</div>");
        let div = doc.elements_by_tag(doc.root(), "div")[0];
        assert_eq!(doc.attr(div, "id"), Some("m"));
        assert_eq!(doc.attr(div, "class"), Some("c"));
        assert_eq!(doc.attr(div, "style"), None);
        assert_eq!(doc.attr(div, "onclick"), None);
    }

    #[test]
    fn removes_whitespace_only_text() {
        let doc = cleaned("<div>\n   <p>x</p>\n   </div>");
        let div = doc.elements_by_tag(doc.root(), "div")[0];
        assert_eq!(doc.children(div).len(), 1);
    }

    #[test]
    fn removes_empty_elements_transitively() {
        let doc = cleaned("<div><span><b></b></span><p>x</p></div>");
        assert!(doc.elements_by_tag(doc.root(), "span").is_empty());
        assert!(doc.elements_by_tag(doc.root(), "b").is_empty());
        assert_eq!(doc.text_content(doc.root()), "x");
    }

    #[test]
    fn keeps_void_elements() {
        let doc = cleaned("<p>a<br>b</p>");
        assert_eq!(doc.elements_by_tag(doc.root(), "br").len(), 1);
    }

    #[test]
    fn empty_element_removal_can_be_disabled() {
        let mut doc = parse("<div><span></span>x</div>");
        let opts = CleanOptions {
            drop_empty_elements: false,
            ..CleanOptions::default()
        };
        clean_document(&mut doc, &opts);
        assert_eq!(doc.elements_by_tag(doc.root(), "span").len(), 1);
    }
}
