//! # objectrunner-serve
//!
//! The serving layer over the wrapper store: a long-running daemon
//! that answers extraction requests from the wrapper cache, skipping
//! Parse→Wrap induction entirely on the cached path, while watching
//! each source for **template drift** — the site shipping a redesign
//! that silently breaks the stored wrapper.
//!
//! The daemon is built for concurrent traffic: sources live in
//! per-domain shards ([`shard`]) whose wrapper snapshots sit behind
//! version-stamped lock-free slots ([`slot`]), so the cached-extract
//! hot path takes no lock; TCP connections are served by a bounded
//! acceptor + worker pool with request batching and typed overload
//! shedding ([`conn`]).
//!
//! See [`service`] for the protocol and drift lifecycle, and
//! `src/main.rs` for the `objectrunner-serve` binary (stdin/TCP
//! loop, `seed-corpus`, `extract-file`, `extract-stream`).

pub mod conn;
pub mod service;
pub mod shard;
pub mod slot;
pub mod telemetry;

pub use conn::{serve_tcp, PoolConfig, PoolHandle};
pub use service::{
    instance_json, PoolInfo, ServeConfig, Service, Special, WrapperState, REQUEST_LATENCY,
    REQUEST_QUEUE_WAIT,
};
pub use shard::ReaderCache;
pub use slot::{Slot, SlotReader};
pub use telemetry::{AccessLog, AccessLogStats, RetainedTrace, TraceKind, TraceSampler};
