//! Live-telemetry guarantees of the serving layer.
//!
//! * **Determinism** — under a pinned fake clock, the `watch` stream,
//!   the `metrics-text` exposition and the `trace slow` dump of a
//!   `threads = 8` service are byte-identical to a `threads = 1` run
//!   once the scheduling-dependent values (CPU-time accounting, stage
//!   wall timings, memo hit/miss splits) are normalized away.
//! * **Windows** — the `watch` line reports windowed rates and
//!   quantiles that decay to zero once the clock moves past the
//!   sliding window, while the cumulative request counter keeps its
//!   value.
//! * **Tail sampling** — slow (past the `--slow-trace-micros` floor),
//!   errored and shed requests are retained with their span trees and
//!   retrievable via `trace slow|errors|shed`.
//! * **Access log** — one structured JSONL line per request, with
//!   size-capped rotation to `<path>.1`, surfaced in `status.live`.
//! * **Gauge discipline** — the serving gauges (`inflight`,
//!   `queue_depth`, `active_conns`) never go negative under overload
//!   churn, and settle back to zero when the load stops.

use objectrunner_obs::{Clock, ClockSource, FakeClock, Obs, WindowConfig, DEFAULT_SPAN_CAPACITY};
use objectrunner_serve::{serve_tcp, PoolConfig, ServeConfig, Service};
use objectrunner_store::Json;
use objectrunner_webgen::{generate_site, Domain, PageKind, SiteSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "objectrunner-telemetry-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A live-telemetry service under a pinned fake clock: sliding
/// windows on, slow-trace floor at zero (every completed request
/// qualifies until the adaptive threshold has samples), optional
/// access log.
fn pinned_live_service(
    store_dir: PathBuf,
    threads: usize,
    access_log: Option<PathBuf>,
    access_log_max_bytes: u64,
) -> (Service, Arc<FakeClock>) {
    let (clock, fake) = Clock::fake();
    fake.set_wall_unix_micros(1_700_000_000_000_000);
    let obs = Obs::with_windows(
        clock.clone(),
        DEFAULT_SPAN_CAPACITY,
        WindowConfig::default(),
    );
    let service = Service::with_observability(
        ServeConfig {
            store_dir,
            threads: Some(threads),
            slow_trace_micros: Some(0),
            access_log,
            access_log_max_bytes,
            ..ServeConfig::default()
        },
        obs,
        clock,
    );
    (service, fake)
}

/// Persist a books wrapper into `store_dir` and return the extract
/// request every run sends.
fn seed_wrapper(store_dir: &Path) -> String {
    let source = generate_site(&SiteSpec::clean(
        "telemetry-books",
        Domain::Books,
        PageKind::List,
        8,
        17_031,
    ));
    let pages = Json::Arr(source.pages.iter().map(Json::str).collect());
    let induce = Json::Obj(vec![
        ("cmd".into(), Json::str("induce")),
        ("source".into(), Json::str("telemetry-books")),
        ("domain".into(), Json::str("Books")),
        ("pages".into(), pages.clone()),
    ])
    .render();
    let (seeder, _) = pinned_live_service(store_dir.to_path_buf(), 2, None, 64 << 20);
    let response = seeder.handle_line(&induce);
    assert!(
        response.contains("\"ok\":true"),
        "seed induction failed: {response}"
    );
    Json::Obj(vec![
        ("cmd".into(), Json::str("extract")),
        ("source".into(), Json::str("telemetry-books")),
        ("pages".into(), pages),
    ])
    .render()
}

/// The deterministic traffic pattern every determinism run replays:
/// five cached extracts and one unknown-cmd error, the fake clock
/// stepping identically between requests.
fn drive(service: &Service, fake: &FakeClock, extract: &str) {
    for _ in 0..5 {
        let response = service.handle_line(extract);
        assert!(response.contains("\"ok\":true"), "extract failed");
        fake.advance_micros(200_000);
    }
    let response = service.handle_line(r#"{"cmd":"nope"}"#);
    assert!(response.contains("\"ok\":false"));
    fake.advance_micros(200_000);
}

/// Replace `"key":<int>` with `"key":0` everywhere in a line.
fn zero_key(line: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(pos) = rest.find(&needle) {
        let after = pos + needle.len();
        out.push_str(&rest[..after]);
        let tail = &rest[after..];
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '-'))
            .unwrap_or(tail.len());
        out.push('0');
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Zero every scheduling-dependent JSON value: CPU time is real
/// thread time even under a fake clock, and the busy-time attrs ride
/// along with it.
fn normalize_json(raw: &str) -> String {
    let mut line = raw.to_owned();
    for key in [
        "start_us",
        "dur_us",
        "cpu_us",
        "cpu_micros",
        "wall_micros",
        "busy_micros",
        "latency_micros",
    ] {
        line = zero_key(&line, key);
    }
    line
}

/// Zero the sample value of every Prometheus line whose metric name
/// is scheduling-dependent: real-CPU stage timings, the thread-count
/// gauge and the memo hit/miss split.
fn normalize_metrics(text: &str) -> String {
    text.lines()
        .map(|line| {
            let Some((name, _)) = line.rsplit_once(' ') else {
                return line.to_owned();
            };
            if line.starts_with("# ") {
                line.to_owned()
            } else if name.contains("micros")
                || name.contains("exec_threads")
                || name.contains("cache_hits")
                || name.contains("cache_misses")
            {
                format!("{name} 0")
            } else {
                line.to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// One full deterministic session: drive the traffic, then capture
/// the three live-telemetry read paths.
fn telemetry_session(
    store_dir: PathBuf,
    threads: usize,
    extract: &str,
) -> (String, String, String) {
    let (service, fake) = pinned_live_service(store_dir, threads, None, 64 << 20);
    drive(&service, &fake, extract);
    let spec = service
        .special(r#"{"cmd":"watch","count":3,"interval_micros":0}"#)
        .expect("watch parses as a streaming command");
    let mut watch = String::new();
    service.run_special(&spec, &mut |line| {
        watch.push_str(line);
        watch.push('\n');
        true
    });
    let metrics = service.metrics_text();
    let slow = service.handle_line(r#"{"cmd":"trace","kind":"slow","limit":16}"#);
    (watch, normalize_metrics(&metrics), normalize_json(&slow))
}

#[test]
fn watch_metrics_text_and_trace_slow_are_identical_across_thread_counts() {
    let dir = scratch_dir("determinism");
    let extract = seed_wrapper(&dir);
    let (watch_1, metrics_1, slow_1) = telemetry_session(dir.clone(), 1, &extract);
    let (watch_8, metrics_8, slow_8) = telemetry_session(dir.clone(), 8, &extract);

    assert_eq!(watch_1, watch_8, "watch stream diverged across threads");
    for (a, b) in metrics_1.lines().zip(metrics_8.lines()) {
        assert_eq!(a, b, "first divergent metrics-text line");
    }
    assert_eq!(
        metrics_1.lines().count(),
        metrics_8.lines().count(),
        "metrics-text expositions differ in length"
    );
    assert_eq!(slow_1, slow_8, "trace slow dump diverged across threads");

    // The watch line is the canonical schema ci greps for.
    let first = watch_1.lines().next().expect("one watch line per tick");
    assert!(first.starts_with(r#"{"type":"watch","tick":0,"#));
    for key in [
        "uptime_micros",
        "requests",
        "rps_1s",
        "rps_10s",
        "rps_60s",
        "p50_us",
        "p99_us",
        "p999_us",
        "inflight",
        "queue_depth",
        "active_conns",
        "shed_requests",
        "dropped_spans",
        "access_log_dropped",
    ] {
        assert!(
            first.contains(&format!("\"{key}\":")),
            "watch line missing {key}: {first}"
        );
    }
}

#[test]
fn watch_windows_decay_while_cumulative_counters_hold() {
    let dir = scratch_dir("rollover");
    let extract = seed_wrapper(&dir);
    let (service, fake) = pinned_live_service(dir, 1, None, 64 << 20);
    drive(&service, &fake, extract.as_str());

    let watch_once = |service: &Service| {
        let spec = service
            .special(r#"{"cmd":"watch","count":1,"interval_micros":0}"#)
            .expect("watch parses");
        let mut line = String::new();
        service.run_special(&spec, &mut |l| {
            line = l.to_owned();
            true
        });
        Json::parse(&line).expect("watch line is JSON")
    };

    // Inside the window: six completed requests over 1.2 fake
    // seconds; the 60 s rate and quantiles see all of them.
    let live = watch_once(&service);
    assert_eq!(live.get("requests").and_then(Json::as_i64), Some(6));
    assert!(live.get("rps_60s").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(live.get("p50_us").and_then(Json::as_i64).unwrap() > 0);

    // Two minutes of silence: every bucket of the 64 x 1 s ring has
    // expired, so the windowed view decays to zero — but the
    // cumulative request counter keeps its value.
    fake.advance_micros(120_000_000);
    let idle = watch_once(&service);
    assert_eq!(idle.get("requests").and_then(Json::as_i64), Some(6));
    assert_eq!(idle.get("rps_1s").and_then(Json::as_f64), Some(0.0));
    assert_eq!(idle.get("rps_60s").and_then(Json::as_f64), Some(0.0));
    assert_eq!(idle.get("p50_us").and_then(Json::as_i64), Some(0));
    assert_eq!(idle.get("p99_us").and_then(Json::as_i64), Some(0));

    // A request right at the window edge is visible again.
    let response = service.handle_line(&extract);
    assert!(response.contains("\"ok\":true"));
    let back = watch_once(&service);
    assert_eq!(back.get("requests").and_then(Json::as_i64), Some(7));
    assert!(back.get("rps_60s").and_then(Json::as_f64).unwrap() > 0.0);
}

#[test]
fn slow_errored_and_shed_requests_are_retained_with_span_trees() {
    let dir = scratch_dir("retention");
    let extract = seed_wrapper(&dir);
    let (service, fake) = pinned_live_service(dir, 2, None, 64 << 20);

    // One cached extract: with the floor at zero and the adaptive
    // threshold still cold, it is retained as slow.
    let response = service.handle_line(&extract);
    assert!(response.contains("\"ok\":true"));
    // One unknown command: retained as an error.
    let response = service.handle_line(r#"{"cmd":"nope"}"#);
    assert!(response.contains("\"ok\":false"));
    // Two sheds, as the connection layer would account them.
    let arrival = fake.monotonic_micros();
    service.record_shed(2, arrival, 42);

    let slow = Json::parse(&service.handle_line(r#"{"cmd":"trace","kind":"slow"}"#)).unwrap();
    assert_eq!(slow.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(slow.get("kind").and_then(Json::as_str), Some("slow"));
    assert!(slow.get("retained").and_then(Json::as_i64).unwrap() >= 1);
    let traces = slow.get("traces").and_then(Json::as_arr).unwrap();
    assert!(!traces.is_empty(), "slow ring should hold the extract");
    let spans = traces[0].get("spans").and_then(Json::as_arr).unwrap();
    assert!(!spans.is_empty(), "retained trace carries its span tree");
    assert_eq!(
        spans[0].get("name").and_then(Json::as_str),
        Some("serve.extract")
    );

    let errors = Json::parse(&service.handle_line(r#"{"cmd":"trace","kind":"errors"}"#)).unwrap();
    assert!(errors.get("retained").and_then(Json::as_i64).unwrap() >= 1);
    let traces = errors.get("traces").and_then(Json::as_arr).unwrap();
    assert!(!traces.is_empty(), "errors ring should hold the bad cmd");

    let shed = Json::parse(&service.handle_line(r#"{"cmd":"trace","kind":"shed"}"#)).unwrap();
    assert_eq!(shed.get("retained").and_then(Json::as_i64), Some(2));
    let traces = shed.get("traces").and_then(Json::as_arr).unwrap();
    assert_eq!(traces.len(), 2);
    assert_eq!(
        traces[0]
            .get("spans")
            .and_then(Json::as_arr)
            .unwrap()
            .first()
            .and_then(|s| s.get("name"))
            .and_then(Json::as_str),
        Some("serve.shed")
    );

    let bad = service.handle_line(r#"{"cmd":"trace","kind":"bogus"}"#);
    assert!(bad.contains("unknown trace kind"), "got: {bad}");

    // The retention counters are visible in status.live.
    let status = Json::parse(&service.handle_line(r#"{"cmd":"status"}"#)).unwrap();
    let live = status.get("live").expect("status.live section");
    let counts = live.get("traces").expect("live.traces");
    assert!(counts.get("slow").and_then(Json::as_i64).unwrap() >= 1);
    assert!(counts.get("errors").and_then(Json::as_i64).unwrap() >= 1);
    assert_eq!(counts.get("shed").and_then(Json::as_i64), Some(2));
    assert_eq!(
        live.get("slow_trace_threshold_micros")
            .and_then(Json::as_i64),
        Some(0),
        "floor 0, adaptive still cold"
    );
    let hists = live.get("histograms").expect("live.histograms");
    assert!(
        hists
            .get("objectrunner.serve.request.latency_micros")
            .is_some(),
        "request latency window surfaced in status.live"
    );
}

#[test]
fn access_log_writes_one_line_per_request_and_rotates_under_cap() {
    let dir = scratch_dir("accesslog");
    let extract = seed_wrapper(&dir);
    let log_path = dir.join("logs/access.jsonl");
    // A cap small enough that a handful of requests rotate at least
    // once, but big enough to hold one line.
    let (service, fake) = pinned_live_service(dir.clone(), 1, Some(log_path.clone()), 512);
    drive(&service, &fake, &extract);

    let status = Json::parse(&service.handle_line(r#"{"cmd":"status"}"#)).unwrap();
    let log = status
        .get("live")
        .and_then(|l| l.get("access_log"))
        .expect("status.live.access_log");
    assert!(log.get("written").and_then(Json::as_i64).unwrap() >= 6);
    assert!(
        log.get("rotations").and_then(Json::as_i64).unwrap() >= 1,
        "512-byte cap must rotate under six requests"
    );
    assert_eq!(log.get("dropped").and_then(Json::as_i64), Some(0));

    let rotated = log_path.with_extension("jsonl.1");
    assert!(log_path.is_file(), "live log file exists");
    assert!(rotated.is_file(), "rotated file exists at <path>.1");

    // Every surviving line is one canonical JSON record.
    let content = std::fs::read_to_string(&log_path).unwrap();
    for line in content.lines() {
        let record = Json::parse(line).expect("access line is JSON");
        assert!(line.starts_with(r#"{"ts_unix_micros":"#), "key order");
        for key in [
            "trace",
            "cmd",
            "outcome",
            "queue_wait_micros",
            "service_micros",
            "batched",
            "batch_size",
            "bytes",
            "revision",
        ] {
            assert!(record.get(key).is_some(), "access line missing {key}");
        }
    }
    // The extract lines carry the wrapper revision and their rendered
    // size; the wall timestamps step with the fake clock.
    let all = format!("{}{content}", std::fs::read_to_string(&rotated).unwrap());
    assert!(all.contains(r#""cmd":"extract""#));
    assert!(all.contains(r#""source":"telemetry-books""#));
    assert!(all.contains(r#""revision":1"#));
    assert!(all.contains(r#""outcome":"error""#), "bad cmd logged");
}

#[test]
fn serving_gauges_stay_non_negative_under_overload_churn() {
    const BURST: usize = 9;
    const INFLIGHT: usize = 2;
    let dir = scratch_dir("gauges");
    let extract = seed_wrapper(&dir);
    let (service, _fake) = pinned_live_service(dir, 2, None, 64 << 20);
    let service = Arc::new(service);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve_tcp(
        listener,
        Arc::clone(&service),
        PoolConfig {
            workers: 2,
            max_conns: 8,
            inflight: INFLIGHT,
            batch_max: 32,
            ..PoolConfig::default()
        },
    );
    let addr = handle.addr();

    // Sample the gauges while overloaded bursts churn admission
    // control; a set/add mismatch shows up as a negative excursion.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut worst = 0i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let snap = service.obs().snapshot();
                for gauge in ["inflight", "queue_depth", "active_conns"] {
                    worst = worst.min(snap.gauge(&format!("objectrunner.serve.serving.{gauge}")));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            worst
        })
    };

    for _ in 0..3 {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    let mut burst = String::new();
                    for _ in 0..BURST {
                        burst.push_str(&extract);
                        burst.push('\n');
                    }
                    stream.write_all(burst.as_bytes()).expect("send burst");
                    let reader = BufReader::new(&stream);
                    let responses: Vec<String> = reader
                        .lines()
                        .take(BURST)
                        .map(|l| l.expect("response line"))
                        .collect();
                    assert_eq!(responses.len(), BURST);
                });
            }
        });
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let worst = sampler.join().expect("sampler");
    assert!(worst >= 0, "a serving gauge went negative: {worst}");

    // All clients are gone: the pool notices the closes on poll
    // turns, and every gauge settles back to zero.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let snap = service.obs().snapshot();
        let active = snap.gauge("objectrunner.serve.serving.active_conns");
        let inflight = snap.gauge("objectrunner.serve.serving.inflight");
        let queued = snap.gauge("objectrunner.serve.serving.queue_depth");
        if (active, inflight, queued) == (0, 0, 0) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "gauges did not settle: active={active} inflight={inflight} queued={queued}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        service
            .obs()
            .snapshot()
            .counter("objectrunner.serve.serving.shed_requests")
            > 0,
        "the churn should actually have shed"
    );
    handle.shutdown();
}
