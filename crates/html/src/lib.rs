//! # objectrunner-html
//!
//! A from-scratch, error-tolerant HTML substrate for the ObjectRunner
//! reproduction. The paper pre-processes pages with JTidy to obtain
//! well-formed documents; this crate plays that role:
//!
//! * [`tokenizer`] — an HTML tokenizer producing a flat stream of
//!   [`tokenizer::Token`]s (tags, text, comments, doctype), tolerant of
//!   malformed markup.
//! * [`dom`] — an arena-based DOM built from the token stream with
//!   HTML-style error recovery (void elements, implied end tags,
//!   mismatched close tags).
//! * [`clean`] — the paper's cleaning pass: drop scripts, styles,
//!   comments, hidden elements, empty nodes; normalize whitespace.
//! * [`path`] — DOM paths and structural node signatures used to
//!   identify the same block across pages of a source.
//! * [`serialize`] — back to HTML text, plus the *word/tag token
//!   stream* consumed by the wrapper-induction algorithms.
//! * [`entities`] — HTML entity decoding.
//! * [`intern`] — process-wide [`intern::Symbol`] / [`intern::PathId`]
//!   interners and the FxHash-style hasher; tags, attributes, words and
//!   DOM paths are integer handles everywhere downstream.
//!
//! The DOM is deliberately simple: a `Vec`-backed arena addressed by
//! [`dom::NodeId`]; no interior mutability, no reference counting.

pub mod arena;
pub mod clean;
pub mod dom;
pub mod entities;
pub mod intern;
pub mod path;
pub mod serialize;
pub mod stream;
pub mod tokenizer;

pub use arena::Arena;
pub use clean::{clean_document, CleanOptions};
pub use dom::{Document, Node, NodeId, NodeKind, TreeBuilder};
pub use intern::{FxHashMap, FxHashSet, FxHasher, PathId, Symbol};
pub use path::{node_path, node_path_id, NodeSignature};
pub use serialize::{to_html, token_stream, PageToken};
pub use stream::{Event, EventTokenizer};
pub use tokenizer::{tokenize, Token};

fn count_parse(input: &str) {
    if objectrunner_obs::global_enabled() {
        objectrunner_obs::global_count("objectrunner.html.parse.documents", 1);
        objectrunner_obs::global_count("objectrunner.html.parse.bytes", input.len() as u64);
    }
}

/// Parse an HTML string into a well-formed [`Document`].
///
/// Never fails: malformed input is repaired in the style of JTidy
/// (unclosed tags are auto-closed, stray end tags are dropped).
///
/// ```
/// let doc = objectrunner_html::parse("<ul><li>a<li>b</ul>");
/// let text = doc.text_content(doc.root());
/// assert_eq!(text, "a b");
/// ```
pub fn parse(input: &str) -> Document {
    count_parse(input);
    let mut tokenizer = EventTokenizer::new(input);
    let mut builder = TreeBuilder::new();
    while let Some(event) = tokenizer.next_event() {
        builder.event(event);
    }
    builder.finish()
}

/// A reusable per-page parser for streaming extraction: one [`Arena`]
/// holds each page's decoded text and is reset (keeping capacity)
/// before the next page, so a million-page run allocates like a
/// one-page run. One `PageParser` per worker thread.
#[derive(Default)]
pub struct PageParser {
    arena: Arena,
}

impl PageParser {
    /// A parser with an empty arena.
    pub fn new() -> PageParser {
        PageParser::default()
    }

    /// Parse one page, reusing the arena. Output is identical to
    /// [`parse`] (same events, same recovery, same counters).
    pub fn parse(&mut self, input: &str) -> Document {
        count_parse(input);
        self.arena.reset();
        let mut tokenizer = EventTokenizer::with_arena(input, &self.arena);
        let mut builder = TreeBuilder::new();
        while let Some(event) = tokenizer.next_event() {
            builder.event(event);
        }
        builder.finish()
    }

    /// Arena bytes used by the most recent page.
    pub fn arena_bytes(&self) -> usize {
        self.arena.allocated_bytes()
    }

    /// High-water mark of per-page arena bytes across the parser's life.
    pub fn arena_peak_bytes(&self) -> usize {
        self.arena.peak_bytes()
    }
}

/// Parse and clean in one step with default [`CleanOptions`].
pub fn parse_clean(input: &str) -> Document {
    let mut doc = parse(input);
    clean::clean_document(&mut doc, &CleanOptions::default());
    doc
}

/// Parse a batch of HTML pages into documents, preserving order.
///
/// The batch entry point pipelines use: callers may hand the slice to
/// concurrent workers — [`Document`] is `Send + Sync` (a `Vec`-backed
/// arena with no interior mutability), and the interners behind
/// [`Symbol`]/[`PathId`] are process-wide and thread-safe, so documents
/// parsed on different threads remain structurally comparable.
pub fn parse_batch<S: AsRef<str>>(pages: &[S]) -> Vec<Document> {
    pages.iter().map(|p| parse(p.as_ref())).collect()
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    /// Compile-time guarantee that pages can cross thread boundaries —
    /// the contract the pipeline executor relies on.
    #[test]
    fn document_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Document>();
        assert_send_sync::<Symbol>();
        assert_send_sync::<PathId>();
    }

    #[test]
    fn parse_batch_matches_parse() {
        let pages = ["<p>one</p>", "<ul><li>a<li>b</ul>"];
        let batch = parse_batch(&pages);
        assert_eq!(batch.len(), 2);
        for (doc, page) in batch.iter().zip(pages) {
            let solo = parse(page);
            assert_eq!(to_html(doc, doc.root()), to_html(&solo, solo.root()));
        }
    }

    #[test]
    fn page_parser_matches_parse_across_pages() {
        let pages = [
            "<ul><li>a &amp; b<li>c</ul>",
            "<div id=\"main\"><p>Caf&eacute;</p><script>1<2</script></div>",
            "<table><tr><td>x<td>y</table>",
            "bad <markup <p>ok</p>",
        ];
        let mut pp = PageParser::new();
        for page in pages {
            let streamed = pp.parse(page);
            let baseline = parse(page);
            assert_eq!(
                to_html(&streamed, streamed.root()),
                to_html(&baseline, baseline.root()),
                "page {page:?}"
            );
        }
        // Arena reflects only the latest page's decoded text.
        assert!(pp.arena_peak_bytes() >= pp.arena_bytes());
    }
}
