//! Regeneration of Figure 6: (a) object classification rates and
//! (b) incompletely-managed source rates, per system per domain.

use crate::tables::Comparison;
use std::fmt::Write as _;

/// Figure 6(a) datum: classification rates for one (domain, system).
#[derive(Debug, Clone)]
pub struct ClassificationRates {
    pub domain: &'static str,
    pub system: &'static str,
    pub correct: f64,
    pub partial: f64,
    pub incorrect: f64,
}

/// Figure 6(b) datum.
#[derive(Debug, Clone)]
pub struct IncompleteRate {
    pub domain: &'static str,
    pub system: &'static str,
    pub rate: f64,
}

/// Compute Figure 6(a) series from the Table III comparison.
pub fn figure6a(cmp: &Comparison) -> Vec<ClassificationRates> {
    let mut out = Vec::new();
    for row in &cmp.domains {
        for (system, _, _, reports) in &row.systems {
            let mut no = 0usize;
            let mut oc = 0usize;
            let mut op = 0usize;
            let mut oi = 0usize;
            for r in reports {
                if r.discarded {
                    continue;
                }
                no += r.no;
                oc += r.oc;
                op += r.op;
                oi += r.oi;
            }
            let no = no.max(1) as f64;
            out.push(ClassificationRates {
                domain: row.domain.name(),
                system: system.abbrev(),
                correct: oc as f64 / no,
                partial: op as f64 / no,
                incorrect: oi as f64 / no,
            });
        }
    }
    out
}

/// Compute Figure 6(b) series.
pub fn figure6b(cmp: &Comparison) -> Vec<IncompleteRate> {
    let mut out = Vec::new();
    for row in &cmp.domains {
        for (system, _, _, reports) in &row.systems {
            let total = reports.len().max(1) as f64;
            let incomplete = reports.iter().filter(|r| r.incompletely_managed()).count();
            out.push(IncompleteRate {
                domain: row.domain.name(),
                system: system.abbrev(),
                rate: incomplete as f64 / total,
            });
        }
    }
    out
}

fn bar(fraction: f64, width: usize) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "·".repeat(width - filled))
}

/// Render Figure 6(a) as stacked ASCII bars.
pub fn render_figure6a(rates: &[ClassificationRates]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "FIGURE 6(a) — OBJECT CLASSIFICATION RATES");
    let _ = writeln!(
        out,
        "{:<14} {:<4} {:>9} {:>9} {:>9}  correct-rate",
        "Domain", "Sys", "correct", "partial", "incorr."
    );
    let mut last = "";
    for r in rates {
        let domain = if last != r.domain {
            last = r.domain;
            r.domain
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:<14} {:<4} {:>8.1}% {:>8.1}% {:>8.1}%  |{}|",
            domain,
            r.system,
            r.correct * 100.0,
            r.partial * 100.0,
            r.incorrect * 100.0,
            bar(r.correct, 24)
        );
    }
    out
}

/// Render Figure 6(b).
pub fn render_figure6b(rates: &[IncompleteRate]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "FIGURE 6(b) — RATE OF INCOMPLETELY MANAGED SOURCES");
    let _ = writeln!(out, "{:<14} {:<4} {:>7}  rate", "Domain", "Sys", "rate");
    let mut last = "";
    for r in rates {
        let domain = if last != r.domain {
            last = r.domain;
            r.domain
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:<14} {:<4} {:>6.1}%  |{}|",
            domain,
            r.system,
            r.rate * 100.0,
            bar(r.rate, 24)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::SourceReport;
    use crate::runners::SystemId;
    use crate::tables::ComparisonRow;
    use objectrunner_webgen::Domain;

    fn report(no: usize, oc: usize, op: usize, oi: usize) -> SourceReport {
        SourceReport {
            name: "x".into(),
            optional_present: true,
            discarded: false,
            attrs: vec![(
                "a".into(),
                if op + oi > 0 {
                    crate::classify::AttrStatus::Partial
                } else {
                    crate::classify::AttrStatus::Correct
                },
            )],
            no,
            oc,
            op,
            oi,
        }
    }

    fn cmp() -> Comparison {
        Comparison {
            domains: vec![ComparisonRow {
                domain: Domain::Cars,
                systems: vec![
                    (SystemId::ObjectRunner, 0.8, 1.0, vec![report(10, 8, 2, 0)]),
                    (SystemId::ExAlg, 0.5, 0.7, vec![report(10, 5, 2, 3)]),
                    (SystemId::RoadRunner, 0.1, 0.6, vec![report(10, 1, 5, 4)]),
                ],
            }],
        }
    }

    #[test]
    fn rates_sum_to_one() {
        let rates = figure6a(&cmp());
        for r in &rates {
            let sum = r.correct + r.partial + r.incorrect;
            assert!((sum - 1.0).abs() < 1e-9, "{r:?}");
        }
    }

    #[test]
    fn incomplete_rate_counts_flagged_sources() {
        let rates = figure6b(&cmp());
        // OR's single source has partial objects → incompletely managed.
        assert!((rates[0].rate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn renders_are_nonempty() {
        let c = cmp();
        assert!(render_figure6a(&figure6a(&c)).contains("OR"));
        assert!(render_figure6b(&figure6b(&c)).contains("RR"));
    }

    #[test]
    fn bar_width_is_stable() {
        assert_eq!(bar(0.0, 10).chars().count(), 10);
        assert_eq!(bar(1.0, 10).chars().count(), 10);
        assert_eq!(bar(0.5, 10).chars().count(), 10);
    }
}
