//! `inspect` — developer tool: dump the full wrapper-induction state
//! for one corpus source (classes, template tree, gap annotations, SOD
//! mapping, and sample extractions).
//!
//! Usage: `cargo run --release -p objectrunner-eval --bin inspect -- <site-name> [--stats-json]`
//!
//! `--stats-json` appends one machine-readable line with the full
//! pipeline stats (per-stage wall/CPU timings included).

use objectrunner_core::matching::match_sod;
use objectrunner_core::pipeline::{Pipeline, PipelineConfig};
use objectrunner_core::roles::{differentiate, DiffConfig};
use objectrunner_core::sample::{select_sample, SampleConfig, SampleStrategy};
use objectrunner_core::template::build_template;
use objectrunner_core::tokens::SourceTokens;
use objectrunner_html::{clean_document, parse, CleanOptions};
use objectrunner_webgen::{generate_site, knowledge, paper_corpus};

fn main() {
    let args = objectrunner_eval::parse_stats_json_flag(std::env::args().skip(1).collect());
    let name = args
        .first()
        .cloned()
        .unwrap_or_else(|| "towerrecords".into());
    let corpus = paper_corpus();
    let spec = corpus
        .sites
        .iter()
        .find(|s| s.name.contains(&name))
        .expect("site");
    println!(
        "site {} domain {:?} style {} quirks {:?} optional {}",
        spec.name, spec.domain, spec.style, spec.quirks, spec.optional_present
    );
    let source = generate_site(spec);
    let recognizers = knowledge::recognizers_for(spec.domain, 0.2);
    let sod = spec.domain.sod();
    // replicate pipeline steps
    let mut docs: Vec<_> = source
        .pages
        .iter()
        .map(|h| {
            let mut d = parse(h);
            clean_document(&mut d, &CleanOptions::default());
            d
        })
        .collect();
    let opts = objectrunner_segment::LayoutOptions::default();
    if let Some(choice) = objectrunner_segment::select_main_block(&docs, &opts) {
        for d in docs.iter_mut() {
            let _ = objectrunner_segment::simplify_to_main_block(d, &choice);
        }
    }
    let exec = objectrunner_core::exec::Executor::from_env(None);
    let sample = select_sample(
        &docs,
        &recognizers,
        &sod,
        &SampleConfig {
            sample_size: 20,
            ..Default::default()
        },
        SampleStrategy::SodBased,
        &exec,
    )
    .expect("sample");
    let mut src = SourceTokens::from_pages(&sample);
    let cfg = DiffConfig {
        set_types: sod
            .set_entity_types()
            .into_iter()
            .map(str::to_owned)
            .collect(),
        ..DiffConfig::default()
    };
    let outcome = differentiate(&mut src, &cfg, |_, _| false);
    println!(
        "rounds {} conflict_splits {}",
        outcome.rounds, outcome.conflict_splits
    );
    for c in &outcome.analysis.classes {
        let toks: Vec<String> = c
            .roles
            .iter()
            .map(|&r| src.roles.info(r).label.clone())
            .collect();
        println!(
            "class {} v[0..5] {:?} parent {:?} ({} roles) {:?}",
            c.id,
            &c.vector[..5.min(c.vector.len())],
            outcome.analysis.parent[c.id],
            c.roles.len(),
            toks.iter().take(14).collect::<Vec<_>>()
        );
    }
    let tree = build_template(&src, &outcome.analysis);
    for (i, n) in tree.nodes.iter().enumerate() {
        println!("node {} class {:?} mult {:?}", i, n.class, n.multiplicity);
        for (j, g) in n.gaps.iter().enumerate() {
            if g.kind() != objectrunner_core::template::GapKind::Empty {
                println!(
                    "  gap {j}: {:?} anns {:?} samples {:?}",
                    g.kind(),
                    g.annotations,
                    &g.samples[..3.min(g.samples.len())]
                );
            }
        }
    }
    match match_sod(&tree, &sod) {
        Ok(m) => {
            println!(
                "MATCH anchor {} repeats {}",
                m.record.anchor, m.record_repeats
            );
            for (t, g) in &m.record.atomics {
                println!("  atomic {t} -> node {} gap {}", g.node, g.gap);
            }
            for s in &m.record.sets {
                println!("  set: {:?}", s);
            }
        }
        Err(e) => println!("MATCH FAILED: {e}"),
    }
    // full pipeline objects on page 0
    let pipeline = Pipeline::new(sod.clone(), recognizers).with_config(PipelineConfig::default());
    match pipeline.run_on_html(&source.pages) {
        Ok(o) => {
            println!(
                "pipeline: {} objects (truth {})",
                o.objects.len(),
                source.object_count()
            );
            for obj in o.objects.iter().take(4) {
                println!("  {obj}");
            }
            println!("truth[0][0]: {:?}", source.truth[0][0].attrs);
            if objectrunner_eval::stats_json_enabled() {
                println!(
                    "{}",
                    objectrunner_obs::export::stats_json_line(
                        &spec.name,
                        "OR",
                        &o.stats.snapshot()
                    )
                );
            }
        }
        Err(e) => println!("pipeline error: {e}"),
    }
}
