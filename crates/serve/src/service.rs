//! The serving core: wrapper cache, drift detection, re-induction.
//!
//! A [`Service`] owns a set of sources, each with a persisted wrapper
//! (see `objectrunner-store`). The protocol is line-delimited JSON —
//! one request object in, one response object out:
//!
//! * `{"cmd":"induce","source":S,"domain":D,"pages":[..]}` — run the
//!   full Parse→Wrap pipeline, persist the wrapper, respond with the
//!   extracted objects and stage timings (Wrap included);
//! * `{"cmd":"extract","source":S,"pages":[..]}` — the cached fast
//!   path: load the stored wrapper, skip induction entirely
//!   (Parse/Clean/Segment/Extract only), score template drift per
//!   page, and — past the threshold — flag the wrapper stale and
//!   re-induce from the buffered drifted pages;
//! * `{"cmd":"status"}` — daemon uptime, per-source counters,
//!   lifecycle state, last-activity timestamps, the transition log,
//!   and a `metrics` section (per-domain extract-latency and
//!   drift-score histograms, revision counts, annotation-memo hit
//!   rate);
//! * `{"cmd":"trace","limit":N}` — the span trees of the last `N`
//!   requests, from the observability buffer.
//!
//! Every response carries a `"trace"` field: the span-tree id of the
//! request that produced it, joinable against the `trace` command and
//! the JSONL/Chrome exporters.
//!
//! Page input is either inline (`"pages": [html, ..]`) or a directory
//! of `*.html` files (`"dir": "path"`, lexicographic order).
//!
//! ## The drift lifecycle
//!
//! Every cached extraction computes the fraction of wrapper slots
//! (the separator matchers the SOD mapping reads) that fail to align
//! on each page (`core::matching::drift_score`). Pages at or above
//! [`ServeConfig::drift_threshold`] enter a bounded buffer. A wrapper
//! goes **stale** on either of two signals:
//!
//! * the batch's mean drift crosses the threshold, or
//! * the *silent miss*: at least
//!   [`ServeConfig::empty_page_threshold`] of the batch's pages
//!   extract zero objects while drift stays low — record-level markup
//!   changed without touching the separator slots the score watches.
//!
//! Once the buffer holds [`ServeConfig::min_reinduce_pages`] suspect
//! pages, the service tries the cheap path first: **tree-diff repair**
//! (`core::repair_wrapper`) patches the stored wrapper's matcher
//! paths, gap roles and annotation histograms through a GumTree-style
//! node mapping against the drifted template — no induction stages
//! run. A successful repair bumps the revision, records its
//! [`objectrunner_store::RepairProvenance`], persists, and flips the
//! state to **repaired**. When the repair is declined (container
//! redesign, lost gap, extraction coverage under
//! [`ServeConfig::repair_floor`]) the service falls back loudly to
//! full re-induction *from the buffered pages only* — mixing clean
//! and drifted pages would hand the sampler two templates at once —
//! and flips to **reinduced**. Either way the current batch is
//! replayed through the new wrapper.

use objectrunner_core::annotate::Annotator;
use objectrunner_core::matching::drift_score;
use objectrunner_core::pipeline::{extract_only_with, Pipeline, PipelineConfig};
use objectrunner_core::sample::SampleConfig;
use objectrunner_core::wrapper::{repair_wrapper, RepairConfig};
use objectrunner_objstore::{
    record_json, IngestContext, IngestObject, ObjectStore, Query, StoreStatus,
};
use objectrunner_obs::{
    Clock, HistogramSnapshot, Obs, Span, SpanRecord, DEFAULT_SPAN_CAPACITY, DRIFT_BUCKETS_MILLI,
    LATENCY_BUCKETS_MICROS,
};
use objectrunner_sod::Instance;
use objectrunner_store::{load_file, save_file, Json, RepairProvenance, StoredWrapper};
use objectrunner_webgen::knowledge::recognizers_for;
use objectrunner_webgen::Domain;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding the persisted `<source>.orw` wrapper files.
    pub store_dir: PathBuf,
    /// Mean per-page drift at or above which a wrapper is stale.
    pub drift_threshold: f64,
    /// Capacity of the per-source drifted-page buffer.
    pub buffer_pages: usize,
    /// Drifted pages required before re-induction fires.
    pub min_reinduce_pages: usize,
    /// Minimum fraction of the buffered pages a *repaired* wrapper
    /// must extract on; below it the repair is rejected and the
    /// service falls back to full re-induction.
    pub repair_floor: f64,
    /// Fraction of a batch's pages extracting *zero* objects at or
    /// above which the wrapper is flagged stale even though drift
    /// stayed under the threshold (the silent-miss trigger: record
    /// markup can change without touching the separator slots the
    /// drift score watches).
    pub empty_page_threshold: f64,
    /// Recognizer coverage for (re-)induction.
    pub coverage: f64,
    /// Sample size k for (re-)induction.
    pub sample_size: usize,
    /// Worker threads (None = `OBJECTRUNNER_THREADS` / machine).
    pub threads: Option<usize>,
    /// Directory of the durable object store (`--object-store`).
    /// `None` disables the sink and the query commands.
    pub object_store: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            store_dir: PathBuf::from("wrappers"),
            drift_threshold: 0.5,
            buffer_pages: 32,
            min_reinduce_pages: 6,
            repair_floor: 0.5,
            empty_page_threshold: 0.8,
            coverage: 0.2,
            sample_size: 12,
            threads: None,
            object_store: None,
        }
    }
}

/// Lifecycle state of a served wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrapperState {
    /// Extracting within drift tolerance.
    Fresh,
    /// Drift crossed the threshold; awaiting enough buffered pages.
    Stale,
    /// Patched by tree-diff repair since it was last stale — the
    /// cheap path: no induction stages ran.
    Repaired,
    /// Re-induced from drifted pages since it was last stale.
    Reinduced,
}

impl WrapperState {
    pub fn as_str(self) -> &'static str {
        match self {
            WrapperState::Fresh => "fresh",
            WrapperState::Stale => "stale",
            WrapperState::Repaired => "repaired",
            WrapperState::Reinduced => "reinduced",
        }
    }
}

/// Per-source serving state.
struct SourceEntry {
    stored: StoredWrapper,
    state: WrapperState,
    extracts: u64,
    cache_hits: u64,
    drift_events: u64,
    /// Recent drifted pages: (html, drift score), bounded.
    buffer: VecDeque<(String, f64)>,
    /// Human-readable lifecycle transitions, oldest first.
    log: Vec<String>,
    /// Wall clock (Unix micros) of the last request touching this
    /// source; 0 until first touched.
    last_activity_wall: u64,
    /// Monotonic micros of the last request touching this source;
    /// paired with "now" to report idle time without wall-clock jumps.
    last_activity_mono: u64,
}

impl SourceEntry {
    fn new(stored: StoredWrapper) -> SourceEntry {
        SourceEntry {
            stored,
            state: WrapperState::Fresh,
            extracts: 0,
            cache_hits: 0,
            drift_events: 0,
            buffer: VecDeque::new(),
            log: Vec::new(),
            last_activity_wall: 0,
            last_activity_mono: 0,
        }
    }

    fn touch(&mut self, clock: &Clock) {
        self.last_activity_wall = clock.wall_unix_micros();
        self.last_activity_mono = clock.monotonic_micros();
    }
}

/// The serving core. Owns the wrapper cache; one instance per daemon.
pub struct Service {
    config: ServeConfig,
    /// Request spans and the serving metrics registry. Enabled by
    /// default in the daemon; [`Service::with_observability`] lets
    /// tests inject a fake-clock handle or a disabled one.
    obs: Obs,
    /// Time source shared with `obs` — uptime, request latency and
    /// last-activity all read through it so tests can advance time by
    /// hand.
    clock: Clock,
    /// `clock.monotonic_micros()` at construction; uptime base.
    start_mono: u64,
    sources: BTreeMap<String, SourceEntry>,
    /// Compiled annotation engines, one per domain, shared across
    /// inductions and drift-repair re-inductions: the recognizer set of
    /// a domain is fixed (per coverage setting), so the automatons are
    /// compiled once and the text memo cache stays warm between
    /// requests. Mutex (not RefCell) keeps `Service: Send` for the
    /// daemon's connection handler.
    annotators: std::sync::Mutex<BTreeMap<String, Arc<Annotator>>>,
    /// The durable object sink, attached when
    /// [`ServeConfig::object_store`] names a directory. Extractions
    /// flow in (deduplicated, provenance-tagged); `query` / `get` /
    /// `store-status` / `compact` read and maintain it.
    objstore: Option<ObjectStore>,
}

fn err(msg: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(msg)),
    ])
}

/// Canonical JSON form of an extracted instance; fixed key order, so
/// equal instances render byte-identically (the round-trip tests and
/// the `extract-file` cold-process check compare these strings). The
/// codec lives in `objectrunner-objstore` now — the object store
/// persists the very same shape — and is re-exported here for the
/// protocol's historical import path.
pub use objectrunner_objstore::instance_json;

impl Service {
    /// A daemon-grade service: observability on, real clock.
    pub fn new(config: ServeConfig) -> Service {
        let clock = Clock::system();
        let obs = Obs::with_clock_and_capacity(clock.clone(), DEFAULT_SPAN_CAPACITY);
        Service::with_observability(config, obs, clock)
    }

    /// Construct with an explicit observability handle and clock —
    /// the test seam for fake-clock uptime/idle assertions and for
    /// running with observability disabled.
    ///
    /// When the config names an object-store directory that fails to
    /// open (corrupt store), this panics — a daemon must not come up
    /// silently dropping its sink. Callers wanting a softer failure
    /// open the store themselves first.
    pub fn with_observability(config: ServeConfig, obs: Obs, clock: Clock) -> Service {
        let start_mono = clock.monotonic_micros();
        let objstore = config.object_store.as_ref().map(|dir| {
            ObjectStore::open(dir, obs.clone())
                .unwrap_or_else(|e| panic!("object store {}: {e}", dir.display()))
        });
        Service {
            config,
            obs,
            clock,
            start_mono,
            sources: BTreeMap::new(),
            annotators: std::sync::Mutex::new(BTreeMap::new()),
            objstore,
        }
    }

    /// The attached object store, if any.
    pub fn object_store(&self) -> Option<&ObjectStore> {
        self.objstore.as_ref()
    }

    /// The service's observability handle (spans + metrics registry).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The shared annotation engine for a domain (compiled on first
    /// use, then reused by every induction of that domain).
    fn annotator_for(&self, domain: Domain) -> Arc<Annotator> {
        let key = domain.name().to_lowercase();
        let mut cache = self.annotators.lock().expect("annotator cache poisoned");
        Arc::clone(cache.entry(key).or_insert_with(|| {
            Arc::new(Annotator::new(&recognizers_for(
                domain,
                self.config.coverage,
            )))
        }))
    }

    /// Handle one protocol line, producing one response line (no
    /// trailing newline). Never panics on malformed input.
    pub fn handle_line(&mut self, line: &str) -> String {
        let response = match Json::parse(line) {
            Ok(req) => self.handle(&req),
            Err(e) => err(&format!("bad request: {e}")),
        };
        response.render()
    }

    fn handle(&mut self, req: &Json) -> Json {
        let cmd = req.get("cmd").and_then(Json::as_str).map(str::to_owned);
        let span_name: &'static str = match cmd.as_deref() {
            Some("induce") => "serve.induce",
            Some("extract") => "serve.extract",
            Some("status") => "serve.status",
            Some("trace") => "serve.trace",
            Some("query") => "serve.query",
            Some("get") => "serve.get",
            Some("store-status") => "serve.store_status",
            Some("compact") => "serve.compact",
            _ => "serve.error",
        };
        let mut span = self.obs.trace(span_name);
        let trace_id = span.trace_id();
        self.obs.counter_add(
            &format!(
                "objectrunner.serve.requests.{}",
                cmd.as_deref().unwrap_or("unknown")
            ),
            1,
        );
        let response = match cmd.as_deref() {
            Some("induce") => self.induce(req, &span),
            Some("extract") => self.extract(req, &span),
            Some("status") => self.status(),
            Some("trace") => self.trace_dump(req),
            Some("query") => self.query_cmd(req, &span),
            Some("get") => self.get_cmd(req),
            Some("store-status") => self.store_status_cmd(),
            Some("compact") => self.compact_cmd(&span),
            Some(other) => err(&format!("unknown cmd '{other}'")),
            None => err("missing 'cmd'"),
        };
        let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
        span.attr_str("outcome", if ok { "ok" } else { "error" });
        span.finish();
        // Echo the request's trace id in every response, joinable
        // against the `trace` command and the exporters.
        match response {
            Json::Obj(mut pairs) => {
                pairs.push(("trace".into(), Json::int(trace_id)));
                Json::Obj(pairs)
            }
            other => other,
        }
    }

    /// The wrapper file for a source.
    fn wrapper_path(&self, source: &str) -> PathBuf {
        self.config.store_dir.join(format!("{source}.orw"))
    }

    /// Pipeline configuration for (re-)induction. When a request span
    /// is supplied, the pipeline's own spans nest under it, so one
    /// trace id covers the request end-to-end.
    fn pipeline_config(&self, parent: Option<&Span>) -> PipelineConfig {
        PipelineConfig {
            sample: SampleConfig {
                sample_size: self.config.sample_size,
                ..SampleConfig::default()
            },
            threads: self.config.threads,
            obs: self.obs.clone(),
            trace_context: parent.filter(|s| s.is_enabled()).map(Span::context),
            ..PipelineConfig::default()
        }
    }

    /// Induce (or re-induce) a wrapper from scratch on the given pages.
    fn induce_wrapper(
        &self,
        source: &str,
        domain: Domain,
        revision: u64,
        pages: &[String],
        parent: &Span,
    ) -> Result<(StoredWrapper, Vec<Instance>, String), String> {
        let sod = domain.sod();
        let recognizers = recognizers_for(domain, self.config.coverage);
        let config = self.pipeline_config(Some(parent));
        let clean = config.clean.clone();
        let pipeline =
            Pipeline::with_annotator(sod.clone(), recognizers, self.annotator_for(domain))
                .with_config(config);
        let outcome = pipeline
            .run_on_html(pages)
            .map_err(|e| format!("induction failed: {e}"))?;
        let stored = StoredWrapper {
            source: source.to_owned(),
            domain: domain.name().to_lowercase(),
            revision,
            sod,
            wrapper: outcome.wrapper,
            main_block: outcome.main_block,
            clean,
            repair: None,
        };
        Ok((stored, outcome.objects, outcome.stats.to_json()))
    }

    fn induce(&mut self, req: &Json, span: &Span) -> Json {
        let source = match req.get("source").and_then(Json::as_str) {
            Some(s) => s.to_owned(),
            None => return err("missing 'source'"),
        };
        let domain = match req.get("domain").and_then(Json::as_str) {
            Some(name) => match Domain::by_name(name) {
                Some(d) => d,
                None => return err(&format!("unknown domain '{name}'")),
            },
            None => return err("missing 'domain'"),
        };
        let pages = match request_pages(req) {
            Ok(p) => p,
            Err(e) => return err(&e),
        };
        let revision = self
            .sources
            .get(&source)
            .map(|e| e.stored.revision + 1)
            .unwrap_or(1);
        let (stored, objects, stats) =
            match self.induce_wrapper(&source, domain, revision, &pages, span) {
                Ok(r) => r,
                Err(e) => return err(&e),
            };
        if let Err(e) = self.persist(&stored) {
            return err(&e);
        }
        self.obs.counter_add("objectrunner.serve.inductions", 1);
        self.obs.gauge_set(
            &format!("objectrunner.serve.revision.{source}"),
            revision as i64,
        );
        let mut entry = SourceEntry::new(stored);
        entry.touch(&self.clock);
        entry.log.push(format!(
            "induced: revision {revision}, {} pages",
            pages.len()
        ));
        let response = Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("induce")),
            ("source".into(), Json::str(&source)),
            ("revision".into(), Json::int(revision as i64)),
            ("quality".into(), Json::Float(entry.stored.wrapper.quality)),
            ("count".into(), Json::int(objects.len())),
            (
                "objects".into(),
                Json::Arr(objects.iter().map(instance_json).collect()),
            ),
            ("stats".into(), Json::Raw(stats)),
        ]);
        self.sources.insert(source, entry);
        response
    }

    fn persist(&self, stored: &StoredWrapper) -> Result<(), String> {
        std::fs::create_dir_all(&self.config.store_dir).map_err(|e| format!("store dir: {e}"))?;
        save_file(&self.wrapper_path(&stored.source), stored).map_err(|e| format!("persist: {e}"))
    }

    /// Ensure a source is in the in-memory cache, loading from the
    /// store directory on first use (daemon restart survival).
    fn warm(&mut self, source: &str) -> Result<(), String> {
        if self.sources.contains_key(source) {
            return Ok(());
        }
        let path = self.wrapper_path(source);
        if !path.exists() {
            return Err(format!("unknown source '{source}' (no wrapper stored)"));
        }
        let stored = load_file(&path).map_err(|e| format!("load: {e}"))?;
        let mut entry = SourceEntry::new(stored);
        entry.log.push(format!(
            "loaded: revision {} from {}",
            entry.stored.revision,
            path.display()
        ));
        self.sources.insert(source.to_owned(), entry);
        Ok(())
    }

    fn extract(&mut self, req: &Json, span: &Span) -> Json {
        let started = self.clock.monotonic_micros();
        let source = match req.get("source").and_then(Json::as_str) {
            Some(s) => s.to_owned(),
            None => return err("missing 'source'"),
        };
        let (names, pages) = match request_named_pages(req) {
            Ok(named) => {
                let mut names = Vec::with_capacity(named.len());
                let mut pages = Vec::with_capacity(named.len());
                for (name, html) in named {
                    names.push(name);
                    pages.push(html);
                }
                (names, pages)
            }
            Err(e) => return err(&e),
        };
        if pages.is_empty() {
            return err("no pages");
        }
        if let Err(e) = self.warm(&source) {
            return err(&e);
        }

        let threads = self.config.threads;
        let threshold = self.config.drift_threshold;
        let trace_context = Some(span.context()).filter(|_| span.is_enabled());
        let entry = self.sources.get_mut(&source).expect("warmed");
        let domain_name = entry.stored.domain.clone();
        entry.extracts += 1;
        entry.cache_hits += 1;
        entry.touch(&self.clock);

        // Cached fast path: no induction stages run.
        let outcome = extract_only_with(
            &entry.stored.wrapper,
            entry.stored.main_block.as_ref(),
            &entry.stored.clean,
            &pages,
            threads,
            &self.obs,
            trace_context,
        );

        // Score template drift on the prepared documents.
        let scores: Vec<f64> = outcome
            .docs
            .iter()
            .map(|doc| {
                drift_score(
                    &entry.stored.wrapper.template,
                    &entry.stored.wrapper.mapping,
                    doc,
                )
                .score()
            })
            .collect();
        let mean_drift = scores.iter().sum::<f64>() / scores.len() as f64;

        // Per-page drift distribution, in thousandths so the integer
        // histogram resolves the 0..=1 score range.
        for &score in &scores {
            self.obs.histogram_record(
                &format!("objectrunner.serve.drift.score_milli.{domain_name}"),
                &DRIFT_BUCKETS_MILLI,
                (score * 1000.0).round() as u64,
            );
        }

        // Second staleness signal: the silent miss. Record-level
        // markup can change without touching the separator slots the
        // drift score watches — pages then score clean but extract
        // nothing. A batch whose empty-page fraction crosses the
        // threshold is as stale as a drifted one.
        let empty_pages = outcome.per_page.iter().filter(|p| p.is_empty()).count();
        let empty_fraction = empty_pages as f64 / outcome.per_page.len() as f64;
        let silent_miss =
            mean_drift < threshold && empty_fraction >= self.config.empty_page_threshold;

        // Buffer the suspect pages (bounded, oldest evicted): drifted
        // pages always, and the zero-extraction pages of a silent-miss
        // batch — those are the only evidence of the new template.
        for (i, (page, &score)) in pages.iter().zip(scores.iter()).enumerate() {
            if score >= threshold || (silent_miss && outcome.per_page[i].is_empty()) {
                if entry.buffer.len() == self.config.buffer_pages {
                    entry.buffer.pop_front();
                }
                entry.buffer.push_back((page.clone(), score));
            }
        }

        if entry.state != WrapperState::Stale {
            if mean_drift >= threshold {
                entry.drift_events += 1;
                entry.state = WrapperState::Stale;
                self.obs
                    .counter_add("objectrunner.serve.drift.stale_transitions", 1);
                entry.log.push(format!(
                    "stale: mean drift {mean_drift:.2} >= {threshold:.2} on revision {}",
                    entry.stored.revision
                ));
            } else if silent_miss {
                entry.drift_events += 1;
                entry.state = WrapperState::Stale;
                self.obs
                    .counter_add("objectrunner.serve.drift.silent_miss_transitions", 1);
                entry.log.push(format!(
                    "stale (silent miss): {empty_pages}/{} pages extracted nothing at \
                     drift {mean_drift:.2} on revision {}",
                    outcome.per_page.len(),
                    entry.stored.revision
                ));
            }
        }

        let mut reinduced = false;
        let mut repaired_now = false;
        let mut response_outcome = outcome;
        let mut response_drift = mean_drift;
        if entry.state == WrapperState::Stale
            && entry.buffer.len() >= self.config.min_reinduce_pages
        {
            let buffered: Vec<String> = entry.buffer.iter().map(|(p, _)| p.clone()).collect();
            let domain = match Domain::by_name(&entry.stored.domain) {
                Some(d) => d,
                None => return err(&format!("stored domain '{}' unknown", entry.stored.domain)),
            };
            let revision = entry.stored.revision + 1;
            let stored_old = entry.stored.clone();

            // Repair first: patch the stored wrapper through a tree
            // diff against the drifted template — no induction stages.
            // Only when the patch is declined (container redesign, a
            // lost gap, coverage under the floor) does the full
            // re-induction pipeline run.
            self.obs
                .counter_add("objectrunner.serve.repair.attempts", 1);
            let mut repair_span = match trace_context {
                Some((t, p)) => self.obs.span_in(t, p, "serve.repair"),
                None => self.obs.trace("serve.repair"),
            };
            let repair_context = Some(repair_span.context()).filter(|_| repair_span.is_enabled());
            let prepared = extract_only_with(
                &stored_old.wrapper,
                stored_old.main_block.as_ref(),
                &stored_old.clean,
                &buffered,
                threads,
                &self.obs,
                repair_context,
            );
            let repair_cfg = RepairConfig {
                coverage_floor: self.config.repair_floor,
                ..RepairConfig::default()
            };
            let repair = repair_wrapper(
                &stored_old.wrapper,
                &stored_old.sod,
                &prepared.docs,
                &repair_cfg,
            );
            match &repair {
                Ok(r) => {
                    repair_span.attr_str("outcome", "repaired");
                    repair_span.attr_f64("coverage", r.report.coverage);
                    repair_span.attr_u64("remapped_paths", r.report.remapped_paths as u64);
                }
                Err(e) => {
                    repair_span.attr_str("outcome", "declined");
                    repair_span.attr_str("reason", &e.to_string());
                }
            }
            repair_span.finish();

            let mut decline_note: Option<String> = None;
            let attempt: Result<(StoredWrapper, String, WrapperState), String> = match repair {
                Ok(r) => {
                    self.obs
                        .counter_add("objectrunner.serve.repair.successes", 1);
                    let s = r.report.summary;
                    let stored = StoredWrapper {
                        revision,
                        wrapper: r.wrapper,
                        repair: Some(RepairProvenance {
                            repaired_from: stored_old.revision,
                            matched_exact: s.matched_exact,
                            matched_container: s.matched_container,
                            unmatched_old: s.unmatched_old,
                            unmatched_new: s.unmatched_new,
                        }),
                        ..stored_old
                    };
                    let line = format!(
                        "repaired: revision {revision} from {} buffered pages \
                         ({} exact + {} container node matches, {} paths remapped, \
                         coverage {:.2})",
                        buffered.len(),
                        s.matched_exact,
                        s.matched_container,
                        r.report.remapped_paths,
                        r.report.coverage,
                    );
                    Ok((stored, line, WrapperState::Repaired))
                }
                Err(reason) => {
                    self.obs
                        .counter_add("objectrunner.serve.repair.fallbacks", 1);
                    decline_note = Some(format!("repair declined ({reason}); re-inducing"));
                    self.induce_wrapper(&source, domain, revision, &buffered, span)
                        .map(|(stored, _, _)| {
                            self.obs.counter_add("objectrunner.serve.reinductions", 1);
                            let line = format!(
                                "reinduced: revision {revision} from {} buffered pages",
                                buffered.len()
                            );
                            (stored, line, WrapperState::Reinduced)
                        })
                }
            };

            match attempt {
                Ok((stored, line, new_state)) => {
                    if let Err(e) = self.persist(&stored) {
                        return err(&e);
                    }
                    self.obs.gauge_set(
                        &format!("objectrunner.serve.revision.{source}"),
                        revision as i64,
                    );
                    let entry = self.sources.get_mut(&source).expect("warmed");
                    if let Some(note) = decline_note.take() {
                        entry.log.push(note);
                    }
                    entry.stored = stored;
                    entry.state = new_state;
                    entry.buffer.clear();
                    entry.log.push(line);
                    reinduced = new_state == WrapperState::Reinduced;
                    repaired_now = new_state == WrapperState::Repaired;
                    // Replay the batch through the patched wrapper.
                    response_outcome = extract_only_with(
                        &entry.stored.wrapper,
                        entry.stored.main_block.as_ref(),
                        &entry.stored.clean,
                        &pages,
                        threads,
                        &self.obs,
                        trace_context,
                    );
                    let replay: Vec<f64> = response_outcome
                        .docs
                        .iter()
                        .map(|doc| {
                            drift_score(
                                &entry.stored.wrapper.template,
                                &entry.stored.wrapper.mapping,
                                doc,
                            )
                            .score()
                        })
                        .collect();
                    response_drift = replay.iter().sum::<f64>() / replay.len() as f64;
                }
                Err(e) => {
                    let entry = self.sources.get_mut(&source).expect("warmed");
                    if let Some(note) = decline_note.take() {
                        entry.log.push(note);
                    }
                    entry
                        .log
                        .push(format!("re-induction failed (still stale): {e}"));
                }
            }
        }

        let latency = self.clock.monotonic_micros().saturating_sub(started);
        self.obs.histogram_record(
            &format!("objectrunner.serve.extract.latency_micros.{domain_name}"),
            &LATENCY_BUCKETS_MICROS,
            latency,
        );

        // Durable sink: every object of the final (post-repair-replay)
        // batch flows through dedup into the store, tagged with the
        // page it came from and the wrapper revision that extracted it.
        let mut store_section: Option<Json> = None;
        if let Some(store) = self.objstore.as_mut() {
            let entry = self.sources.get(&source).expect("warmed");
            let domain = match Domain::by_name(&entry.stored.domain) {
                Some(d) => d,
                None => return err(&format!("stored domain '{}' unknown", entry.stored.domain)),
            };
            let revision = entry.stored.revision;
            let repaired_from = entry.stored.repair.as_ref().map(|r| r.repaired_from);
            let confidence = entry.stored.wrapper.quality;
            let key_attrs = domain.key_attributes();
            let offers: Vec<IngestObject> = response_outcome
                .per_page
                .iter()
                .zip(&names)
                .flat_map(|(objects, name)| {
                    objects.iter().map(|o| IngestObject {
                        instance: o.clone(),
                        page_id: name.clone(),
                    })
                })
                .collect();
            let ctx = IngestContext {
                source: &source,
                domain: domain.name(),
                wrapper_revision: revision,
                repaired_from,
                extracted_unix_micros: self.clock.wall_unix_micros(),
                confidence,
                key_attrs: &key_attrs,
            };
            match store.ingest(offers, &ctx, trace_context) {
                Ok(r) => {
                    store_section = Some(Json::Obj(vec![
                        ("ingested".into(), Json::int(r.ingested)),
                        ("new".into(), Json::int(r.new_objects)),
                        ("fused".into(), Json::int(r.fused)),
                        ("duplicates".into(), Json::int(r.duplicates)),
                        ("skipped".into(), Json::int(r.skipped)),
                    ]));
                }
                Err(e) => return err(&format!("object store ingest: {e}")),
            }
        }

        let entry = self.sources.get(&source).expect("warmed");
        let objects = response_outcome.objects();
        let mut response = vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("extract")),
            ("source".into(), Json::str(&source)),
            ("cache".into(), Json::str("hit")),
            ("revision".into(), Json::int(entry.stored.revision as i64)),
            ("state".into(), Json::str(entry.state.as_str())),
            ("drift".into(), Json::Float(response_drift)),
            ("repaired".into(), Json::Bool(repaired_now)),
            ("reinduced".into(), Json::Bool(reinduced)),
            ("count".into(), Json::int(objects.len())),
            (
                "objects".into(),
                Json::Arr(objects.iter().map(|i| instance_json(i)).collect()),
            ),
            ("stats".into(), Json::Raw(response_outcome.stats.to_json())),
        ];
        if let Some(section) = store_section {
            response.push(("store".into(), section));
        }
        Json::Obj(response)
    }

    fn status(&self) -> Json {
        let now_mono = self.clock.monotonic_micros();
        let sources = self
            .sources
            .iter()
            .map(|(name, e)| {
                let idle = if e.last_activity_mono == 0 {
                    0
                } else {
                    now_mono.saturating_sub(e.last_activity_mono)
                };
                Json::Obj(vec![
                    ("source".into(), Json::str(name)),
                    ("domain".into(), Json::str(&e.stored.domain)),
                    ("revision".into(), Json::int(e.stored.revision as i64)),
                    ("state".into(), Json::str(e.state.as_str())),
                    ("quality".into(), Json::Float(e.stored.wrapper.quality)),
                    ("extracts".into(), Json::int(e.extracts as i64)),
                    ("cache_hits".into(), Json::int(e.cache_hits as i64)),
                    ("drift_events".into(), Json::int(e.drift_events as i64)),
                    ("buffered".into(), Json::int(e.buffer.len())),
                    (
                        "repair".into(),
                        match &e.stored.repair {
                            Some(p) => Json::Obj(vec![
                                ("repaired_from".into(), Json::int(p.repaired_from as i64)),
                                ("matched_exact".into(), Json::int(p.matched_exact)),
                                ("matched_container".into(), Json::int(p.matched_container)),
                                ("unmatched_old".into(), Json::int(p.unmatched_old)),
                                ("unmatched_new".into(), Json::int(p.unmatched_new)),
                            ]),
                            None => Json::Null,
                        },
                    ),
                    (
                        "last_activity_unix_micros".into(),
                        Json::int(e.last_activity_wall),
                    ),
                    ("idle_micros".into(), Json::int(idle)),
                    (
                        "log".into(),
                        Json::Arr(e.log.iter().map(Json::str).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("status")),
            (
                "uptime_micros".into(),
                Json::int(now_mono.saturating_sub(self.start_mono)),
            ),
            (
                // Echo of the tunable lifecycle knobs (CLI flags), so
                // an operator can read a daemon's effective thresholds
                // off a status probe.
                "config".into(),
                Json::Obj(vec![
                    (
                        "drift_threshold".into(),
                        Json::Float(self.config.drift_threshold),
                    ),
                    ("buffer_pages".into(), Json::int(self.config.buffer_pages)),
                    (
                        "min_reinduce_pages".into(),
                        Json::int(self.config.min_reinduce_pages),
                    ),
                    ("repair_floor".into(), Json::Float(self.config.repair_floor)),
                    (
                        "empty_page_threshold".into(),
                        Json::Float(self.config.empty_page_threshold),
                    ),
                ]),
            ),
            ("sources".into(), Json::Arr(sources)),
            ("metrics".into(), self.metrics_section()),
            (
                // Durable-sink summary (per-domain live objects, dedup
                // fusion rate, last compaction); null when the daemon
                // runs without `--object-store`.
                "object_store".into(),
                match &self.objstore {
                    Some(store) => store_status_json(&store.status()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// The status response's `metrics` section: per-domain extract
    /// latency and drift-score histograms (read back out of the obs
    /// registry), wrapper revisions, annotation-memo hit rate, and
    /// request counters.
    fn metrics_section(&self) -> Json {
        let snap = self.obs.snapshot();
        let mut latency: Vec<(String, Json)> = Vec::new();
        let mut drift: Vec<(String, Json)> = Vec::new();
        for (name, h) in &snap.histograms {
            if let Some(domain) = name.strip_prefix("objectrunner.serve.extract.latency_micros.") {
                latency.push((domain.to_owned(), histogram_json(h)));
            } else if let Some(domain) = name.strip_prefix("objectrunner.serve.drift.score_milli.")
            {
                drift.push((domain.to_owned(), histogram_json(h)));
            }
        }
        let revisions = self
            .sources
            .iter()
            .map(|(name, e)| (name.clone(), Json::int(e.stored.revision as i64)))
            .collect();
        let (hits, misses) = {
            let cache = self.annotators.lock().expect("annotator cache poisoned");
            cache.values().fold((0u64, 0u64), |(h, m), a| {
                (h + a.cache_hits(), m + a.cache_misses())
            })
        };
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let requests = ["induce", "extract", "status", "trace"]
            .iter()
            .map(|&c| {
                (
                    c.to_owned(),
                    Json::int(snap.counter(&format!("objectrunner.serve.requests.{c}"))),
                )
            })
            .collect();
        Json::Obj(vec![
            ("extract_latency_micros".into(), Json::Obj(latency)),
            ("drift_score_milli".into(), Json::Obj(drift)),
            ("revisions".into(), Json::Obj(revisions)),
            (
                "annotation_memo".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::int(hits)),
                    ("misses".into(), Json::int(misses)),
                    ("hit_rate".into(), Json::Float(hit_rate)),
                ]),
            ),
            ("requests".into(), Json::Obj(requests)),
            (
                "reinductions".into(),
                Json::int(snap.counter("objectrunner.serve.reinductions")),
            ),
            (
                "repair".into(),
                Json::Obj(vec![
                    (
                        "attempts".into(),
                        Json::int(snap.counter("objectrunner.serve.repair.attempts")),
                    ),
                    (
                        "successes".into(),
                        Json::int(snap.counter("objectrunner.serve.repair.successes")),
                    ),
                    (
                        "fallbacks".into(),
                        Json::int(snap.counter("objectrunner.serve.repair.fallbacks")),
                    ),
                ]),
            ),
        ])
    }

    /// `{"cmd":"trace","limit":N}` — the span trees of the last `N`
    /// requests (default 3) still in the observability buffer. Spans
    /// are rendered in `(trace, id)` order, parents before children.
    fn trace_dump(&self, req: &Json) -> Json {
        let limit = req
            .get("limit")
            .and_then(Json::as_usize)
            .unwrap_or(3)
            .max(1);
        let spans = self.obs.spans();
        // `spans` is sorted by (trace, id) and trace ids are allocated
        // in request order, so the last distinct ids are the most
        // recent requests.
        let mut traces: Vec<u64> = Vec::new();
        for s in &spans {
            if traces.last() != Some(&s.trace) {
                traces.push(s.trace);
            }
        }
        let keep = &traces[traces.len().saturating_sub(limit)..];
        let rendered: Vec<Json> = spans
            .iter()
            .filter(|s| keep.contains(&s.trace))
            .map(span_json)
            .collect();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("trace")),
            ("enabled".into(), Json::Bool(self.obs.is_enabled())),
            ("traces".into(), Json::int(keep.len())),
            ("spans".into(), Json::Arr(rendered)),
            ("dropped_spans".into(), Json::int(self.obs.dropped_spans())),
        ])
    }

    /// `{"cmd":"query", …}` — run a [`Query`] against the object
    /// store; see `objstore::query` for the filter grammar. Hits are
    /// rendered with per-attribute provenance; `next_cursor` (when
    /// present) feeds the next page's `"cursor"`.
    fn query_cmd(&mut self, req: &Json, span: &Span) -> Json {
        let Some(store) = &self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        let q = match Query::from_json(req) {
            Ok(q) => q,
            Err(e) => return err(&format!("bad query: {e}")),
        };
        let trace_context = Some(span.context()).filter(|_| span.is_enabled());
        match store.query(&q, trace_context) {
            Ok(result) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("cmd".into(), Json::str("query")),
                ("count".into(), Json::int(result.hits.len())),
                (
                    "hits".into(),
                    Json::Arr(
                        result
                            .hits
                            .iter()
                            .map(|h| record_json(h, &q.select))
                            .collect(),
                    ),
                ),
                (
                    "next_cursor".into(),
                    match result.next_cursor {
                        Some(c) => Json::str(c),
                        None => Json::Null,
                    },
                ),
                ("scanned".into(), Json::int(result.scanned)),
            ]),
            Err(e) => err(&format!("query: {e}")),
        }
    }

    /// `{"cmd":"get","key":K}` — fetch one object (with provenance)
    /// by its identity key.
    fn get_cmd(&mut self, req: &Json) -> Json {
        let Some(store) = &self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        let Some(key) = req.get("key").and_then(Json::as_str) else {
            return err("missing 'key'");
        };
        match store.get(key) {
            Ok(hit) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("cmd".into(), Json::str("get")),
                ("found".into(), Json::Bool(hit.is_some())),
                (
                    "hit".into(),
                    match &hit {
                        Some(record) => record_json(record, &[]),
                        None => Json::Null,
                    },
                ),
            ]),
            Err(e) => err(&format!("get: {e}")),
        }
    }

    /// `{"cmd":"store-status"}` — segment/object/byte counts and the
    /// cumulative dedup counters of the object store.
    fn store_status_cmd(&mut self) -> Json {
        let Some(store) = &self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        let mut pairs = vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("store-status")),
        ];
        if let Json::Obj(section) = store_status_json(&store.status()) {
            pairs.extend(section);
        }
        Json::Obj(pairs)
    }

    /// `{"cmd":"compact"}` — rewrite live records into a fresh
    /// generation and drop superseded versions.
    fn compact_cmd(&mut self, span: &Span) -> Json {
        let now = self.clock.wall_unix_micros();
        let trace_context = Some(span.context()).filter(|_| span.is_enabled());
        let Some(store) = &mut self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        match store.compact(now, trace_context) {
            Ok(r) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("cmd".into(), Json::str("compact")),
                ("live_records".into(), Json::int(r.live_records)),
                ("dropped_records".into(), Json::int(r.dropped_records)),
                ("segments_before".into(), Json::int(r.segments_before)),
                ("segments_after".into(), Json::int(r.segments_after)),
                ("bytes_before".into(), Json::int(r.bytes_before)),
                ("bytes_after".into(), Json::int(r.bytes_after)),
            ]),
            Err(e) => err(&format!("compact: {e}")),
        }
    }
}

/// Histogram snapshot as JSON (fixed key order).
fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::int(h.count)),
        ("sum".into(), Json::int(h.sum)),
        ("mean".into(), Json::Float(h.mean())),
        (
            "bounds".into(),
            Json::Arr(h.bounds.iter().map(|&b| Json::int(b)).collect()),
        ),
        (
            "counts".into(),
            Json::Arr(h.counts.iter().map(|&c| Json::int(c)).collect()),
        ),
    ])
}

/// One finished span as JSON, matching the JSONL exporter's field
/// names so `trace` output joins against `obs_check` tooling.
fn span_json(s: &SpanRecord) -> Json {
    let attrs = s
        .attrs
        .iter()
        .map(|(k, v)| ((*k).to_owned(), Json::Raw(v.render_json())))
        .collect();
    Json::Obj(vec![
        ("trace".into(), Json::int(s.trace)),
        ("id".into(), Json::int(s.id)),
        ("parent".into(), Json::int(s.parent)),
        ("name".into(), Json::str(s.name)),
        ("start_us".into(), Json::int(s.start_micros)),
        ("dur_us".into(), Json::int(s.dur_micros)),
        ("cpu_us".into(), Json::int(s.cpu_micros)),
        ("attrs".into(), Json::Obj(attrs)),
    ])
}

/// A [`StoreStatus`] as JSON (fixed key order) — shared by the
/// `store-status` command and the `status` response's `object_store`
/// section.
fn store_status_json(s: &StoreStatus) -> Json {
    let per_domain = s
        .per_domain
        .iter()
        .map(|(d, &n)| (d.clone(), Json::int(n)))
        .collect();
    // Of the sightings that collided with a stored object, the
    // fraction that contributed new attributes (cross-source gap
    // filling actually paying off).
    let fusion_rate = if s.duplicates == 0 {
        0.0
    } else {
        s.fused as f64 / s.duplicates as f64
    };
    Json::Obj(vec![
        ("generation".into(), Json::int(s.generation)),
        ("segments".into(), Json::int(s.segments)),
        ("live_objects".into(), Json::int(s.live_objects)),
        ("dead_records".into(), Json::int(s.dead_records)),
        ("bytes".into(), Json::int(s.bytes)),
        ("per_domain".into(), Json::Obj(per_domain)),
        ("ingested".into(), Json::int(s.ingested)),
        ("new_objects".into(), Json::int(s.new_objects)),
        ("fused".into(), Json::int(s.fused)),
        ("duplicates".into(), Json::int(s.duplicates)),
        ("skipped".into(), Json::int(s.skipped)),
        ("fusion_rate".into(), Json::Float(fusion_rate)),
        ("compactions".into(), Json::int(s.compactions)),
        (
            "last_compaction_unix_micros".into(),
            match s.last_compaction_unix_micros {
                Some(t) => Json::int(t),
                None => Json::Null,
            },
        ),
    ])
}

/// Resolve a request's page input: inline `"pages"` array or a
/// `"dir"` of `*.html` files in lexicographic order.
fn request_pages(req: &Json) -> Result<Vec<String>, String> {
    Ok(request_named_pages(req)?
        .into_iter()
        .map(|(_, html)| html)
        .collect())
}

/// Like [`request_pages`], but each page comes with a stable id the
/// object store uses as provenance: the file stem for `"dir"` input,
/// `page-<index>` for inline pages.
fn request_named_pages(req: &Json) -> Result<Vec<(String, String)>, String> {
    if let Some(arr) = req.get("pages").and_then(Json::as_arr) {
        return arr
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.as_str()
                    .map(|html| (format!("page-{i:04}"), html.to_owned()))
                    .ok_or_else(|| "'pages' holds a non-string".to_owned())
            })
            .collect();
    }
    if let Some(dir) = req.get("dir").and_then(Json::as_str) {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("dir '{dir}': {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "html"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("dir '{dir}' holds no *.html files"));
        }
        return files
            .iter()
            .map(|p| {
                let name = p
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| p.display().to_string());
                std::fs::read_to_string(p)
                    .map(|html| (name, html))
                    .map_err(|e| format!("{}: {e}", p.display()))
            })
            .collect();
    }
    Err("missing 'pages' (inline array) or 'dir' (of *.html files)".to_owned())
}
