//! The serving core: wrapper cache, drift detection, re-induction.
//!
//! A [`Service`] owns a set of sources, each with a persisted wrapper
//! (see `objectrunner-store`). The protocol is line-delimited JSON —
//! one request object in, one response object out:
//!
//! * `{"cmd":"induce","source":S,"domain":D,"pages":[..]}` — run the
//!   full Parse→Wrap pipeline, persist the wrapper, respond with the
//!   extracted objects and stage timings (Wrap included);
//! * `{"cmd":"extract","source":S,"pages":[..]}` — the cached fast
//!   path: load the stored wrapper, skip induction entirely
//!   (Parse/Clean/Segment/Extract only), score template drift per
//!   page, and — past the threshold — flag the wrapper stale and
//!   re-induce from the buffered drifted pages;
//! * `{"cmd":"status"}` — per-source counters, lifecycle state and
//!   the transition log.
//!
//! Page input is either inline (`"pages": [html, ..]`) or a directory
//! of `*.html` files (`"dir": "path"`, lexicographic order).
//!
//! ## The drift lifecycle
//!
//! Every cached extraction computes the fraction of wrapper slots
//! (the separator matchers the SOD mapping reads) that fail to align
//! on each page (`core::matching::drift_score`). Pages at or above
//! [`ServeConfig::drift_threshold`] enter a bounded buffer. When a
//! batch's mean drift crosses the threshold the wrapper is flagged
//! **stale**; once the buffer holds [`ServeConfig::min_reinduce_pages`]
//! drifted pages, the service re-induces *from those pages only* —
//! mixing clean and drifted pages would hand the sampler two templates
//! at once — bumps the stored revision, persists, and replays the
//! current batch through the repaired wrapper.

use objectrunner_core::annotate::Annotator;
use objectrunner_core::matching::drift_score;
use objectrunner_core::pipeline::{extract_only, Pipeline, PipelineConfig};
use objectrunner_core::sample::SampleConfig;
use objectrunner_sod::Instance;
use objectrunner_store::{load_file, save_file, Json, StoredWrapper};
use objectrunner_webgen::knowledge::recognizers_for;
use objectrunner_webgen::Domain;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding the persisted `<source>.orw` wrapper files.
    pub store_dir: PathBuf,
    /// Mean per-page drift at or above which a wrapper is stale.
    pub drift_threshold: f64,
    /// Capacity of the per-source drifted-page buffer.
    pub buffer_pages: usize,
    /// Drifted pages required before re-induction fires.
    pub min_reinduce_pages: usize,
    /// Recognizer coverage for (re-)induction.
    pub coverage: f64,
    /// Sample size k for (re-)induction.
    pub sample_size: usize,
    /// Worker threads (None = `OBJECTRUNNER_THREADS` / machine).
    pub threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            store_dir: PathBuf::from("wrappers"),
            drift_threshold: 0.5,
            buffer_pages: 32,
            min_reinduce_pages: 6,
            coverage: 0.2,
            sample_size: 12,
            threads: None,
        }
    }
}

/// Lifecycle state of a served wrapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WrapperState {
    /// Extracting within drift tolerance.
    Fresh,
    /// Drift crossed the threshold; awaiting enough buffered pages.
    Stale,
    /// Re-induced from drifted pages since it was last stale.
    Reinduced,
}

impl WrapperState {
    pub fn as_str(self) -> &'static str {
        match self {
            WrapperState::Fresh => "fresh",
            WrapperState::Stale => "stale",
            WrapperState::Reinduced => "reinduced",
        }
    }
}

/// Per-source serving state.
struct SourceEntry {
    stored: StoredWrapper,
    state: WrapperState,
    extracts: u64,
    cache_hits: u64,
    drift_events: u64,
    /// Recent drifted pages: (html, drift score), bounded.
    buffer: VecDeque<(String, f64)>,
    /// Human-readable lifecycle transitions, oldest first.
    log: Vec<String>,
}

impl SourceEntry {
    fn new(stored: StoredWrapper) -> SourceEntry {
        SourceEntry {
            stored,
            state: WrapperState::Fresh,
            extracts: 0,
            cache_hits: 0,
            drift_events: 0,
            buffer: VecDeque::new(),
            log: Vec::new(),
        }
    }
}

/// The serving core. Owns the wrapper cache; one instance per daemon.
pub struct Service {
    config: ServeConfig,
    sources: BTreeMap<String, SourceEntry>,
    /// Compiled annotation engines, one per domain, shared across
    /// inductions and drift-repair re-inductions: the recognizer set of
    /// a domain is fixed (per coverage setting), so the automatons are
    /// compiled once and the text memo cache stays warm between
    /// requests. Mutex (not RefCell) keeps `Service: Send` for the
    /// daemon's connection handler.
    annotators: std::sync::Mutex<BTreeMap<String, Arc<Annotator>>>,
}

fn err(msg: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(msg)),
    ])
}

/// Canonical JSON form of an extracted instance; fixed key order, so
/// equal instances render byte-identically (the round-trip tests and
/// the `extract-file` cold-process check compare these strings).
pub fn instance_json(instance: &Instance) -> Json {
    match instance {
        Instance::Atomic { type_name, value } => Json::Obj(vec![
            ("t".into(), Json::str(type_name)),
            ("v".into(), Json::str(value)),
        ]),
        Instance::Tuple { name, fields } => Json::Obj(vec![
            ("tuple".into(), Json::str(name)),
            (
                "fields".into(),
                Json::Arr(fields.iter().map(instance_json).collect()),
            ),
        ]),
        Instance::Set(items) => Json::Obj(vec![(
            "set".into(),
            Json::Arr(items.iter().map(instance_json).collect()),
        )]),
    }
}

impl Service {
    pub fn new(config: ServeConfig) -> Service {
        Service {
            config,
            sources: BTreeMap::new(),
            annotators: std::sync::Mutex::new(BTreeMap::new()),
        }
    }

    /// The shared annotation engine for a domain (compiled on first
    /// use, then reused by every induction of that domain).
    fn annotator_for(&self, domain: Domain) -> Arc<Annotator> {
        let key = domain.name().to_lowercase();
        let mut cache = self.annotators.lock().expect("annotator cache poisoned");
        Arc::clone(cache.entry(key).or_insert_with(|| {
            Arc::new(Annotator::new(&recognizers_for(
                domain,
                self.config.coverage,
            )))
        }))
    }

    /// Handle one protocol line, producing one response line (no
    /// trailing newline). Never panics on malformed input.
    pub fn handle_line(&mut self, line: &str) -> String {
        let response = match Json::parse(line) {
            Ok(req) => self.handle(&req),
            Err(e) => err(&format!("bad request: {e}")),
        };
        response.render()
    }

    fn handle(&mut self, req: &Json) -> Json {
        match req.get("cmd").and_then(Json::as_str) {
            Some("induce") => self.induce(req),
            Some("extract") => self.extract(req),
            Some("status") => self.status(),
            Some(other) => err(&format!("unknown cmd '{other}'")),
            None => err("missing 'cmd'"),
        }
    }

    /// The wrapper file for a source.
    fn wrapper_path(&self, source: &str) -> PathBuf {
        self.config.store_dir.join(format!("{source}.orw"))
    }

    fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig {
            sample: SampleConfig {
                sample_size: self.config.sample_size,
                ..SampleConfig::default()
            },
            threads: self.config.threads,
            ..PipelineConfig::default()
        }
    }

    /// Induce (or re-induce) a wrapper from scratch on the given pages.
    fn induce_wrapper(
        &self,
        source: &str,
        domain: Domain,
        revision: u64,
        pages: &[String],
    ) -> Result<(StoredWrapper, Vec<Instance>, String), String> {
        let sod = domain.sod();
        let recognizers = recognizers_for(domain, self.config.coverage);
        let config = self.pipeline_config();
        let clean = config.clean.clone();
        let pipeline =
            Pipeline::with_annotator(sod.clone(), recognizers, self.annotator_for(domain))
                .with_config(config);
        let outcome = pipeline
            .run_on_html(pages)
            .map_err(|e| format!("induction failed: {e}"))?;
        let stored = StoredWrapper {
            source: source.to_owned(),
            domain: domain.name().to_lowercase(),
            revision,
            sod,
            wrapper: outcome.wrapper,
            main_block: outcome.main_block,
            clean,
        };
        Ok((stored, outcome.objects, outcome.stats.to_json()))
    }

    fn induce(&mut self, req: &Json) -> Json {
        let source = match req.get("source").and_then(Json::as_str) {
            Some(s) => s.to_owned(),
            None => return err("missing 'source'"),
        };
        let domain = match req.get("domain").and_then(Json::as_str) {
            Some(name) => match Domain::by_name(name) {
                Some(d) => d,
                None => return err(&format!("unknown domain '{name}'")),
            },
            None => return err("missing 'domain'"),
        };
        let pages = match request_pages(req) {
            Ok(p) => p,
            Err(e) => return err(&e),
        };
        let revision = self
            .sources
            .get(&source)
            .map(|e| e.stored.revision + 1)
            .unwrap_or(1);
        let (stored, objects, stats) = match self.induce_wrapper(&source, domain, revision, &pages)
        {
            Ok(r) => r,
            Err(e) => return err(&e),
        };
        if let Err(e) = self.persist(&stored) {
            return err(&e);
        }
        let mut entry = SourceEntry::new(stored);
        entry.log.push(format!(
            "induced: revision {revision}, {} pages",
            pages.len()
        ));
        let response = Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("induce")),
            ("source".into(), Json::str(&source)),
            ("revision".into(), Json::int(revision as i64)),
            ("quality".into(), Json::Float(entry.stored.wrapper.quality)),
            ("count".into(), Json::int(objects.len())),
            (
                "objects".into(),
                Json::Arr(objects.iter().map(instance_json).collect()),
            ),
            ("stats".into(), Json::Raw(stats)),
        ]);
        self.sources.insert(source, entry);
        response
    }

    fn persist(&self, stored: &StoredWrapper) -> Result<(), String> {
        std::fs::create_dir_all(&self.config.store_dir).map_err(|e| format!("store dir: {e}"))?;
        save_file(&self.wrapper_path(&stored.source), stored).map_err(|e| format!("persist: {e}"))
    }

    /// Ensure a source is in the in-memory cache, loading from the
    /// store directory on first use (daemon restart survival).
    fn warm(&mut self, source: &str) -> Result<(), String> {
        if self.sources.contains_key(source) {
            return Ok(());
        }
        let path = self.wrapper_path(source);
        if !path.exists() {
            return Err(format!("unknown source '{source}' (no wrapper stored)"));
        }
        let stored = load_file(&path).map_err(|e| format!("load: {e}"))?;
        let mut entry = SourceEntry::new(stored);
        entry.log.push(format!(
            "loaded: revision {} from {}",
            entry.stored.revision,
            path.display()
        ));
        self.sources.insert(source.to_owned(), entry);
        Ok(())
    }

    fn extract(&mut self, req: &Json) -> Json {
        let source = match req.get("source").and_then(Json::as_str) {
            Some(s) => s.to_owned(),
            None => return err("missing 'source'"),
        };
        let pages = match request_pages(req) {
            Ok(p) => p,
            Err(e) => return err(&e),
        };
        if pages.is_empty() {
            return err("no pages");
        }
        if let Err(e) = self.warm(&source) {
            return err(&e);
        }

        let threads = self.config.threads;
        let threshold = self.config.drift_threshold;
        let entry = self.sources.get_mut(&source).expect("warmed");
        entry.extracts += 1;
        entry.cache_hits += 1;

        // Cached fast path: no induction stages run.
        let outcome = extract_only(
            &entry.stored.wrapper,
            entry.stored.main_block.as_ref(),
            &entry.stored.clean,
            &pages,
            threads,
        );

        // Score template drift on the prepared documents.
        let scores: Vec<f64> = outcome
            .docs
            .iter()
            .map(|doc| {
                drift_score(
                    &entry.stored.wrapper.template,
                    &entry.stored.wrapper.mapping,
                    doc,
                )
                .score()
            })
            .collect();
        let mean_drift = scores.iter().sum::<f64>() / scores.len() as f64;

        // Buffer the drifted pages (bounded, oldest evicted).
        for (page, &score) in pages.iter().zip(scores.iter()) {
            if score >= threshold {
                if entry.buffer.len() == self.config.buffer_pages {
                    entry.buffer.pop_front();
                }
                entry.buffer.push_back((page.clone(), score));
            }
        }

        if mean_drift >= threshold && entry.state != WrapperState::Stale {
            entry.drift_events += 1;
            entry.state = WrapperState::Stale;
            entry.log.push(format!(
                "stale: mean drift {mean_drift:.2} >= {threshold:.2} on revision {}",
                entry.stored.revision
            ));
        }

        let mut reinduced = false;
        let mut response_outcome = outcome;
        let mut response_drift = mean_drift;
        if entry.state == WrapperState::Stale
            && entry.buffer.len() >= self.config.min_reinduce_pages
        {
            let buffered: Vec<String> = entry.buffer.iter().map(|(p, _)| p.clone()).collect();
            let domain = match Domain::by_name(&entry.stored.domain) {
                Some(d) => d,
                None => return err(&format!("stored domain '{}' unknown", entry.stored.domain)),
            };
            let revision = entry.stored.revision + 1;
            match self.induce_wrapper(&source, domain, revision, &buffered) {
                Ok((stored, _, _)) => {
                    if let Err(e) = self.persist(&stored) {
                        return err(&e);
                    }
                    let entry = self.sources.get_mut(&source).expect("warmed");
                    entry.stored = stored;
                    entry.state = WrapperState::Reinduced;
                    entry.buffer.clear();
                    entry.log.push(format!(
                        "reinduced: revision {revision} from {} buffered pages",
                        buffered.len()
                    ));
                    reinduced = true;
                    // Replay the batch through the repaired wrapper.
                    response_outcome = extract_only(
                        &entry.stored.wrapper,
                        entry.stored.main_block.as_ref(),
                        &entry.stored.clean,
                        &pages,
                        threads,
                    );
                    let repaired: Vec<f64> = response_outcome
                        .docs
                        .iter()
                        .map(|doc| {
                            drift_score(
                                &entry.stored.wrapper.template,
                                &entry.stored.wrapper.mapping,
                                doc,
                            )
                            .score()
                        })
                        .collect();
                    response_drift = repaired.iter().sum::<f64>() / repaired.len() as f64;
                }
                Err(e) => {
                    let entry = self.sources.get_mut(&source).expect("warmed");
                    entry
                        .log
                        .push(format!("re-induction failed (still stale): {e}"));
                }
            }
        }

        let entry = self.sources.get(&source).expect("warmed");
        let objects = response_outcome.objects();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("extract")),
            ("source".into(), Json::str(&source)),
            ("cache".into(), Json::str("hit")),
            ("revision".into(), Json::int(entry.stored.revision as i64)),
            ("state".into(), Json::str(entry.state.as_str())),
            ("drift".into(), Json::Float(response_drift)),
            ("reinduced".into(), Json::Bool(reinduced)),
            ("count".into(), Json::int(objects.len())),
            (
                "objects".into(),
                Json::Arr(objects.iter().map(|i| instance_json(i)).collect()),
            ),
            ("stats".into(), Json::Raw(response_outcome.stats.to_json())),
        ])
    }

    fn status(&self) -> Json {
        let sources = self
            .sources
            .iter()
            .map(|(name, e)| {
                Json::Obj(vec![
                    ("source".into(), Json::str(name)),
                    ("domain".into(), Json::str(&e.stored.domain)),
                    ("revision".into(), Json::int(e.stored.revision as i64)),
                    ("state".into(), Json::str(e.state.as_str())),
                    ("quality".into(), Json::Float(e.stored.wrapper.quality)),
                    ("extracts".into(), Json::int(e.extracts as i64)),
                    ("cache_hits".into(), Json::int(e.cache_hits as i64)),
                    ("drift_events".into(), Json::int(e.drift_events as i64)),
                    ("buffered".into(), Json::int(e.buffer.len())),
                    (
                        "log".into(),
                        Json::Arr(e.log.iter().map(Json::str).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("status")),
            ("sources".into(), Json::Arr(sources)),
        ])
    }
}

/// Resolve a request's page input: inline `"pages"` array or a
/// `"dir"` of `*.html` files in lexicographic order.
fn request_pages(req: &Json) -> Result<Vec<String>, String> {
    if let Some(arr) = req.get("pages").and_then(Json::as_arr) {
        return arr
            .iter()
            .map(|p| {
                p.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| "'pages' holds a non-string".to_owned())
            })
            .collect();
    }
    if let Some(dir) = req.get("dir").and_then(Json::as_str) {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("dir '{dir}': {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "html"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("dir '{dir}' holds no *.html files"));
        }
        return files
            .iter()
            .map(|p| std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display())))
            .collect();
    }
    Err("missing 'pages' (inline array) or 'dir' (of *.html files)".to_owned())
}
