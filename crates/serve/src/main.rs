//! `objectrunner-serve` — the wrapper-serving daemon.
//!
//! Default mode is a long-running service speaking line-delimited JSON
//! on stdin/stdout (and optionally TCP via `--listen`):
//!
//! ```text
//! objectrunner-serve --store wrappers
//!   {"cmd":"induce","source":"shop","domain":"books","dir":"pages/"}
//!   {"cmd":"extract","source":"shop","dir":"pages/"}
//!   {"cmd":"status"}
//! ```
//!
//! Three auxiliary subcommands support scripting and testing:
//!
//! * `seed-corpus` — write a synthetic source's pages to a directory
//!   (`--drift` renders the same objects through a mutated template);
//! * `extract-file` — load a stored wrapper in *this* (cold) process
//!   and extract a page directory, printing one canonical JSON line
//!   per object. Exercises the store's cold-process fidelity: the
//!   loading process has empty interner tables.
//! * `extract-stream` — the crawl-scale sibling of `extract-file`:
//!   pages are `mmap`ed lazily and fed through the streaming,
//!   memory-bounded extraction path, printing one JSON line **per
//!   page** as it completes. Peak memory is the working window, not
//!   the corpus.

use objectrunner_core::pipeline::extract_only;
use objectrunner_core::{extract_stream, StreamConfig};
use objectrunner_objstore::{IngestContext, IngestObject, ObjectStore};
use objectrunner_obs::Obs;
use objectrunner_serve::service::instance_json;
use objectrunner_serve::{serve_tcp, PoolConfig, ServeConfig, Service};
use objectrunner_store::{load_file, Json};
use objectrunner_webgen::{generate_drifted, CorpusDir, Domain, MappedText, PageKind, SiteSpec};
use std::io::{BufRead, BufWriter, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("seed-corpus") => seed_corpus(&args[1..]),
        Some("extract-file") => extract_file(&args[1..]),
        Some("extract-stream") => extract_stream_cmd(&args[1..]),
        Some("--help" | "-h") => {
            print!("{HELP}");
            0
        }
        _ => serve(&args),
    };
    std::process::exit(code);
}

const HELP: &str = "\
objectrunner-serve — wrapper-serving daemon (line-delimited JSON)

USAGE:
  objectrunner-serve [--store DIR] [--object-store DIR] [--threshold F] \\
                     [--min-reinduce-pages N] [--repair-floor F] \\
                     [--empty-page-threshold F] [--threads N] [--listen ADDR]
  objectrunner-serve seed-corpus --domain D --name NAME --out DIR \\
                     [--seed N] [--pages N] [--style K] [--drift S]
  objectrunner-serve extract-file --wrapper FILE --pages DIR
  objectrunner-serve extract-stream --wrapper FILE --pages DIR [--threads N] \\
                     [--object-store DIR] [--extracted-at MICROS]

PROTOCOL (one JSON object per line on stdin; one response per line):
  {\"cmd\":\"induce\",\"source\":S,\"domain\":D,\"pages\":[..]|\"dir\":PATH}
  {\"cmd\":\"extract\",\"source\":S,\"pages\":[..]|\"dir\":PATH}
  {\"cmd\":\"status\"}     (uptime, per-source state, metrics + live sections)
  {\"cmd\":\"trace\",\"limit\":N}  (span trees of the last N requests)
  {\"cmd\":\"trace\",\"kind\":\"slow|errors|shed\",\"limit\":N}
                         (tail-sampled span trees of qualifying requests)
  {\"cmd\":\"watch\",\"interval_micros\":N,\"count\":N}
                         (stream one metrics-snapshot line per tick)
  {\"cmd\":\"metrics-text\"}   (Prometheus-style text exposition)

OBJECT STORE (only with --object-store; extractions are de-duplicated,
fused across sources and persisted with per-attribute provenance):
  {\"cmd\":\"query\",\"domain\":D,\"where\":[{\"attr\":A,\"op\":\"eq|contains|prefix\",
   \"value\":V}],\"select\":[A,..],\"limit\":N,\"cursor\":C}
  {\"cmd\":\"get\",\"key\":K}   (one object + full provenance)
  {\"cmd\":\"store-status\"}   (segments, live objects, fusion rate)
  {\"cmd\":\"compact\"}        (drop superseded versions, rewrite segments)

LIFECYCLE FLAGS (echoed back under status.config):
  --threshold F             mean per-page drift at which a wrapper goes stale (0.5)
  --min-reinduce-pages N    buffered pages required before repair/re-induction (6)
  --repair-floor F          min fraction of buffered pages a tree-diff-repaired
                            wrapper must extract on, else full re-induction (0.5)
  --empty-page-threshold F  fraction of zero-extraction pages that flags a
                            low-drift batch stale anyway (silent miss, 0.8)

TELEMETRY FLAGS:
  --access-log FILE           structured JSONL access log (one line/request)
  --access-log-max-bytes N    rotate the log to FILE.1 past N bytes (64 MiB)
  --slow-trace-micros N       floor for slow-trace retention; combined with
                              the adaptive windowed-p99 threshold
  --watch-interval MICROS     default tick interval for watch (1000000)

Every response echoes a \"trace\" id joinable against the trace command.
";

/// Pull `--flag value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn serve(args: &[String]) -> i32 {
    let mut config = ServeConfig::default();
    if let Some(dir) = flag(args, "--store") {
        config.store_dir = PathBuf::from(dir);
    }
    if let Some(dir) = flag(args, "--object-store") {
        config.object_store = Some(PathBuf::from(dir));
    }
    if let Some(t) = flag(args, "--threshold") {
        match t.parse() {
            Ok(v) => config.drift_threshold = v,
            Err(_) => {
                eprintln!("bad --threshold '{t}'");
                return 2;
            }
        }
    }
    if let Some(n) = flag(args, "--min-reinduce-pages") {
        match n.parse() {
            Ok(v) => config.min_reinduce_pages = v,
            Err(_) => {
                eprintln!("bad --min-reinduce-pages '{n}'");
                return 2;
            }
        }
    }
    if let Some(f) = flag(args, "--repair-floor") {
        match f.parse() {
            Ok(v) => config.repair_floor = v,
            Err(_) => {
                eprintln!("bad --repair-floor '{f}'");
                return 2;
            }
        }
    }
    if let Some(f) = flag(args, "--empty-page-threshold") {
        match f.parse() {
            Ok(v) => config.empty_page_threshold = v,
            Err(_) => {
                eprintln!("bad --empty-page-threshold '{f}'");
                return 2;
            }
        }
    }
    if let Some(n) = flag(args, "--threads") {
        match n.parse() {
            Ok(v) => config.threads = Some(v),
            Err(_) => {
                eprintln!("bad --threads '{n}'");
                return 2;
            }
        }
    }
    if let Some(path) = flag(args, "--access-log") {
        config.access_log = Some(PathBuf::from(path));
    }
    if let Some(n) = flag(args, "--access-log-max-bytes") {
        match n.parse() {
            Ok(v) => config.access_log_max_bytes = v,
            Err(_) => {
                eprintln!("bad --access-log-max-bytes '{n}'");
                return 2;
            }
        }
    }
    if let Some(n) = flag(args, "--slow-trace-micros") {
        match n.parse() {
            Ok(v) => config.slow_trace_micros = Some(v),
            Err(_) => {
                eprintln!("bad --slow-trace-micros '{n}'");
                return 2;
            }
        }
    }
    if let Some(n) = flag(args, "--watch-interval") {
        match n.parse() {
            Ok(v) => config.watch_interval_micros = v,
            Err(_) => {
                eprintln!("bad --watch-interval '{n}'");
                return 2;
            }
        }
    }
    let mut pool = PoolConfig::default();
    if let Some(n) = flag(args, "--workers") {
        match n.parse() {
            Ok(v) => pool.workers = v,
            Err(_) => {
                eprintln!("bad --workers '{n}'");
                return 2;
            }
        }
    }
    if let Some(n) = flag(args, "--max-conns") {
        match n.parse() {
            Ok(v) => pool.max_conns = v,
            Err(_) => {
                eprintln!("bad --max-conns '{n}'");
                return 2;
            }
        }
    }
    if let Some(n) = flag(args, "--inflight") {
        match n.parse() {
            Ok(v) => pool.inflight = v,
            Err(_) => {
                eprintln!("bad --inflight '{n}'");
                return 2;
            }
        }
    }
    if let Some(n) = flag(args, "--batch") {
        match n.parse() {
            Ok(v) => pool.batch_max = v,
            Err(_) => {
                eprintln!("bad --batch '{n}'");
                return 2;
            }
        }
    }
    let service = Arc::new(Service::new(config));

    let listening = flag(args, "--listen").is_some();
    let mut pool_handle = None;
    if let Some(addr) = flag(args, "--listen") {
        let listener = match TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("listen {addr}: {e}");
                return 2;
            }
        };
        let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
        let handle = serve_tcp(listener, Arc::clone(&service), pool.clone());
        eprintln!(
            "listening on {bound} ({} workers, {} conns, {} in flight, batch {})",
            pool.workers.max(1),
            pool.max_conns,
            pool.inflight.max(1),
            pool.batch_max.max(1)
        );
        pool_handle = Some(handle);
    }

    // Stdin loop: EOF shuts the daemon down — unless a TCP listener is
    // up, in which case the daemon keeps serving connections (running
    // under an init system typically means stdin is closed from the
    // start).
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines().map_while(Result::ok) {
        if line.trim().is_empty() {
            continue;
        }
        // Streaming commands (`watch`, `metrics-text`) write their
        // output as it is produced instead of one response line.
        if let Some(spec) = service.special(&line) {
            let mut io_ok = true;
            service.run_special(&spec, &mut |chunk| {
                let mut out = stdout.lock();
                io_ok = writeln!(out, "{chunk}").and_then(|()| out.flush()).is_ok();
                io_ok
            });
            if !io_ok {
                break;
            }
            continue;
        }
        let response = service.handle_line(&line);
        let mut out = stdout.lock();
        if writeln!(out, "{response}")
            .and_then(|()| out.flush())
            .is_err()
        {
            break;
        }
    }
    if listening {
        eprintln!("stdin closed; serving TCP only");
        loop {
            std::thread::park();
        }
    }
    drop(pool_handle);
    0
}

fn seed_corpus(args: &[String]) -> i32 {
    let domain = match flag(args, "--domain").as_deref().and_then(Domain::by_name) {
        Some(d) => d,
        None => {
            eprintln!("seed-corpus: missing or unknown --domain");
            return 2;
        }
    };
    let name = match flag(args, "--name") {
        Some(n) => n,
        None => {
            eprintln!("seed-corpus: missing --name");
            return 2;
        }
    };
    let out = match flag(args, "--out") {
        Some(o) => PathBuf::from(o),
        None => {
            eprintln!("seed-corpus: missing --out");
            return 2;
        }
    };
    let seed: u64 = flag(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(17_000);
    let pages: usize = flag(args, "--pages")
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let drift: f64 = flag(args, "--drift")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);

    let mut spec = SiteSpec::clean(&name, domain, PageKind::List, pages, seed);
    if let Some(style) = flag(args, "--style").and_then(|s| s.parse().ok()) {
        spec.style = style;
    }
    let source = generate_drifted(&spec, drift);
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("seed-corpus: {}: {e}", out.display());
        return 1;
    }
    for (i, page) in source.pages.iter().enumerate() {
        let path = out.join(format!("page-{i:03}.html"));
        if let Err(e) = std::fs::write(&path, page) {
            eprintln!("seed-corpus: {}: {e}", path.display());
            return 1;
        }
    }
    eprintln!(
        "seed-corpus: wrote {} pages ({} objects) to {}",
        source.pages.len(),
        source.object_count(),
        out.display()
    );
    0
}

fn extract_file(args: &[String]) -> i32 {
    let wrapper_path = match flag(args, "--wrapper") {
        Some(w) => PathBuf::from(w),
        None => {
            eprintln!("extract-file: missing --wrapper");
            return 2;
        }
    };
    let pages_dir = match flag(args, "--pages") {
        Some(p) => PathBuf::from(p),
        None => {
            eprintln!("extract-file: missing --pages");
            return 2;
        }
    };
    let stored = match load_file(&wrapper_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("extract-file: {}: {e}", wrapper_path.display());
            return 1;
        }
    };
    let pages = match read_pages(&pages_dir) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("extract-file: {e}");
            return 1;
        }
    };
    let outcome = extract_only(
        &stored.wrapper,
        stored.main_block.as_ref(),
        &stored.clean,
        &pages,
        None,
    );
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for object in outcome.objects() {
        if writeln!(out, "{}", instance_json(object).render()).is_err() {
            return 1;
        }
    }
    0
}

/// `extract-stream`: apply a stored wrapper to a corpus directory via
/// the streaming path — pages `mmap`ed lazily, a bounded window in
/// flight, one JSON line per page in page order — then a run summary
/// on stderr. Output objects are byte-identical to `extract-file`'s;
/// only the line grouping differs (per page instead of per object).
///
/// With `--object-store DIR` each page's objects are also ingested
/// into a durable object store as they stream past — de-duplicated,
/// fused with whatever earlier crawls stored, and stamped with
/// per-attribute provenance. `--extracted-at MICROS` pins the
/// provenance timestamp (scripted runs use it for reproducible store
/// bytes); it defaults to the current wall clock.
fn extract_stream_cmd(args: &[String]) -> i32 {
    let wrapper_path = match flag(args, "--wrapper") {
        Some(w) => PathBuf::from(w),
        None => {
            eprintln!("extract-stream: missing --wrapper");
            return 2;
        }
    };
    let pages_dir = match flag(args, "--pages") {
        Some(p) => PathBuf::from(p),
        None => {
            eprintln!("extract-stream: missing --pages");
            return 2;
        }
    };
    let threads: Option<usize> = match flag(args, "--threads").map(|s| s.parse()) {
        Some(Ok(n)) => Some(n),
        Some(Err(_)) => {
            eprintln!("extract-stream: bad --threads");
            return 2;
        }
        None => None,
    };
    let stored = match load_file(&wrapper_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("extract-stream: {}: {e}", wrapper_path.display());
            return 1;
        }
    };
    let corpus = match CorpusDir::open(&pages_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("extract-stream: {e}");
            return 1;
        }
    };
    let mut store = match flag(args, "--object-store") {
        None => None,
        Some(dir) => match ObjectStore::open(&dir, Obs::disabled()) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("extract-stream: object store '{dir}': {e}");
                return 1;
            }
        },
    };
    let extracted_at: u64 = match flag(args, "--extracted-at").map(|s| s.parse()) {
        Some(Ok(t)) => t,
        Some(Err(_)) => {
            eprintln!("extract-stream: bad --extracted-at");
            return 2;
        }
        None => std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0),
    };
    let sink_domain = match (&store, Domain::by_name(&stored.domain)) {
        (None, _) => None,
        (Some(_), Some(d)) => Some(d),
        (Some(_), None) => {
            eprintln!(
                "extract-stream: wrapper domain '{}' is unknown; cannot build identity keys",
                stored.domain
            );
            return 1;
        }
    };

    // The scheduler cannot abort mid-stream, so a page that fails to
    // map streams as empty and the first error is reported afterwards.
    enum Page {
        Text(MappedText),
        Failed,
    }
    impl AsRef<str> for Page {
        fn as_ref(&self) -> &str {
            match self {
                Page::Text(t) => t.as_str(),
                Page::Failed => "",
            }
        }
    }
    let failed: Mutex<Option<String>> = Mutex::new(None);
    let pages = corpus.pages().map(|r| match r {
        Ok(text) => Page::Text(text),
        Err(e) => {
            let mut first = failed.lock().expect("error slot");
            first.get_or_insert_with(|| e.to_string());
            Page::Failed
        }
    });

    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let mut io_err = false;
    let source = wrapper_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| stored.source.clone());
    let key_attrs = sink_domain.map(|d| d.key_attributes()).unwrap_or_default();
    let mut store_err: Option<String> = None;
    let mut stored_objects: u64 = 0;
    let mut fused: u64 = 0;
    let stats = extract_stream(
        &stored.wrapper,
        stored.main_block.as_ref(),
        &stored.clean,
        pages,
        &StreamConfig {
            threads,
            ..StreamConfig::default()
        },
        |page, instances| {
            let line = Json::Obj(vec![
                ("page".into(), Json::int(page)),
                (
                    "objects".into(),
                    Json::Arr(instances.iter().map(instance_json).collect()),
                ),
            ]);
            if writeln!(out, "{}", line.render()).is_err() {
                io_err = true;
            }
            // Sink the page's objects as the stream goes by: one
            // ingest batch (and one manifest commit) per page keeps
            // memory bounded by the page, and a crash loses at most
            // the in-flight page.
            if let (Some(store), Some(domain), None) = (&mut store, sink_domain, &store_err) {
                let page_id = corpus.file_stem(page);
                let offers = instances
                    .into_iter()
                    .map(|instance| IngestObject {
                        instance,
                        page_id: page_id.clone(),
                    })
                    .collect();
                let ctx = IngestContext {
                    source: &source,
                    domain: domain.name(),
                    wrapper_revision: stored.revision,
                    repaired_from: stored.repair.as_ref().map(|r| r.repaired_from),
                    extracted_unix_micros: extracted_at,
                    confidence: stored.wrapper.quality,
                    key_attrs: &key_attrs,
                };
                match store.ingest(offers, &ctx, None) {
                    Ok(report) => {
                        stored_objects += report.new_objects;
                        fused += report.fused;
                    }
                    Err(e) => store_err = Some(e.to_string()),
                }
            }
        },
    );
    if out.flush().is_err() || io_err {
        return 1;
    }
    if let Some(store) = &store {
        let status = store.status();
        eprintln!(
            "extract-stream: object store: +{stored_objects} new, {fused} fused, {} live",
            status.live_objects
        );
    }
    if let Some(e) = store_err {
        eprintln!("extract-stream: object store ingest: {e}");
        return 1;
    }
    eprintln!(
        "extract-stream: {} pages, {} objects, {:.0} pages/sec, {} threads, arena peak {} bytes",
        stats.pages,
        stats.objects,
        stats.pages_per_sec(),
        stats.threads,
        stats.arena_peak_bytes
    );
    if let Some(e) = failed.into_inner().expect("error slot") {
        eprintln!("extract-stream: {e}");
        return 1;
    }
    0
}

fn read_pages(dir: &Path) -> Result<Vec<String>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "html"))
        .collect();
    files.sort();
    files
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display())))
        .collect()
}
