//! The query surface over the store.
//!
//! A query is a conjunction of attribute predicates plus optional
//! domain restriction, projection and cursor pagination:
//!
//! ```json
//! {"domain":"Concerts",
//!  "where":[{"attr":"artist","op":"eq","value":"Metallica"},
//!           {"attr":"theater","op":"contains","value":"garden"}],
//!  "select":["artist","date"],
//!  "limit":20,
//!  "cursor":"artist=metallica|…"}
//! ```
//!
//! Predicates compare under `core::dedup::normalize_value` — the same
//! normalization that built identity keys — so `"METALLICA"` matches
//! `"Metallica"` exactly where de-duplication would have fused them.
//! Results come back in identity-key order; the cursor is the last
//! returned key, and because that order is a property of the persisted
//! keys (not of any in-memory iteration state), a cursor stays valid
//! across daemon restarts and compactions.

use crate::record::ObjectRecord;
use objectrunner_core::dedup::normalize_value;
use objectrunner_sod::Instance;
use objectrunner_store::Json;

/// Page size when a query names none.
pub const DEFAULT_LIMIT: usize = 50;

/// Hard page-size ceiling (a query asking for more is clamped).
pub const MAX_LIMIT: usize = 500;

/// How a predicate compares a normalized attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOp {
    /// Normalized equality.
    Eq,
    /// Normalized substring.
    Contains,
    /// Normalized prefix.
    Prefix,
}

impl FilterOp {
    fn by_name(name: &str) -> Option<FilterOp> {
        match name {
            "eq" => Some(FilterOp::Eq),
            "contains" => Some(FilterOp::Contains),
            "prefix" => Some(FilterOp::Prefix),
            _ => None,
        }
    }
}

/// One attribute predicate. An object matches when *any* of its values
/// of type `attr` satisfies the comparison (exists semantics — a book
/// with three authors matches an author filter hitting one of them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    pub attr: String,
    pub op: FilterOp,
    /// Comparison value; normalized once at parse time.
    pub value: String,
}

impl Filter {
    /// Does this instance satisfy the predicate?
    pub fn matches(&self, instance: &Instance) -> bool {
        let mut values = Vec::new();
        instance.values_of_type(&self.attr, &mut values);
        values.iter().any(|v| {
            let v = normalize_value(v);
            match self.op {
                FilterOp::Eq => v == self.value,
                FilterOp::Contains => v.contains(&self.value),
                FilterOp::Prefix => v.starts_with(&self.value),
            }
        })
    }
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Query {
    /// Restrict to one domain (exact name, as stored).
    pub domain: Option<String>,
    /// Conjunction of predicates (all must hold).
    pub filters: Vec<Filter>,
    /// Attribute types to project hits down to (empty = full object).
    pub select: Vec<String>,
    /// Exclusive lower bound: return keys strictly after this one.
    pub cursor: Option<String>,
    /// Page size, clamped to `1..=MAX_LIMIT`.
    pub limit: usize,
}

impl Query {
    /// An unfiltered first page.
    pub fn all() -> Query {
        Query {
            limit: DEFAULT_LIMIT,
            ..Query::default()
        }
    }

    /// Parse the protocol JSON shape (see module docs). Unknown ops,
    /// non-string attrs and malformed clauses are errors — a filter
    /// that silently matched nothing would read as "no such objects".
    pub fn from_json(j: &Json) -> Result<Query, String> {
        let mut q = Query::all();
        if let Some(d) = j.get("domain") {
            q.domain = Some(d.as_str().ok_or("'domain' must be a string")?.to_owned());
        }
        if let Some(w) = j.get("where") {
            for clause in w.as_arr().ok_or("'where' must be an array")? {
                let attr = clause
                    .get("attr")
                    .and_then(Json::as_str)
                    .ok_or("filter clause missing string 'attr'")?;
                let op = match clause.get("op") {
                    None => FilterOp::Eq,
                    Some(o) => {
                        let name = o.as_str().ok_or("filter 'op' must be a string")?;
                        FilterOp::by_name(name)
                            .ok_or("filter 'op' must be one of eq|contains|prefix")?
                    }
                };
                let value = clause
                    .get("value")
                    .and_then(Json::as_str)
                    .ok_or("filter clause missing string 'value'")?;
                q.filters.push(Filter {
                    attr: attr.to_owned(),
                    op,
                    value: normalize_value(value),
                });
            }
        }
        if let Some(s) = j.get("select") {
            for attr in s.as_arr().ok_or("'select' must be an array")? {
                q.select.push(
                    attr.as_str()
                        .ok_or("'select' entries must be strings")?
                        .to_owned(),
                );
            }
        }
        if let Some(c) = j.get("cursor") {
            q.cursor = Some(c.as_str().ok_or("'cursor' must be a string")?.to_owned());
        }
        if let Some(l) = j.get("limit") {
            let n = l
                .as_usize()
                .ok_or("'limit' must be a non-negative integer")?;
            q.limit = n.clamp(1, MAX_LIMIT);
        }
        Ok(q)
    }

    /// Does an instance satisfy every predicate?
    pub fn matches(&self, instance: &Instance) -> bool {
        self.filters.iter().all(|f| f.matches(instance))
    }
}

/// One page of results.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Matching records, identity-key order.
    pub hits: Vec<ObjectRecord>,
    /// Cursor for the next page; `None` when this page was not full
    /// (the scan reached the end of the key space).
    pub next_cursor: Option<String>,
    /// Records examined to produce the page (filter selectivity /
    /// cost signal, surfaced in the `objstore.query` span).
    pub scanned: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concert(artist: &str, theater: &str) -> Instance {
        Instance::Tuple {
            name: "concert".into(),
            fields: vec![
                Instance::atomic("artist", artist),
                Instance::atomic("theater", theater),
            ],
        }
    }

    #[test]
    fn predicates_compare_normalized() {
        let inst = concert("METALLICA", "Madison Square Garden");
        let q = Query::from_json(
            &Json::parse(
                r#"{"where":[{"attr":"artist","value":"  metallica. "},
                             {"attr":"theater","op":"contains","value":"Square"},
                             {"attr":"theater","op":"prefix","value":"madison"}]}"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert!(q.matches(&inst));
        assert!(!q.matches(&concert("Muse", "Madison Square Garden")));
    }

    #[test]
    fn conjunction_and_exists_semantics() {
        let book = Instance::Tuple {
            name: "book".into(),
            fields: vec![
                Instance::atomic("title", "Emma"),
                Instance::Set(vec![
                    Instance::atomic("author", "Jane Austen"),
                    Instance::atomic("author", "Fiona Stafford"),
                ]),
            ],
        };
        let hit = Filter {
            attr: "author".into(),
            op: FilterOp::Eq,
            value: "fiona stafford".into(),
        };
        assert!(hit.matches(&book), "any set member can satisfy");
        let q = Query {
            filters: vec![
                hit,
                Filter {
                    attr: "title".into(),
                    op: FilterOp::Eq,
                    value: "persuasion".into(),
                },
            ],
            ..Query::all()
        };
        assert!(!q.matches(&book), "every clause must hold");
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            r#"{"where":[{"attr":"a","op":"like","value":"x"}]}"#,
            r#"{"where":[{"value":"x"}]}"#,
            r#"{"where":{"attr":"a"}}"#,
            r#"{"select":[1]}"#,
            r#"{"limit":"ten"}"#,
            r#"{"domain":7}"#,
        ] {
            assert!(
                Query::from_json(&Json::parse(bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn limits_clamp_and_default() {
        let q = Query::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(q.limit, DEFAULT_LIMIT);
        let q = Query::from_json(&Json::parse(r#"{"limit":0}"#).unwrap()).unwrap();
        assert_eq!(q.limit, 1);
        let q = Query::from_json(&Json::parse(r#"{"limit":100000}"#).unwrap()).unwrap();
        assert_eq!(q.limit, MAX_LIMIT);
    }
}
