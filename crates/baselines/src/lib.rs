//! # objectrunner-baselines
//!
//! Clean-room reimplementations of the two systems the paper compares
//! against (§IV-B2):
//!
//! * [`exalg`] — **ExAlg** (Arasu & Garcia-Molina, SIGMOD 2003):
//!   equivalence classes over occurrence vectors with structural role
//!   differentiation. The paper notes ObjectRunner "adopts an
//!   approach that is similar in style to the ExAlg algorithm"; our
//!   baseline accordingly drives the same class machinery with every
//!   annotation-driven mechanism disabled — no annotated-word guard,
//!   no conflict splits, no SOD matching or abort — and extracts *all*
//!   data fields of the inferred template.
//! * [`roadrunner`] — **RoadRunner** (Crescenzi, Mecca & Merialdo,
//!   VLDB 2001): ACME-style match/mismatch wrapper refinement
//!   producing a union-free regular expression with `#PCDATA` fields,
//!   optionals and iterators.
//!
//! Both produce [`FlatRecord`]s — untyped field tuples — which the
//! evaluation crate aligns against the golden standard exactly as the
//! paper's authors did manually.

pub mod exalg;
pub mod roadrunner;

/// One extracted record: values per (positional, untyped) field.
/// A field may hold several values (repeated sub-regions).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlatRecord {
    pub fields: Vec<Vec<String>>,
}

impl FlatRecord {
    /// Non-empty field values flattened to `(field_index, value)`.
    pub fn entries(&self) -> impl Iterator<Item = (usize, &str)> {
        self.fields
            .iter()
            .enumerate()
            .flat_map(|(i, vs)| vs.iter().map(move |v| (i, v.as_str())))
    }

    /// True when every field is empty.
    pub fn is_empty(&self) -> bool {
        self.fields.iter().all(Vec::is_empty)
    }
}
