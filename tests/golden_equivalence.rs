//! End-to-end equivalence guard for the interning refactor.
//!
//! The snapshots under `tests/goldens/` were recorded by running the
//! *pre-interning* (string-keyed) pipeline over the deterministic
//! five-domain generated corpus. The test re-runs the current pipeline
//! on the identical corpus and requires byte-identical extraction
//! output, so any change to token/role/path identity that alters what
//! gets extracted fails loudly.
//!
//! Re-record (only when an intentional behavior change is reviewed):
//! `BLESS_GOLDENS=1 cargo test --test golden_equivalence`.

use objectrunner::core::pipeline::{Pipeline, PipelineConfig};
use objectrunner::core::sample::SampleConfig;
use objectrunner::webgen::{generate_site, knowledge, Domain, PageKind, SiteSpec};
use std::path::PathBuf;

fn golden_path(domain: Domain) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{}.txt", domain.name()))
}

/// Deterministic corpus: same specs as the end-to-end precision test.
fn corpus(domain: Domain, index: usize) -> Vec<String> {
    let spec = SiteSpec::clean(
        &format!("golden-{}", domain.name()),
        domain,
        PageKind::List,
        15,
        17_000 + index as u64,
    );
    generate_site(&spec).pages
}

fn render_extraction(domain: Domain, pages: &[String]) -> String {
    let pipeline = Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2))
        .with_config(PipelineConfig {
            sample: SampleConfig {
                sample_size: 12,
                ..SampleConfig::default()
            },
            ..PipelineConfig::default()
        });
    let outcome = pipeline
        .run_on_html(pages)
        .unwrap_or_else(|e| panic!("{} failed to wrap: {e}", domain.name()));
    // Sort rendered instances so the comparison pins extraction
    // *content*, not incidental page-scan ordering.
    let mut lines: Vec<String> = outcome.objects.iter().map(|o| o.to_string()).collect();
    lines.sort_unstable();
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[test]
fn interned_pipeline_matches_pre_refactor_goldens() {
    let bless = std::env::var_os("BLESS_GOLDENS").is_some();
    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        let pages = corpus(domain, i);
        let rendered = render_extraction(domain, &pages);
        let path = golden_path(domain);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        assert_eq!(
            rendered,
            golden,
            "{}: extraction diverged from the pre-refactor snapshot",
            domain.name()
        );
    }
}
