//! Serving-layer observability, through the protocol: trace ids echoed
//! in every response, fake-clock uptime/idle reporting, the status
//! `metrics` section, and the `trace` command's span trees.

use objectrunner_obs::{Clock, Obs, DEFAULT_SPAN_CAPACITY};
use objectrunner_serve::{ServeConfig, Service};
use objectrunner_store::Json;
use objectrunner_webgen::{generate_site, Domain, PageKind, SiteSpec};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("objectrunner-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn config(store_dir: PathBuf) -> ServeConfig {
    ServeConfig {
        store_dir,
        threads: Some(2),
        ..ServeConfig::default()
    }
}

fn request(cmd: &str, source: &str, domain: Option<&str>, pages: &[String]) -> String {
    let mut fields = vec![
        ("cmd".to_owned(), Json::str(cmd)),
        ("source".to_owned(), Json::str(source)),
    ];
    if let Some(d) = domain {
        fields.push(("domain".to_owned(), Json::str(d)));
    }
    fields.push((
        "pages".to_owned(),
        Json::Arr(pages.iter().map(Json::str).collect()),
    ));
    Json::Obj(fields).render()
}

fn respond(service: &mut Service, line: &str) -> Json {
    let raw = service.handle_line(line);
    let json = Json::parse(&raw).expect("responses are valid JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {raw}"
    );
    json
}

fn pages(name: &str, seed: u64) -> Vec<String> {
    let spec = SiteSpec::clean(name, Domain::Books, PageKind::List, 10, seed);
    generate_site(&spec).pages
}

#[test]
fn every_response_echoes_a_fresh_trace_id() {
    let dir = scratch_dir("trace-echo");
    let mut service = Service::new(config(dir.clone()));
    let pages = pages("trace-books", 18_100);

    let induce = respond(
        &mut service,
        &request("induce", "trace-books", Some("books"), &pages),
    );
    let extract = respond(
        &mut service,
        &request("extract", "trace-books", None, &pages),
    );
    let status = respond(&mut service, "{\"cmd\":\"status\"}");
    // Error responses carry a trace id too.
    let error = Json::parse(&service.handle_line("{\"cmd\":\"frobnicate\"}")).unwrap();

    let ids: Vec<i64> = [&induce, &extract, &status, &error]
        .iter()
        .map(|r| {
            r.get("trace")
                .and_then(Json::as_i64)
                .expect("every response has a trace id")
        })
        .collect();
    for pair in ids.windows(2) {
        assert!(pair[0] < pair[1], "trace ids increase per request: {ids:?}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_reports_uptime_and_idle_from_the_injected_clock() {
    let dir = scratch_dir("fake-clock");
    let (clock, fake) = Clock::fake();
    fake.set_wall_unix_micros(1_700_000_000_000_000);
    let obs = Obs::with_clock_and_capacity(clock.clone(), DEFAULT_SPAN_CAPACITY);
    let mut service = Service::with_observability(config(dir.clone()), obs, clock);
    let pages = pages("clock-books", 18_102);

    fake.advance_micros(2_000_000); // daemon idles 2s before the first request
    respond(
        &mut service,
        &request("induce", "clock-books", Some("books"), &pages),
    );
    let induce_wall = 1_700_000_000_000_000 + 2_000_000;
    fake.advance_micros(5_000_000); // source idles 5s after induction

    let status = respond(&mut service, "{\"cmd\":\"status\"}");
    assert_eq!(
        status.get("uptime_micros").and_then(Json::as_i64),
        Some(7_000_000),
        "uptime spans construction to now"
    );
    let sources = status.get("sources").and_then(Json::as_arr).unwrap();
    assert_eq!(sources.len(), 1);
    assert_eq!(
        sources[0]
            .get("last_activity_unix_micros")
            .and_then(Json::as_i64),
        Some(induce_wall)
    );
    assert_eq!(
        sources[0].get("idle_micros").and_then(Json::as_i64),
        Some(5_000_000)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_metrics_section_reflects_serving_activity() {
    let dir = scratch_dir("metrics");
    let mut service = Service::new(config(dir.clone()));
    let pages = pages("metrics-books", 18_104);

    respond(
        &mut service,
        &request("induce", "metrics-books", Some("books"), &pages),
    );
    respond(
        &mut service,
        &request("extract", "metrics-books", None, &pages),
    );
    let status = respond(&mut service, "{\"cmd\":\"status\"}");
    let metrics = status.get("metrics").expect("status has a metrics section");

    let latency = metrics
        .get("extract_latency_micros")
        .and_then(|m| m.get("books"))
        .expect("per-domain latency histogram");
    assert_eq!(latency.get("count").and_then(Json::as_i64), Some(1));

    let drift = metrics
        .get("drift_score_milli")
        .and_then(|m| m.get("books"))
        .expect("per-domain drift histogram");
    assert_eq!(
        drift.get("count").and_then(Json::as_i64),
        Some(pages.len() as i64),
        "one drift sample per extracted page"
    );

    assert_eq!(
        metrics
            .get("revisions")
            .and_then(|r| r.get("metrics-books"))
            .and_then(Json::as_i64),
        Some(1)
    );
    let memo = metrics.get("annotation_memo").expect("memo stats");
    let hits = memo.get("hits").and_then(Json::as_i64).unwrap();
    let misses = memo.get("misses").and_then(Json::as_i64).unwrap();
    assert!(hits + misses > 0, "induction exercised the annotation memo");
    let rate = memo.get("hit_rate").and_then(Json::as_f64).unwrap();
    assert!((0.0..=1.0).contains(&rate));

    let requests = metrics.get("requests").expect("request counters");
    assert_eq!(requests.get("induce").and_then(Json::as_i64), Some(1));
    assert_eq!(requests.get("extract").and_then(Json::as_i64), Some(1));
    assert_eq!(metrics.get("reinductions").and_then(Json::as_i64), Some(0));

    // The cached path never ran induction stages: the wrap-stage
    // metric exists from the induce request only.
    let snapshot = service.obs().snapshot();
    assert_eq!(
        snapshot.counter("objectrunner.core.pipeline.extract_only_runs"),
        1
    );
    assert_eq!(
        snapshot.counter("objectrunner.core.pipeline.induce_runs"),
        1
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_command_returns_stitched_span_trees() {
    let dir = scratch_dir("trace-cmd");
    let mut service = Service::new(config(dir.clone()));
    let pages = pages("spans-books", 18_106);

    respond(
        &mut service,
        &request("induce", "spans-books", Some("books"), &pages),
    );
    let extract = respond(
        &mut service,
        &request("extract", "spans-books", None, &pages),
    );
    let extract_trace = extract.get("trace").and_then(Json::as_i64).unwrap();

    let dump = respond(&mut service, "{\"cmd\":\"trace\",\"limit\":2}");
    assert_eq!(dump.get("enabled").and_then(Json::as_bool), Some(true));
    let spans = dump.get("spans").and_then(Json::as_arr).unwrap();
    assert!(!spans.is_empty());

    let find = |name: &str| {
        spans
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
            .unwrap_or_else(|| panic!("span '{name}' in dump"))
    };
    // The request span carries the echoed trace id…
    let serve_span = find("serve.extract");
    assert_eq!(
        serve_span.get("trace").and_then(Json::as_i64),
        Some(extract_trace)
    );
    // …and the pipeline's own spans are stitched underneath it.
    let pipeline_span = find("pipeline.extract");
    assert_eq!(
        pipeline_span.get("trace").and_then(Json::as_i64),
        Some(extract_trace)
    );
    assert_eq!(
        pipeline_span.get("parent").and_then(Json::as_i64),
        serve_span.get("id").and_then(Json::as_i64)
    );
    // The induce request's pipeline root rides along under limit=2.
    find("serve.induce");
    find("pipeline.induce");
    find("stage.wrap");

    let _ = std::fs::remove_dir_all(&dir);
}
