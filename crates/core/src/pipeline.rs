//! The end-to-end ObjectRunner pipeline.
//!
//! Page cleaning → visual simplification to the main block →
//! annotation + sample selection (Algorithm 1) → wrapper generation
//! (Algorithm 2) with the §IV self-validation loop ("when necessary,
//! we variate the parameters of the wrapping algorithm and re-execute
//! it … by variating the support between 3 and 5 pages") → extraction
//! from all pages.

use crate::annotate::AnnotatedPage;
use crate::eqclass::EqConfig;
use crate::roles::DiffConfig;
use crate::sample::{select_sample, SampleConfig, SampleError, SampleStrategy};
use crate::wrapper::{generate_wrapper, Wrapper, WrapperError};
use objectrunner_html::{clean_document, CleanOptions, Document};
use objectrunner_knowledge::recognizer::RecognizerSet;
use objectrunner_segment::{select_main_block, simplify_to_main_block, LayoutOptions};
use objectrunner_sod::{Instance, Sod};
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Sampling parameters (size k, α threshold).
    pub sample: SampleConfig,
    /// How the sample is chosen (Table II's comparison knob).
    pub strategy: SampleStrategy,
    /// Support values tried by the self-validation loop (inclusive).
    pub support_range: (usize, usize),
    /// Stop the loop early once a wrapper reaches this quality.
    pub quality_threshold: f64,
    /// Apply the VIPS-style main-block simplification.
    pub use_main_block: bool,
    /// HTML cleaning options.
    pub clean: CleanOptions,
    /// Exclude annotated data words from template classes (the
    /// ObjectRunner guard; baselines turn this off).
    pub annotations_guard: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            sample: SampleConfig::default(),
            strategy: SampleStrategy::SodBased,
            support_range: (3, 5),
            quality_threshold: 0.9,
            use_main_block: true,
            clean: CleanOptions::default(),
            annotations_guard: true,
        }
    }
}

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// The source was discarded during sampling (§III-E).
    Sample(SampleError),
    /// No support value produced a wrapper.
    Wrapper(WrapperError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Sample(e) => write!(f, "sampling: {e}"),
            PipelineError::Wrapper(e) => write!(f, "wrapper generation: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Run statistics.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    pub pages: usize,
    pub sample_pages: usize,
    pub support_used: usize,
    pub conflict_splits: usize,
    pub rounds: usize,
    pub reruns: usize,
    pub wrapping_micros: u128,
    pub extraction_micros: u128,
}

/// Pipeline output.
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The extracted objects, all pages concatenated.
    pub objects: Vec<Instance>,
    /// The wrapper that produced them.
    pub wrapper: Wrapper,
    pub stats: PipelineStats,
}

/// The ObjectRunner engine for one source.
#[derive(Debug, Clone)]
pub struct Pipeline {
    sod: Sod,
    recognizers: RecognizerSet,
    config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline with default configuration.
    pub fn new(sod: Sod, recognizers: RecognizerSet) -> Pipeline {
        Pipeline {
            sod,
            recognizers,
            config: PipelineConfig::default(),
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: PipelineConfig) -> Pipeline {
        self.config = config;
        self
    }

    /// The SOD this pipeline targets.
    pub fn sod(&self) -> &Sod {
        &self.sod
    }

    /// Run on raw HTML pages.
    pub fn run_on_html<S: AsRef<str>>(
        &self,
        pages: &[S],
    ) -> Result<PipelineOutcome, PipelineError> {
        let docs: Vec<Document> = pages
            .iter()
            .map(|h| objectrunner_html::parse(h.as_ref()))
            .collect();
        self.run_on_documents(docs)
    }

    /// Run on already-parsed documents.
    pub fn run_on_documents(
        &self,
        mut docs: Vec<Document>,
    ) -> Result<PipelineOutcome, PipelineError> {
        // 1. Cleaning.
        for doc in docs.iter_mut() {
            clean_document(doc, &self.config.clean);
        }
        // 2. Main-block simplification.
        if self.config.use_main_block {
            let opts = LayoutOptions::default();
            if let Some(choice) = select_main_block(&docs, &opts) {
                for doc in docs.iter_mut() {
                    let _ = simplify_to_main_block(doc, &choice);
                }
            }
        }

        let wrap_start = Instant::now();
        // 3. Annotation + sampling.
        let sample = select_sample(
            docs.clone(),
            &self.recognizers,
            &self.sod,
            &self.config.sample,
            self.config.strategy,
        )
        .map_err(PipelineError::Sample)?;

        // 4. Wrapper generation with the self-validation loop.
        let (wrapper, reruns) = self.best_wrapper(&sample)?;
        let wrapping_micros = wrap_start.elapsed().as_micros();

        // 5. Extraction from all pages.
        let extract_start = Instant::now();
        let objects = wrapper.extract_source(&docs);
        let extraction_micros = extract_start.elapsed().as_micros();

        let stats = PipelineStats {
            pages: docs.len(),
            sample_pages: sample.len(),
            support_used: wrapper.support,
            conflict_splits: wrapper.conflict_splits,
            rounds: wrapper.rounds,
            reruns,
            wrapping_micros,
            extraction_micros,
        };
        Ok(PipelineOutcome {
            objects,
            wrapper,
            stats,
        })
    }

    /// §IV "automatic variation of parameters": run wrapper generation
    /// for each support value; keep the best-quality wrapper; stop
    /// early when the quality threshold is reached.
    fn best_wrapper(&self, sample: &[AnnotatedPage]) -> Result<(Wrapper, usize), PipelineError> {
        let (lo, hi) = self.config.support_range;
        let mut best: Option<Wrapper> = None;
        let mut last_err: Option<WrapperError> = None;
        let mut reruns = 0usize;
        for support in lo..=hi.max(lo) {
            let diff_cfg = DiffConfig {
                eq: EqConfig {
                    min_support: support,
                    annotations_guard: self.config.annotations_guard,
                    ..EqConfig::default()
                },
                ..DiffConfig::default()
            };
            match generate_wrapper(sample, &self.sod, &diff_cfg) {
                Ok(w) => {
                    let good_enough = w.quality >= self.config.quality_threshold;
                    if best.as_ref().map(|b| w.quality > b.quality).unwrap_or(true) {
                        best = Some(w);
                    }
                    if good_enough {
                        break;
                    }
                }
                Err(e) => last_err = Some(e),
            }
            reruns += 1;
        }
        match best {
            Some(w) => Ok((w, reruns.saturating_sub(1))),
            None => Err(PipelineError::Wrapper(
                last_err.unwrap_or(WrapperError::EmptySample),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_knowledge::gazetteer::Gazetteer;
    use objectrunner_knowledge::recognizer::Recognizer;
    use objectrunner_sod::{Multiplicity, SodBuilder};

    fn concert_sod() -> Sod {
        SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .build()
    }

    fn recognizers(artists: &[&str]) -> RecognizerSet {
        let mut g = Gazetteer::new();
        for a in artists {
            g.insert(a, 0.9, 5.0);
        }
        let mut set = RecognizerSet::new();
        set.insert("artist", Recognizer::dictionary(g));
        set.insert("date", Recognizer::predefined_date());
        set
    }

    fn source_pages(n_pages: usize) -> Vec<String> {
        (0..n_pages)
            .map(|p| {
                let recs: String = (0..(p % 3 + 1))
                    .map(|i| {
                        format!(
                            "<li><div>Band{p}x{i}</div><div>May {}, 2010</div></li>",
                            i + 1
                        )
                    })
                    .collect();
                format!(
                    "<html><head><title>t</title></head><body>\
                     <div class=\"nav\">home about contact pages</div>\
                     <div class=\"content\"><ul>{recs}</ul></div>\
                     <div class=\"footer\">copyright legal privacy terms</div>\
                     </body></html>"
                )
            })
            .collect()
    }

    #[test]
    fn full_pipeline_extracts_from_synthetic_source() {
        let pages = source_pages(12);
        // Dictionary knows a fifth of the artists (paper: ≥20%).
        let known: Vec<String> = (0..12).step_by(3).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline =
            Pipeline::new(concert_sod(), recognizers(&refs)).with_config(PipelineConfig {
                sample: SampleConfig {
                    sample_size: 8,
                    ..SampleConfig::default()
                },
                ..PipelineConfig::default()
            });
        let outcome = pipeline.run_on_html(&pages).expect("pipeline succeeds");
        // Every record extracted: pages have 1..3 records.
        let expected: usize = (0..12).map(|p| p % 3 + 1).sum();
        assert_eq!(outcome.objects.len(), expected);
        // No nav/footer noise in values.
        for o in &outcome.objects {
            let mut vals = Vec::new();
            o.values_of_type("artist", &mut vals);
            for v in vals {
                assert!(v.starts_with("Band"), "noise extracted: {v}");
            }
        }
        assert_eq!(outcome.stats.pages, 12);
        assert!(outcome.stats.sample_pages <= 8);
    }

    #[test]
    fn discards_irrelevant_source() {
        let pages: Vec<String> = (0..8)
            .map(|i| {
                format!("<html><body><p>weather report number {i} nothing else</p></body></html>")
            })
            .collect();
        let pipeline = Pipeline::new(concert_sod(), recognizers(&["Metallica"]));
        let err = pipeline.run_on_html(&pages).expect_err("discarded");
        assert!(matches!(err, PipelineError::Sample(_)));
    }

    #[test]
    fn random_strategy_also_runs() {
        let pages = source_pages(12);
        let known: Vec<String> = (0..12).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline =
            Pipeline::new(concert_sod(), recognizers(&refs)).with_config(PipelineConfig {
                strategy: SampleStrategy::Random(17),
                sample: SampleConfig {
                    sample_size: 8,
                    ..SampleConfig::default()
                },
                ..PipelineConfig::default()
            });
        let outcome = pipeline.run_on_html(&pages).expect("runs");
        assert!(!outcome.objects.is_empty());
    }

    #[test]
    fn wrapping_time_is_recorded() {
        let pages = source_pages(10);
        let known: Vec<String> = (0..10).map(|p| format!("Band{p}x0")).collect();
        let refs: Vec<&str> = known.iter().map(String::as_str).collect();
        let pipeline = Pipeline::new(concert_sod(), recognizers(&refs));
        let outcome = pipeline.run_on_html(&pages).expect("runs");
        assert!(outcome.stats.wrapping_micros > 0);
    }
}
