//! Instance-driven type specification (paper §VI, future work):
//!
//! "We are also considering the possibility of specifying atomic types
//! by giving only some (few) instances. These will then be used by the
//! system to interact with YAGO and to find the more appropriate
//! concepts and instances (in the style of Google sets)."
//!
//! Given a handful of example instances, [`concepts_from_examples`]
//! scores ontology classes by how well their semantic neighborhoods
//! cover the examples and [`recognizer_from_examples`] builds a
//! dictionary recognizer from the winning concept(s).

use crate::gazetteer::{normalize, Gazetteer};
use crate::ontology::{ClassId, Ontology};

/// A concept candidate for a set of example instances.
#[derive(Debug, Clone)]
pub struct ConceptMatch {
    pub class: ClassId,
    /// Class display name.
    pub name: String,
    /// Fraction of the examples found in the class's neighborhood
    /// dictionary.
    pub coverage: f64,
    /// Specificity: examples matched relative to the dictionary size —
    /// a tiny focused class beats `Person`-like catch-alls.
    pub specificity: f64,
    /// Combined ranking score.
    pub score: f64,
}

/// Neighborhood radius used when expanding candidate classes.
const RADIUS: usize = 1;

/// Rank ontology classes by how well they explain the examples.
///
/// Returns candidates with coverage > 0, best first.
pub fn concepts_from_examples(ontology: &Ontology, examples: &[&str]) -> Vec<ConceptMatch> {
    if examples.is_empty() {
        return Vec::new();
    }
    let normalized: Vec<String> = examples.iter().map(|e| normalize(e).into_owned()).collect();
    let mut out = Vec::new();
    for id in ontology.class_ids() {
        let dictionary = ontology.gazetteer_for(ontology.class_name(id), RADIUS);
        if dictionary.is_empty() {
            continue;
        }
        let hits = normalized.iter().filter(|e| dictionary.contains(e)).count();
        if hits == 0 {
            continue;
        }
        let coverage = hits as f64 / normalized.len() as f64;
        let specificity = hits as f64 / dictionary.len() as f64;
        // Coverage dominates; specificity breaks catch-all ties.
        let score = coverage + specificity.min(1.0) * 0.5;
        out.push(ConceptMatch {
            class: id,
            name: ontology.class_name(id).to_owned(),
            coverage,
            specificity,
            score,
        });
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

/// Build a dictionary recognizer from a few example instances: expand
/// the best-matching concept's neighborhood and seed it with the
/// examples themselves (which are trusted at full confidence).
///
/// Returns the gazetteer and the chosen concepts, best first.
pub fn recognizer_from_examples(
    ontology: &Ontology,
    examples: &[&str],
) -> (Gazetteer, Vec<ConceptMatch>) {
    let concepts = concepts_from_examples(ontology, examples);
    let mut dictionary = Gazetteer::new();
    // Take the best concept plus any other concept within 10% of its
    // score (sibling classes like Band + Musician both apply).
    if let Some(best) = concepts.first() {
        let floor = best.score * 0.9;
        for concept in concepts.iter().take_while(|c| c.score >= floor) {
            dictionary.merge(&ontology.gazetteer_for(&concept.name, RADIUS));
        }
    }
    for example in examples {
        dictionary.insert(example, 1.0, 1.0);
    }
    (dictionary, concepts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn music_ontology() -> Ontology {
        let mut o = Ontology::new();
        let artist = o.add_class("Artist");
        let band = o.add_class("Band");
        let writer = o.add_class("Writer");
        let person = o.add_class("Person");
        o.add_related(band, artist);
        o.add_subclass(writer, person);
        for b in ["Metallica", "Coldplay", "Muse", "Radiohead"] {
            o.add_instance(band, b, 0.95, 5.0);
        }
        for w in ["Jane Austen", "Franz Kafka", "Iris Murdoch"] {
            o.add_instance(writer, w, 0.9, 4.0);
        }
        for p in ["Alan Turing", "Ada Lovelace"] {
            o.add_instance(person, p, 0.99, 3.0);
        }
        o
    }

    #[test]
    fn finds_the_band_concept_from_band_examples() {
        let o = music_ontology();
        let concepts = concepts_from_examples(&o, &["Metallica", "Muse"]);
        assert!(!concepts.is_empty());
        // Band (direct) and Artist (via relatedness) both cover; the
        // winner must cover both examples fully.
        assert!((concepts[0].coverage - 1.0).abs() < 1e-9);
        assert!(
            concepts[0].name == "Band" || concepts[0].name == "Artist",
            "got {}",
            concepts[0].name
        );
    }

    #[test]
    fn writers_beat_bands_for_writer_examples() {
        let o = music_ontology();
        let concepts = concepts_from_examples(&o, &["Jane Austen", "Franz Kafka"]);
        let top = &concepts[0];
        assert!(
            top.name == "Writer" || top.name == "Person",
            "got {}",
            top.name
        );
        assert!(!concepts
            .iter()
            .any(|c| c.name == "Band" && c.coverage > 0.0));
    }

    #[test]
    fn recognizer_expands_beyond_the_examples() {
        let o = music_ontology();
        let (dictionary, concepts) = recognizer_from_examples(&o, &["Metallica", "Coldplay"]);
        assert!(!concepts.is_empty());
        // The expansion pulls in unseen instances of the concept.
        assert!(dictionary.contains("Radiohead"));
        assert!(dictionary.contains("Muse"));
        // The examples themselves are trusted fully.
        assert!((dictionary.get("Metallica").expect("entry").confidence - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_examples_yield_only_themselves() {
        let o = music_ontology();
        let (dictionary, concepts) = recognizer_from_examples(&o, &["Zorblax 9000"]);
        assert!(concepts.is_empty());
        assert_eq!(dictionary.len(), 1);
        assert!(dictionary.contains("Zorblax 9000"));
    }

    #[test]
    fn empty_examples_yield_nothing() {
        let o = music_ontology();
        assert!(concepts_from_examples(&o, &[]).is_empty());
    }

    #[test]
    fn specificity_prefers_focused_classes() {
        // Person (via subclass edges) covers writers too, but Writer
        // is smaller and must win on specificity.
        let o = music_ontology();
        let concepts = concepts_from_examples(&o, &["Jane Austen", "Franz Kafka", "Iris Murdoch"]);
        let writer = concepts
            .iter()
            .find(|c| c.name == "Writer")
            .expect("writer");
        let person = concepts.iter().find(|c| c.name == "Person");
        if let Some(person) = person {
            assert!(writer.specificity >= person.specificity);
        }
    }
}
