//! Schema checking and baseline diffing for exported observability
//! artifacts, used by the `obs_check` bin in the `ci.sh obs-smoke`
//! stage.
//!
//! This crate is the dependency-free leaf of the workspace (store and
//! core depend on it), so it carries its own minimal JSON parser
//! rather than reaching for `store::json`.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers are `f64`, which is exact for every
/// integer the exporters emit (< 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            _ => {
                // Copy the full UTF-8 sequence.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("unexpected end of string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Counts of each event kind found in a valid events JSONL file.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct EventsSummary {
    pub spans: usize,
    pub counters: usize,
    pub gauges: usize,
    pub histograms: usize,
}

/// Validate an events JSONL document line by line: every line must
/// parse, carry a known `type`, and have that type's required fields
/// with the right JSON types. Returns per-kind counts.
pub fn validate_events_jsonl(text: &str) -> Result<EventsSummary, String> {
    let mut summary = EventsSummary::default();
    for (lineno, line) in text.lines().enumerate() {
        let ctx = |msg: &str| format!("line {}: {msg}", lineno + 1);
        if line.trim().is_empty() {
            return Err(ctx("blank line"));
        }
        let value = parse_json(line).map_err(|e| ctx(&e))?;
        let kind = value
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing string field `type`"))?;
        match kind {
            "span" => {
                for field in ["trace", "id", "parent", "start_us", "dur_us", "cpu_us"] {
                    value
                        .get(field)
                        .and_then(JsonValue::as_num)
                        .ok_or_else(|| ctx(&format!("span missing numeric `{field}`")))?;
                }
                value
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ctx("span missing string `name`"))?;
                value
                    .get("attrs")
                    .and_then(JsonValue::as_obj)
                    .ok_or_else(|| ctx("span missing object `attrs`"))?;
                summary.spans += 1;
            }
            "counter" | "gauge" => {
                value
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ctx("metric missing string `name`"))?;
                value
                    .get("value")
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| ctx("metric missing numeric `value`"))?;
                if kind == "counter" {
                    summary.counters += 1;
                } else {
                    summary.gauges += 1;
                }
            }
            "histogram" => {
                value
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ctx("histogram missing string `name`"))?;
                let bounds = value
                    .get("bounds")
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| ctx("histogram missing array `bounds`"))?;
                let counts = value
                    .get("counts")
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| ctx("histogram missing array `counts`"))?;
                if counts.len() != bounds.len() + 1 {
                    return Err(ctx("histogram counts must be bounds + overflow slot"));
                }
                for field in ["sum", "count"] {
                    value
                        .get(field)
                        .and_then(JsonValue::as_num)
                        .ok_or_else(|| ctx(&format!("histogram missing numeric `{field}`")))?;
                }
                summary.histograms += 1;
            }
            other => return Err(ctx(&format!("unknown event type `{other}`"))),
        }
    }
    Ok(summary)
}

/// Validate a Chrome `trace_event` JSON document: the object form with
/// a `traceEvents` array of complete (`"ph":"X"`) events, each with
/// the fields Perfetto requires. Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let value = parse_json(text)?;
    let events = value
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("missing array `traceEvents`")?;
    for (i, event) in events.iter().enumerate() {
        let ctx = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let ph = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ctx("missing string `ph`"))?;
        if ph != "X" {
            return Err(ctx(&format!("expected complete event (ph=X), got `{ph}`")));
        }
        for field in ["name", "cat"] {
            event
                .get(field)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| ctx(&format!("missing string `{field}`")))?;
        }
        for field in ["ts", "dur", "pid", "tid"] {
            event
                .get(field)
                .and_then(JsonValue::as_num)
                .ok_or_else(|| ctx(&format!("missing numeric `{field}`")))?;
        }
        event
            .get("args")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| ctx("missing object `args`"))?;
    }
    Ok(events.len())
}

/// Metric-name substrings whose values are machine- or
/// scheduling-dependent and therefore excluded from baseline diffs by
/// default: timings, latency/drift distributions, and the annotation
/// cache hit/miss split (the deterministic `cache_lookups` total is
/// still compared).
pub const DEFAULT_SKIP_SUBSTRINGS: &[&str] = &[
    "micros",
    "latency",
    "drift",
    "cache_hits",
    "cache_misses",
    "uptime",
];

fn skipped(name: &str, skip: &[String]) -> bool {
    skip.iter().any(|s| name.contains(s.as_str()))
}

/// Diff two snapshot JSON documents (the [`crate::MetricsSnapshot`]
/// `to_json` shape). Counters and gauges must match within
/// `tolerance` (relative, e.g. `0.05` = ±5%); histogram total counts
/// likewise. Names containing any `skip` substring are ignored, as are
/// keys only one side has when skipped. Returns human-readable
/// mismatch lines — empty means the snapshots agree.
pub fn diff_snapshots(
    baseline: &str,
    current: &str,
    skip: &[String],
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let base = parse_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = parse_json(current).map_err(|e| format!("current: {e}"))?;
    let mut mismatches = Vec::new();

    for section in ["counters", "gauges"] {
        let base_map = base
            .get(section)
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| format!("baseline: missing object `{section}`"))?;
        let cur_map = cur
            .get(section)
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| format!("current: missing object `{section}`"))?;
        for (name, base_val) in base_map {
            if skipped(name, skip) {
                continue;
            }
            let base_num = base_val
                .as_num()
                .ok_or_else(|| format!("baseline: `{name}` is not a number"))?;
            match cur_map.iter().find(|(k, _)| k == name) {
                None => mismatches.push(format!("{section}: `{name}` missing from current")),
                Some((_, v)) => {
                    let cur_num = v
                        .as_num()
                        .ok_or_else(|| format!("current: `{name}` is not a number"))?;
                    if !within(base_num, cur_num, tolerance) {
                        let mut line = String::new();
                        let _ = write!(
                            line,
                            "{section}: `{name}` baseline {base_num} vs current {cur_num}"
                        );
                        if tolerance > 0.0 {
                            let _ = write!(line, " (tolerance {tolerance})");
                        }
                        mismatches.push(line);
                    }
                }
            }
        }
        for (name, _) in cur_map {
            if skipped(name, skip) {
                continue;
            }
            if !base_map.iter().any(|(k, _)| k == name) {
                mismatches.push(format!(
                    "{section}: `{name}` not in baseline (regenerate results/obs_baseline.json)"
                ));
            }
        }
    }

    let base_hists = base
        .get("histograms")
        .and_then(JsonValue::as_obj)
        .ok_or("baseline: missing object `histograms`")?;
    let cur_hists = cur
        .get("histograms")
        .and_then(JsonValue::as_obj)
        .ok_or("current: missing object `histograms`")?;
    for (name, base_h) in base_hists {
        if skipped(name, skip) {
            continue;
        }
        let base_count = base_h
            .get("count")
            .and_then(JsonValue::as_num)
            .ok_or_else(|| format!("baseline: histogram `{name}` missing count"))?;
        match cur_hists.iter().find(|(k, _)| k == name) {
            None => mismatches.push(format!("histograms: `{name}` missing from current")),
            Some((_, h)) => {
                let cur_count = h
                    .get("count")
                    .and_then(JsonValue::as_num)
                    .ok_or_else(|| format!("current: histogram `{name}` missing count"))?;
                if !within(base_count, cur_count, tolerance) {
                    mismatches.push(format!(
                        "histograms: `{name}` count baseline {base_count} vs current {cur_count}"
                    ));
                }
            }
        }
    }
    Ok(mismatches)
}

fn within(base: f64, cur: f64, tolerance: f64) -> bool {
    if tolerance <= 0.0 {
        return base == cur;
    }
    (cur - base).abs() <= tolerance * base.abs().max(1.0)
}

/// Aggregate report over a parsed events JSONL file (the file-based
/// sibling of [`crate::export::report`], for `obs_check report`).
pub fn report_from_events(text: &str) -> Result<String, String> {
    validate_events_jsonl(text)?;
    let mut by_name: std::collections::BTreeMap<String, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    let mut metric_lines = Vec::new();
    for line in text.lines() {
        let value = parse_json(line)?;
        match value.get("type").and_then(JsonValue::as_str) {
            Some("span") => {
                let name = value.get("name").and_then(JsonValue::as_str).unwrap_or("");
                let dur = value
                    .get("dur_us")
                    .and_then(JsonValue::as_num)
                    .unwrap_or(0.0) as u64;
                let e = by_name.entry(name.to_owned()).or_insert((0, 0, 0));
                e.0 += 1;
                e.1 += dur;
                e.2 = e.2.max(dur);
            }
            Some("counter") | Some("gauge") => {
                let name = value.get("name").and_then(JsonValue::as_str).unwrap_or("");
                let v = value
                    .get("value")
                    .and_then(JsonValue::as_num)
                    .unwrap_or(0.0);
                metric_lines.push(format!("{name:<56} {v:>12}"));
            }
            _ => {}
        }
    }
    let mut out = String::new();
    out.push_str("== spans ==\n");
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>12} {:>10} {:>10}",
        "name", "count", "total_ms", "mean_us", "max_us"
    );
    for (name, (count, total, max)) in &by_name {
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12.3} {:>10.1} {:>10}",
            name,
            count,
            *total as f64 / 1_000.0,
            *total as f64 / *count as f64,
            max
        );
    }
    if !metric_lines.is_empty() {
        out.push_str("\n== metrics ==\n");
        for line in metric_lines {
            out.push_str(&line);
            out.push('\n');
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{chrome_trace, events_jsonl};
    use crate::Obs;

    #[test]
    fn parser_round_trips_exporter_output() {
        let obs = Obs::enabled();
        let mut span = obs.trace("pipeline.induce");
        span.attr_str("domain", "golden-\"quoted\"");
        span.attr_f64("score", 0.5);
        span.finish();
        obs.counter_add("objectrunner.test.c", 9);
        let jsonl = events_jsonl(&obs.spans(), &obs.snapshot());
        let summary = validate_events_jsonl(&jsonl).expect("valid jsonl");
        assert_eq!(summary.spans, 1);
        assert_eq!(summary.counters, 1);
        let first = parse_json(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(
            first
                .get("attrs")
                .and_then(|a| a.get("domain"))
                .and_then(JsonValue::as_str),
            Some("golden-\"quoted\"")
        );
    }

    #[test]
    fn jsonl_validator_rejects_malformed_lines() {
        assert!(validate_events_jsonl("{\"type\":\"span\"}").is_err());
        assert!(validate_events_jsonl("not json").is_err());
        assert!(validate_events_jsonl("{\"type\":\"mystery\",\"name\":\"x\"}").is_err());
        let bad_hist = "{\"type\":\"histogram\",\"name\":\"h\",\"bounds\":[1],\"counts\":[1],\"sum\":0,\"count\":0}";
        assert!(
            validate_events_jsonl(bad_hist).is_err(),
            "counts must include overflow"
        );
    }

    #[test]
    fn chrome_validator_accepts_exporter_output() {
        let obs = Obs::enabled();
        let root = obs.trace("pipeline.induce");
        root.child("stage.parse").finish();
        root.finish();
        let json = chrome_trace(&obs.spans());
        assert_eq!(validate_chrome_trace(&json).expect("valid"), 2);
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"B\"}]}").is_err());
    }

    #[test]
    fn snapshot_diff_respects_skip_and_tolerance() {
        let baseline =
            "{\"counters\":{\"a.pages\":10,\"a.wall_micros\":500},\"gauges\":{},\"histograms\":{}}";
        let same =
            "{\"counters\":{\"a.pages\":10,\"a.wall_micros\":900},\"gauges\":{},\"histograms\":{}}";
        let skip = vec!["micros".to_owned()];
        assert!(diff_snapshots(baseline, same, &skip, 0.0)
            .unwrap()
            .is_empty());

        let drifted =
            "{\"counters\":{\"a.pages\":11,\"a.wall_micros\":500},\"gauges\":{},\"histograms\":{}}";
        let strict = diff_snapshots(baseline, drifted, &skip, 0.0).unwrap();
        assert_eq!(strict.len(), 1);
        assert!(strict[0].contains("a.pages"));
        assert!(diff_snapshots(baseline, drifted, &skip, 0.2)
            .unwrap()
            .is_empty());

        let missing = "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
        let report = diff_snapshots(baseline, missing, &skip, 0.0).unwrap();
        assert_eq!(report.len(), 1);
        assert!(report[0].contains("missing from current"));

        let extra = "{\"counters\":{\"a.pages\":10,\"b.new\":1},\"gauges\":{},\"histograms\":{}}";
        let report = diff_snapshots(baseline, extra, &skip, 0.0).unwrap();
        assert_eq!(report.len(), 1);
        assert!(report[0].contains("not in baseline"));
    }

    #[test]
    fn report_from_events_aggregates_spans() {
        let obs = Obs::enabled();
        obs.trace("pipeline.extract").finish();
        obs.trace("pipeline.extract").finish();
        let jsonl = events_jsonl(&obs.spans(), &obs.snapshot());
        let report = report_from_events(&jsonl).unwrap();
        assert!(report.contains("pipeline.extract"));
        assert!(report.contains("== spans =="));
    }
}
