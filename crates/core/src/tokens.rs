//! Page tokens, roles and dtoken streams (paper §III-C).
//!
//! "A template is inferred from a sample of source pages based on
//! occurrence vectors for page tokens (words or HTML tags) … Hence
//! determining the roles and distinguishing between different roles
//! for tokens becomes crucial in the inference of the implicit
//! schema."
//!
//! A **dtoken** is a (token, role) pair. Roles start out as
//! `(token value, DOM path)` — Algorithm 2 line 1, "tokens having the
//! same value and the same path in the DOM will have the same role" —
//! and are refined by [`crate::roles`]. Both halves of that identity
//! are interned integers ([`PageToken`] wraps [`Symbol`]s, the path is
//! a [`PathId`]), so role interning and every downstream comparison is
//! integer work; the human-readable label is built once per role for
//! diagnostics only.

use crate::annotate::AnnotatedPage;
use objectrunner_html::{node_path_id, token_stream, FxHashMap, NodeId, PageToken, PathId, Symbol};

/// Interned role identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoleId(pub u32);

/// Metadata of one role.
#[derive(Debug, Clone)]
pub struct RoleInfo {
    /// Human-readable label (token + context + refinement suffixes),
    /// for diagnostics only — never used as an identity.
    pub label: String,
    /// The token value shared by every occurrence of this role.
    pub token: PageToken,
    /// The DOM path shared by every occurrence of this role.
    pub path: PathId,
    /// Consistent annotation of the role, when pass C established one.
    pub annotation: Option<Symbol>,
}

/// Role table: interned roles with stable ids.
///
/// Base roles are keyed by `(token, path)`; refined roles (positional
/// and annotation splits) by `(parent role, refinement tag)`. No
/// string round-trips anywhere on the interning path.
#[derive(Debug, Clone, Default)]
pub struct RoleTable {
    infos: Vec<RoleInfo>,
    by_key: FxHashMap<(PageToken, PathId), RoleId>,
    by_refinement: FxHashMap<(RoleId, Symbol), RoleId>,
}

impl RoleTable {
    /// Intern the base role of `(token, path)`, creating it on first
    /// use (Algorithm 2 line 1).
    pub fn intern(&mut self, token: PageToken, path: PathId) -> RoleId {
        if let Some(&id) = self.by_key.get(&(token, path)) {
            return id;
        }
        let id = RoleId(self.infos.len() as u32);
        self.infos.push(RoleInfo {
            label: format!("{}@{}", token.render(), path.render()),
            token,
            path,
            annotation: None,
        });
        self.by_key.insert((token, path), id);
        id
    }

    /// Intern the refinement of `parent` by `tag` (e.g. `#r2o1` for a
    /// positional split, `~r3a:artist` for an annotation split). The
    /// refined role keeps the parent's token and path; the tag joins
    /// its label for diagnostics.
    pub fn refine(&mut self, parent: RoleId, tag: Symbol) -> RoleId {
        if let Some(&id) = self.by_refinement.get(&(parent, tag)) {
            return id;
        }
        let id = RoleId(self.infos.len() as u32);
        let p = &self.infos[parent.0 as usize];
        self.infos.push(RoleInfo {
            label: format!("{}{}", p.label, tag),
            token: p.token,
            path: p.path,
            annotation: None,
        });
        self.by_refinement.insert((parent, tag), id);
        id
    }

    /// Role metadata.
    pub fn info(&self, id: RoleId) -> &RoleInfo {
        &self.infos[id.0 as usize]
    }

    /// Mutable role metadata.
    pub fn info_mut(&mut self, id: RoleId) -> &mut RoleInfo {
        &mut self.infos[id.0 as usize]
    }

    /// Number of roles.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True when no roles have been interned.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }
}

/// One token occurrence on one page.
#[derive(Debug, Clone)]
pub struct Occurrence {
    /// Current role (refined across differentiation rounds).
    pub role: RoleId,
    /// The raw token.
    pub token: PageToken,
    /// DOM node the token came from.
    pub node: NodeId,
    /// DOM path of that node.
    pub path: PathId,
    /// Best annotation of the node, if any (drives role logic).
    pub annotation: Option<Symbol>,
    /// All annotation types on the node ("multiple annotations may be
    /// assigned to a given node") — drives gap histograms.
    pub all_annotations: Vec<Symbol>,
}

impl Occurrence {
    /// Is this a tag token (vs a text word)?
    pub fn is_tag(&self) -> bool {
        self.token.is_tag()
    }
}

/// The dtoken stream of one page.
#[derive(Debug, Clone, Default)]
pub struct PageTokens {
    pub occs: Vec<Occurrence>,
}

/// The dtoken streams of a source sample, sharing one role table.
#[derive(Debug, Clone, Default)]
pub struct SourceTokens {
    pub pages: Vec<PageTokens>,
    pub roles: RoleTable,
}

impl SourceTokens {
    /// Build dtoken streams from annotated sample pages, assigning
    /// initial roles by `(token value, DOM path)`.
    pub fn from_pages(pages: &[AnnotatedPage]) -> SourceTokens {
        let mut source = SourceTokens::default();
        for page in pages {
            let mut pt = PageTokens::default();
            for (token, node) in token_stream(&page.doc, page.doc.root()) {
                let path = node_path_id(&page.doc, node);
                let annotation = page
                    .best_annotation(node)
                    .map(|a| Symbol::intern(&a.type_name));
                let all_annotations = page
                    .annotations_of(node)
                    .iter()
                    .map(|a| Symbol::intern(&a.type_name))
                    .collect();
                let role = source.roles.intern(token, path);
                pt.occs.push(Occurrence {
                    role,
                    token,
                    node,
                    path,
                    annotation,
                    all_annotations,
                });
            }
            source.pages.push(pt);
        }
        source
    }

    /// Occurrence count of each role on each page:
    /// `vectors[role][page]`.
    pub fn occurrence_vectors(&self) -> Vec<Vec<u32>> {
        let mut vectors = vec![vec![0u32; self.pages.len()]; self.roles.len()];
        for (p, page) in self.pages.iter().enumerate() {
            for occ in &page.occs {
                vectors[occ.role.0 as usize][p] += 1;
            }
        }
        vectors
    }

    /// Positions of each role's occurrences per page.
    pub fn positions_of(&self, role: RoleId) -> Vec<Vec<usize>> {
        self.pages
            .iter()
            .map(|page| {
                page.occs
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.role == role)
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect()
    }

    /// Total occurrences of a role across all pages.
    pub fn total_count(&self, role: RoleId) -> usize {
        self.pages
            .iter()
            .map(|p| p.occs.iter().filter(|o| o.role == role).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate_page;
    use objectrunner_html::parse;
    use objectrunner_knowledge::gazetteer::Gazetteer;
    use objectrunner_knowledge::recognizer::{Recognizer, RecognizerSet};

    fn annotated(html: &str) -> AnnotatedPage {
        let mut g = Gazetteer::new();
        g.insert("Metallica", 0.9, 5.0);
        let mut set = RecognizerSet::new();
        set.insert("artist", Recognizer::dictionary(g));
        annotate_page(parse(html), &set)
    }

    #[test]
    fn same_token_same_path_shares_role() {
        let p = annotated("<ul><li>a</li><li>b</li></ul>");
        let src = SourceTokens::from_pages(std::slice::from_ref(&p));
        let occs = &src.pages[0].occs;
        let li_opens: Vec<&Occurrence> = occs
            .iter()
            .filter(|o| o.token == PageToken::Open("li".into()))
            .collect();
        assert_eq!(li_opens.len(), 2);
        assert_eq!(li_opens[0].role, li_opens[1].role);
    }

    #[test]
    fn same_token_different_path_differs() {
        let p = annotated("<div><span>x</span></div><p><span>y</span></p>");
        let src = SourceTokens::from_pages(std::slice::from_ref(&p));
        let spans: Vec<&Occurrence> = src.pages[0]
            .occs
            .iter()
            .filter(|o| o.token == PageToken::Open("span".into()))
            .collect();
        assert_eq!(spans.len(), 2);
        assert_ne!(spans[0].role, spans[1].role);
    }

    #[test]
    fn equal_token_and_path_always_intern_to_the_same_role() {
        // Regression: interning must be keyed on the (token, path)
        // identity itself, not on a formatted label.
        let mut table = RoleTable::default();
        let token = PageToken::Open("div".into());
        let path = PathId::ROOT
            .child(Symbol::intern("body"))
            .child(Symbol::intern("div"));
        let a = table.intern(token, path);
        let b = table.intern(token, path);
        assert_eq!(a, b);
        assert_eq!(table.len(), 1);
        // A different path or token yields a different role.
        let other_path = PathId::ROOT.child(Symbol::intern("body"));
        assert_ne!(table.intern(token, other_path), a);
        assert_ne!(table.intern(PageToken::Close("div".into()), path), a);
    }

    #[test]
    fn refinements_are_stable_and_keep_token_and_path() {
        let mut table = RoleTable::default();
        let token = PageToken::Open("div".into());
        let path = PathId::ROOT.child(Symbol::intern("div"));
        let base = table.intern(token, path);
        let tag = Symbol::intern("#r1o0");
        let r1 = table.refine(base, tag);
        let r2 = table.refine(base, tag);
        assert_eq!(r1, r2);
        assert_ne!(r1, base);
        assert_eq!(table.info(r1).token, token);
        assert_eq!(table.info(r1).path, path);
        assert!(table.info(r1).label.ends_with("#r1o0"));
        // A different tag on the same parent is a different role.
        assert_ne!(table.refine(base, Symbol::intern("#r1o1")), r1);
    }

    #[test]
    fn occurrence_vectors_count_per_page() {
        let p1 = annotated("<li>x</li>");
        let p2 = annotated("<li>x</li><li>y</li>");
        let src = SourceTokens::from_pages(&[p1, p2]);
        let vectors = src.occurrence_vectors();
        let li_role = src.pages[0].occs[0].role;
        assert_eq!(vectors[li_role.0 as usize], vec![1, 2]);
    }

    #[test]
    fn word_occurrences_carry_annotations() {
        let p = annotated("<div>Metallica</div>");
        let src = SourceTokens::from_pages(std::slice::from_ref(&p));
        let word = src.pages[0]
            .occs
            .iter()
            .find(|o| !o.is_tag())
            .expect("word occurrence");
        assert_eq!(word.annotation.map(|s| s.as_str()), Some("artist"));
    }

    #[test]
    fn tag_occurrences_inherit_propagated_annotations() {
        let p = annotated("<div><span>Metallica</span></div>");
        let src = SourceTokens::from_pages(std::slice::from_ref(&p));
        let span_open = src.pages[0]
            .occs
            .iter()
            .find(|o| o.token == PageToken::Open("span".into()))
            .expect("span open");
        assert_eq!(span_open.annotation.map(|s| s.as_str()), Some("artist"));
    }

    #[test]
    fn positions_are_stream_indices() {
        let p = annotated("<li>a</li><li>b</li>");
        let src = SourceTokens::from_pages(std::slice::from_ref(&p));
        let li_role = src.pages[0].occs[0].role;
        let pos = src.positions_of(li_role);
        assert_eq!(pos[0], vec![0, 3]);
    }

    #[test]
    fn roles_are_shared_across_pages() {
        let p1 = annotated("<li>a</li>");
        let p2 = annotated("<li>b</li>");
        let src = SourceTokens::from_pages(&[p1, p2]);
        assert_eq!(src.pages[0].occs[0].role, src.pages[1].occs[0].role);
    }
}
