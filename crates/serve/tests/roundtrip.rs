//! Store round-trip properties over the golden corpus: the save fixed
//! point, loaded-wrapper extraction fidelity, corruption detection,
//! and — via the `extract-file` subcommand — cold-process fidelity
//! (a wrapper loaded into a fresh process with empty interner tables
//! extracts byte-identical objects).

use objectrunner_core::pipeline::{extract_only, Pipeline, PipelineConfig};
use objectrunner_core::sample::SampleConfig;
use objectrunner_core::wrapper::{repair_wrapper, RepairConfig};
use objectrunner_serve::instance_json;
use objectrunner_store::{load, save, save_file, RepairProvenance, StoreError, StoredWrapper};
use objectrunner_webgen::knowledge::recognizers_for;
use objectrunner_webgen::{generate_drifted, generate_site, Domain, PageKind, SiteSpec, Source};
use proptest::prelude::*;
use std::path::PathBuf;

/// The serving golden corpus: one clean list source per domain.
fn golden_specs() -> Vec<SiteSpec> {
    Domain::ALL
        .iter()
        .enumerate()
        .map(|(i, &domain)| {
            SiteSpec::clean(
                &format!("golden-{}", domain.name().to_lowercase()),
                domain,
                PageKind::List,
                15,
                17_000 + i as u64,
            )
        })
        .collect()
}

fn induce(source: &Source) -> StoredWrapper {
    let domain = source.spec.domain;
    let config = PipelineConfig {
        sample: SampleConfig {
            sample_size: 12,
            ..SampleConfig::default()
        },
        threads: Some(2),
        ..PipelineConfig::default()
    };
    let clean = config.clean.clone();
    let pipeline = Pipeline::new(domain.sod(), recognizers_for(domain, 0.2)).with_config(config);
    let outcome = pipeline
        .run_on_html(&source.pages)
        .expect("golden source must induce");
    StoredWrapper {
        source: source.spec.name.clone(),
        domain: domain.name().to_lowercase(),
        revision: 1,
        sod: domain.sod(),
        wrapper: outcome.wrapper,
        main_block: outcome.main_block,
        clean,
        repair: None,
    }
}

/// Canonical rendering of a source's extraction under a wrapper.
fn extraction_lines(stored: &StoredWrapper, pages: &[String]) -> Vec<String> {
    extract_only(
        &stored.wrapper,
        stored.main_block.as_ref(),
        &stored.clean,
        pages,
        Some(2),
    )
    .objects()
    .iter()
    .map(|o| instance_json(o).render())
    .collect()
}

/// A unique scratch directory (no tempfile crate in the workspace).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "objectrunner-roundtrip-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn save_load_save_is_a_fixed_point_on_the_golden_corpus() {
    for spec in golden_specs() {
        let stored = induce(&generate_site(&spec));
        let first = save(&stored);
        let reloaded = load(&first).expect("saved wrapper must load");
        let second = save(&reloaded);
        assert_eq!(first, second, "fixed point broken for {}", spec.name);
    }
}

#[test]
fn loaded_wrapper_extracts_identical_objects() {
    for spec in golden_specs() {
        let source = generate_site(&spec);
        let stored = induce(&source);
        let reloaded = load(&save(&stored)).expect("load");
        assert_eq!(
            extraction_lines(&stored, &source.pages),
            extraction_lines(&reloaded, &source.pages),
            "extraction diverged after round trip for {}",
            spec.name
        );
    }
}

#[test]
fn corruption_is_detected_before_parsing() {
    let spec = &golden_specs()[0];
    let stored = induce(&generate_site(spec));
    let good = save(&stored);

    // Flip one payload byte.
    let newline = good.find('\n').unwrap();
    let mut flipped = good.clone().into_bytes();
    flipped[newline + 10] ^= 0x01;
    let flipped = String::from_utf8(flipped).unwrap();
    assert!(matches!(load(&flipped), Err(StoreError::Corrupt { .. })));

    // Truncate the payload.
    let truncated = &good[..good.len() - 5];
    assert!(matches!(load(truncated), Err(StoreError::Corrupt { .. })));

    // Wrong magic.
    assert!(matches!(
        load(&good.replacen("ORWRAP", "NOTFMT", 1)),
        Err(StoreError::BadHeader)
    ));

    // Future format version.
    assert!(matches!(
        load(&good.replacen("ORWRAP v2 ", "ORWRAP v9 ", 1)),
        Err(StoreError::UnsupportedVersion(9))
    ));

    // The pristine bytes still load.
    assert!(load(&good).is_ok());
}

#[test]
fn cold_process_extraction_is_byte_identical() {
    let spec = &golden_specs()[0];
    let source = generate_site(spec);
    let stored = induce(&source);
    let expected = extraction_lines(&stored, &source.pages);
    assert!(!expected.is_empty(), "golden source must yield objects");

    let dir = scratch_dir("cold");
    let wrapper_path = dir.join("wrapper.orw");
    save_file(&wrapper_path, &stored).expect("persist wrapper");
    let pages_dir = dir.join("pages");
    std::fs::create_dir_all(&pages_dir).unwrap();
    for (i, page) in source.pages.iter().enumerate() {
        std::fs::write(pages_dir.join(format!("page-{i:03}.html")), page).unwrap();
    }

    // A fresh process: its interner tables start empty, so this only
    // passes if the store format is truly self-contained.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_objectrunner-serve"))
        .args(["extract-file", "--wrapper"])
        .arg(&wrapper_path)
        .arg("--pages")
        .arg(&pages_dir)
        .output()
        .expect("run objectrunner-serve");
    assert!(
        output.status.success(),
        "extract-file failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let cold: Vec<String> = String::from_utf8(output.stdout)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(expected, cold, "cold-process extraction diverged");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The streaming subcommand must print exactly the `extract-file`
/// objects, just grouped one line per page — same wrapper, same pages,
/// both in cold processes.
#[test]
fn extract_stream_subcommand_matches_extract_file() {
    let spec = &golden_specs()[1];
    let source = generate_site(spec);
    let stored = induce(&source);

    let dir = scratch_dir("stream");
    let wrapper_path = dir.join("wrapper.orw");
    save_file(&wrapper_path, &stored).expect("persist wrapper");
    let pages_dir = dir.join("pages");
    std::fs::create_dir_all(&pages_dir).unwrap();
    for (i, page) in source.pages.iter().enumerate() {
        std::fs::write(pages_dir.join(format!("page-{i:03}.html")), page).unwrap();
    }

    let run = |args: &[&str]| {
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_objectrunner-serve"))
            .args(args)
            .arg(&wrapper_path)
            .arg("--pages")
            .arg(&pages_dir)
            .output()
            .expect("run objectrunner-serve");
        assert!(
            output.status.success(),
            "{} failed: {}",
            args[0],
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).unwrap()
    };

    let per_object: Vec<String> = run(&["extract-file", "--wrapper"])
        .lines()
        .map(str::to_owned)
        .collect();
    let streamed = run(&["extract-stream", "--threads", "4", "--wrapper"]);

    // One line per page, in page order, objects flattening to the
    // per-object output byte-for-byte.
    let mut flattened = Vec::new();
    for (i, line) in streamed.lines().enumerate() {
        let parsed = objectrunner_store::Json::parse(line).expect("stream line is JSON");
        assert_eq!(parsed.get("page").and_then(|p| p.as_usize()), Some(i));
        let objects = match parsed.get("objects") {
            Some(objectrunner_store::Json::Arr(objects)) => objects,
            other => panic!("objects array missing: {other:?}"),
        };
        flattened.extend(objects.iter().map(|o| o.render()));
    }
    assert_eq!(per_object, flattened, "streamed objects diverged");

    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The fixed point holds across generated specs, not just the
    /// golden five: any inducible source's wrapper survives the
    /// round trip byte-identically.
    #[test]
    fn save_fixed_point_over_generated_specs(
        domain_idx in 0usize..5,
        seed in 0u64..10_000,
        style in 0usize..3,
    ) {
        let domain = Domain::ALL[domain_idx];
        let mut spec = SiteSpec::clean(
            &format!("prop-{}-{seed}", domain.name().to_lowercase()),
            domain,
            PageKind::List,
            12,
            seed,
        );
        spec.style = style;
        let source = generate_site(&spec);
        let stored = induce(&source);
        let first = save(&stored);
        let reloaded = load(&first).expect("load");
        prop_assert_eq!(first, save(&reloaded));
    }

    /// A *repaired* wrapper — patched template, transferred gap
    /// histograms, preserved stable ids, repair provenance — survives
    /// the round trip byte-identically too.
    #[test]
    fn save_fixed_point_over_repaired_wrappers(
        domain_idx in 0usize..5,
        seed in 0u64..10_000,
        from_rev in 1u64..50,
    ) {
        let domain = Domain::ALL[domain_idx];
        let mut spec = SiteSpec::clean(
            &format!("prop-repair-{}-{seed}", domain.name().to_lowercase()),
            domain,
            PageKind::List,
            12,
            seed,
        );
        spec.style = 0;
        let source = generate_site(&spec);
        let mut stored = induce(&source);
        stored.revision = from_rev + 1;

        // Patch through the tree diff against separator-tier drift;
        // when a particular seed's drift declines repair, the format
        // property still holds for hand-built provenance.
        let drifted = generate_drifted(&spec, 0.25);
        let prepared = extract_only(
            &stored.wrapper,
            stored.main_block.as_ref(),
            &stored.clean,
            &drifted.pages,
            Some(2),
        );
        match repair_wrapper(
            &stored.wrapper,
            &stored.sod,
            &prepared.docs,
            &RepairConfig::default(),
        ) {
            Ok(outcome) => {
                let s = outcome.report.summary;
                stored.wrapper = outcome.wrapper;
                stored.repair = Some(RepairProvenance {
                    repaired_from: from_rev,
                    matched_exact: s.matched_exact,
                    matched_container: s.matched_container,
                    unmatched_old: s.unmatched_old,
                    unmatched_new: s.unmatched_new,
                });
            }
            Err(_) => {
                stored.repair = Some(RepairProvenance {
                    repaired_from: from_rev,
                    matched_exact: seed as usize % 7,
                    matched_container: seed as usize % 3,
                    unmatched_old: 0,
                    unmatched_new: seed as usize % 5,
                });
            }
        }
        let first = save(&stored);
        let reloaded = load(&first).expect("load repaired wrapper");
        prop_assert_eq!(&reloaded.repair, &stored.repair);
        prop_assert_eq!(first, save(&reloaded));
    }
}
