//! # objectrunner-core
//!
//! The ObjectRunner extraction engine (paper §III): targeted wrapper
//! induction guided by an SOD and entity-type annotations.
//!
//! The extraction process has two stages — "(1) automatic annotation,
//! which consists in recognizing instances of the input SOD's entity
//! types in page content, and (2) extraction template construction,
//! using the semantic annotations from the previous stage and the
//! regularity of pages."
//!
//! Module map (in pipeline order):
//!
//! * [`annotate`] — recognize entity instances in DOM text and
//!   propagate annotations up the tree (§III-B).
//! * [`sample`] — Algorithm 1: greedy, selectivity-ordered annotation
//!   rounds and top-k page sample selection, with the block-level
//!   α-threshold early stop (§III-B, §III-E).
//! * [`tokens`] — page tokens, roles, and the interned dtoken streams
//!   the equivalence-class analysis runs on (§III-C).
//! * [`eqclass`] — occurrence vectors, equivalence classes, validity
//!   (ordered + nested) and invalid-class handling (§III-C).
//! * [`roles`] — Algorithm 2's role differentiation: HTML features,
//!   EQ positions, non-conflicting annotations, then conflicting
//!   annotations with the 0.7 generalization threshold (§III-C).
//! * [`template`] — the annotated template tree built from the class
//!   hierarchy (§III-D).
//! * [`matching`] — bottom-up matching of the canonical SOD into the
//!   template tree, including partial matchings for the §III-E abort
//!   condition.
//! * [`extract`] — applying the inferred template to all pages of the
//!   source, producing [`objectrunner_sod::Instance`] objects.
//! * [`wrapper`] — the wrapper-generation driver (Algorithm 2), plus
//!   tree-diff wrapper *repair* for drifted templates.
//! * [`treediff`] — GumTree-style matching between two template trees
//!   (top-down isomorphic subtrees, bottom-up containers by dice),
//!   the machinery under wrapper repair.
//! * [`pipeline`] — the end-to-end engine with the self-validation
//!   loop that varies the support parameter (§IV "automatic variation
//!   of parameters").
//! * [`dedup`] — cross-source de-duplication and object fusion (the
//!   architecture's de-duplication stage, Fig. 1).
//!
//! Orchestration:
//!
//! * [`stage`] — the explicit stage graph (Parse → Clean → Segment →
//!   Annotate/Sample → Wrap → Extract) with per-stage timings.
//! * [`exec`] — the deterministic scoped-thread executor driving the
//!   per-page and per-support fan-out.
//! * [`stream`] — the memory-bounded streaming extraction path: apply
//!   an induced wrapper to an iterator of pages with a bounded
//!   reorder window, for crawls too large to materialize.

pub mod annotate;
pub mod dedup;
pub mod eqclass;
pub mod exec;
pub mod extract;
pub mod matching;
pub mod pipeline;
pub mod roles;
pub mod sample;
pub mod stage;
pub mod stream;
pub mod template;
pub mod tokens;
pub mod treediff;
pub mod wrapper;

pub use annotate::{annotate_page, AnnotatedPage, Annotation};
pub use exec::Executor;
pub use pipeline::{Pipeline, PipelineConfig, PipelineError, PipelineOutcome};
pub use stage::{Stage, StageTiming};
pub use stream::{extract_stream, StreamConfig, StreamStats};
pub use treediff::{MappingSummary, MatchKind, TreeDiffConfig, TreeMapping};
pub use wrapper::{
    generate_wrapper, repair_wrapper, RepairConfig, RepairError, RepairOutcome, RepairReport,
    Wrapper, WrapperError,
};
