//! Regenerate Table II: precision under SOD-based vs random sample
//! selection.

use objectrunner_eval::tables::{corpus_sources, render_table2, table2};

fn main() {
    objectrunner_eval::parse_stats_json_flag(std::env::args().skip(1).collect());
    eprintln!("generating corpus…");
    let sources = corpus_sources();
    eprintln!("running both sampling strategies…");
    let rows = table2(&sources, 20120402);
    print!("{}", render_table2(&rows));
}
