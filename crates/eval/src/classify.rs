//! The golden-standard classification of §IV-B.
//!
//! * An **attribute** is *correct* when its extracted values are
//!   correct; *partially correct* when (i) values for several
//!   attributes are extracted together as displayed in pages, or
//!   (ii) values of one attribute are extracted as instances of
//!   separate fields; *incorrect* when the extracted values mix
//!   values of distinct attributes of the implicit schema.
//! * An **object** is correct when all its attributes are correct,
//!   partially correct when attributes are correct or partially
//!   correct, incorrect otherwise.
//! * `Pc = Oc / No` and `Pp = (Oc + Op) / No`; in this setting recall
//!   equals `Pc` (every golden object is accounted for).

use objectrunner_webgen::domain::GoldObject;
use objectrunner_webgen::Source;

/// A typed extracted object (attribute → values). ObjectRunner output
/// maps directly; baseline outputs are typed by field alignment first
/// (see [`align_fields`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtractedObject {
    pub attrs: Vec<(String, Vec<String>)>,
}

impl ExtractedObject {
    /// Values of one attribute.
    pub fn values(&self, attr: &str) -> &[String] {
        self.attrs
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, vs)| vs.as_slice())
            .unwrap_or(&[])
    }

    /// Add values for an attribute.
    pub fn push_all(&mut self, attr: &str, values: &[String]) {
        if values.is_empty() {
            return;
        }
        match self.attrs.iter_mut().find(|(a, _)| a == attr) {
            Some((_, vs)) => vs.extend(values.iter().cloned()),
            None => self.attrs.push((attr.to_owned(), values.to_vec())),
        }
    }

    /// All values, any attribute.
    pub fn all_values(&self) -> impl Iterator<Item = &str> {
        self.attrs
            .iter()
            .flat_map(|(_, vs)| vs.iter().map(String::as_str))
    }
}

/// Per-attribute outcome over one (gold, extracted) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrStatus {
    Correct,
    Partial,
    Incorrect,
    /// Attribute absent from both gold and extraction.
    NotApplicable,
}

/// Per-object outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectStatus {
    Correct,
    Partial,
    Incorrect,
}

/// Aggregated report for one source.
#[derive(Debug, Clone)]
pub struct SourceReport {
    pub name: String,
    /// Whether the optional attribute is displayed by the source.
    pub optional_present: bool,
    /// Source discarded before extraction (paper row 19).
    pub discarded: bool,
    /// Per SOD attribute: source-level status.
    pub attrs: Vec<(String, AttrStatus)>,
    /// Golden object count (`No`).
    pub no: usize,
    pub oc: usize,
    pub op: usize,
    pub oi: usize,
}

impl SourceReport {
    /// Precision for correctness.
    pub fn pc(&self) -> f64 {
        if self.no == 0 {
            0.0
        } else {
            self.oc as f64 / self.no as f64
        }
    }

    /// Precision for partial correctness.
    pub fn pp(&self) -> f64 {
        if self.no == 0 {
            0.0
        } else {
            (self.oc + self.op) as f64 / self.no as f64
        }
    }

    /// Counts of (correct, partial, incorrect) attributes.
    pub fn attr_counts(&self) -> (usize, usize, usize) {
        let mut c = 0;
        let mut p = 0;
        let mut i = 0;
        for (_, s) in &self.attrs {
            match s {
                AttrStatus::Correct => c += 1,
                AttrStatus::Partial => p += 1,
                AttrStatus::Incorrect => i += 1,
                AttrStatus::NotApplicable => {}
            }
        }
        (c, p, i)
    }

    /// "Incompletely managed" (Figure 6b): any partial or incorrect
    /// attribute — or a discarded source.
    pub fn incompletely_managed(&self) -> bool {
        if self.discarded {
            return true;
        }
        let (_, p, i) = self.attr_counts();
        p + i > 0
    }
}

/// Normalize a value for comparison.
pub fn normalize(v: &str) -> String {
    v.split_whitespace()
        .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric()))
        .filter(|w| !w.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

fn contains_norm(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return false;
    }
    haystack.contains(needle)
}

/// Classify one attribute of one aligned (gold, extracted) pair.
fn attr_status(gold: &[String], extracted: &[String]) -> AttrStatus {
    let g: Vec<String> = gold.iter().map(|v| normalize(v)).collect();
    let e: Vec<String> = extracted.iter().map(|v| normalize(v)).collect();
    if g.is_empty() && e.is_empty() {
        return AttrStatus::NotApplicable;
    }
    if g.is_empty() {
        // Extracted something the object doesn't have.
        return AttrStatus::Incorrect;
    }
    if e.is_empty() {
        return AttrStatus::Incorrect; // value lost
    }
    // Exact multiset equality.
    let mut gs = g.clone();
    let mut es = e.clone();
    gs.sort();
    es.sort();
    if gs == es {
        return AttrStatus::Correct;
    }
    // Partial: every gold value is found (exactly, embedded in a
    // larger extracted unit — displayed together — or truncated).
    let found = |gv: &String| {
        e.iter()
            .any(|ev| ev == gv || contains_norm(ev, gv) || contains_norm(gv, ev))
    };
    if g.iter().all(found) {
        return AttrStatus::Partial;
    }
    if g.iter().any(found) {
        return AttrStatus::Partial; // subset extracted (split fields)
    }
    AttrStatus::Incorrect
}

/// Similarity used to pair extracted objects with golden ones.
fn pair_similarity(gold: &GoldObject, extracted: &ExtractedObject) -> usize {
    let mut score = 0;
    for (attr, gvs) in &gold.attrs {
        for gv in gvs {
            let gn = normalize(gv);
            for ev in extracted.values(attr) {
                let en = normalize(ev);
                if en == gn {
                    score += 3;
                } else if contains_norm(&en, &gn) || contains_norm(&gn, &en) {
                    score += 1;
                }
            }
        }
    }
    score
}

/// Classify a whole source given typed extraction output per page.
pub fn classify_source(
    source: &Source,
    extracted_pages: &[Vec<ExtractedObject>],
    discarded: bool,
) -> SourceReport {
    let sod_attrs: Vec<&str> = source.spec.domain.attributes();
    let no = source.object_count();
    let mut report = SourceReport {
        name: source.spec.name.clone(),
        optional_present: source.spec.optional_present,
        discarded,
        attrs: Vec::new(),
        no,
        oc: 0,
        op: 0,
        oi: 0,
    };
    if discarded {
        report.attrs = sod_attrs
            .iter()
            .map(|a| ((*a).to_owned(), AttrStatus::NotApplicable))
            .collect();
        return report;
    }

    // Per-attribute status tallies across objects.
    let mut tallies: Vec<(usize, usize, usize, usize)> = vec![(0, 0, 0, 0); sod_attrs.len()];

    for (page_idx, gold_objects) in source.truth.iter().enumerate() {
        let empty = Vec::new();
        let extracted = extracted_pages.get(page_idx).unwrap_or(&empty);
        let pairs = pair_objects(gold_objects, extracted);
        for (gi, gold) in gold_objects.iter().enumerate() {
            let mut statuses = Vec::with_capacity(sod_attrs.len());
            match pairs[gi] {
                Some(ei) => {
                    let ext = &extracted[ei];
                    for (ai, attr) in sod_attrs.iter().enumerate() {
                        let s = attr_status(gold.values(attr), ext.values(attr));
                        bump(&mut tallies[ai], s);
                        statuses.push(s);
                    }
                }
                None => {
                    // Unpaired golden object: if its values appear
                    // somewhere in this page's extraction, the data was
                    // captured in the wrong granularity — partial (the
                    // "separate fields" case); otherwise it is lost.
                    let page_values: Vec<String> = extracted
                        .iter()
                        .flat_map(|e| e.all_values())
                        .map(normalize)
                        .collect();
                    for (ai, attr) in sod_attrs.iter().enumerate() {
                        let gvs = gold.values(attr);
                        let s = if gvs.is_empty() {
                            AttrStatus::NotApplicable
                        } else {
                            let all_found = gvs.iter().all(|gv| {
                                let gn = normalize(gv);
                                page_values
                                    .iter()
                                    .any(|pv| *pv == gn || contains_norm(pv, &gn))
                            });
                            if all_found {
                                AttrStatus::Partial
                            } else {
                                AttrStatus::Incorrect
                            }
                        };
                        bump(&mut tallies[ai], s);
                        statuses.push(s);
                    }
                }
            }
            match object_status(&statuses) {
                ObjectStatus::Correct => report.oc += 1,
                ObjectStatus::Partial => report.op += 1,
                ObjectStatus::Incorrect => report.oi += 1,
            }
        }
    }

    // Source-level attribute classification: near-uniform outcomes
    // decide the label (a handful of odd records don't flip a column).
    report.attrs = sod_attrs
        .iter()
        .zip(tallies.iter())
        .map(|(attr, &(c, p, i, _na))| {
            let total = c + p + i;
            let status = if total == 0 {
                AttrStatus::NotApplicable
            } else if c as f64 / total as f64 >= 0.95 {
                AttrStatus::Correct
            } else if (c + p) as f64 / total as f64 >= 0.95 {
                AttrStatus::Partial
            } else {
                AttrStatus::Incorrect
            };
            ((*attr).to_owned(), status)
        })
        .collect();
    report
}

fn bump(t: &mut (usize, usize, usize, usize), s: AttrStatus) {
    match s {
        AttrStatus::Correct => t.0 += 1,
        AttrStatus::Partial => t.1 += 1,
        AttrStatus::Incorrect => t.2 += 1,
        AttrStatus::NotApplicable => t.3 += 1,
    }
}

fn object_status(statuses: &[AttrStatus]) -> ObjectStatus {
    let mut any_partial = false;
    for s in statuses {
        match s {
            AttrStatus::Incorrect => return ObjectStatus::Incorrect,
            AttrStatus::Partial => any_partial = true,
            _ => {}
        }
    }
    if any_partial {
        ObjectStatus::Partial
    } else {
        ObjectStatus::Correct
    }
}

/// Greedy pairing of golden and extracted objects on one page.
/// Returns, per golden object, the index of its extracted partner.
fn pair_objects(gold: &[GoldObject], extracted: &[ExtractedObject]) -> Vec<Option<usize>> {
    let mut result = vec![None; gold.len()];
    let mut taken = vec![false; extracted.len()];
    // All candidate pairs by similarity.
    let mut candidates: Vec<(usize, usize, usize)> = Vec::new(); // (score, gi, ei)
    for (gi, g) in gold.iter().enumerate() {
        for (ei, e) in extracted.iter().enumerate() {
            let s = pair_similarity(g, e);
            if s > 0 {
                candidates.push((s, gi, ei));
            }
        }
    }
    candidates.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| (a.1, a.2).cmp(&(b.1, b.2))));
    for (_, gi, ei) in candidates {
        if result[gi].is_none() && !taken[ei] {
            result[gi] = Some(ei);
            taken[ei] = true;
        }
    }
    result
}

/// Align untyped baseline fields to SOD attributes using the golden
/// standard (the paper's authors did this judgement manually).
///
/// For each field, count matches against each attribute over paired
/// records; each attribute claims its best-scoring field.
pub fn align_fields(
    source: &Source,
    flat_pages: &[Vec<objectrunner_baselines::FlatRecord>],
) -> Vec<Vec<ExtractedObject>> {
    let attrs = source.spec.domain.attributes();
    let arity = flat_pages
        .iter()
        .flatten()
        .map(|r| r.fields.len())
        .max()
        .unwrap_or(0);
    if arity == 0 {
        return flat_pages.iter().map(|_| Vec::new()).collect();
    }

    // Score fields against attributes. Each extracted record is
    // scored against every golden object of its page: when a system
    // surfaces a whole list as one record (RoadRunner's "too regular"
    // shape), the later records' fields still align with the later
    // golden objects.
    let mut scores = vec![vec![0usize; attrs.len()]; arity];
    for (page_idx, records) in flat_pages.iter().enumerate() {
        let Some(gold_page) = source.truth.get(page_idx) else {
            continue;
        };
        for record in records {
            for (fi, values) in record.fields.iter().enumerate() {
                for (ai, attr) in attrs.iter().enumerate() {
                    let mut best = 0usize;
                    for gold in gold_page {
                        for gv in gold.values(attr) {
                            let gn = normalize(gv);
                            for v in values {
                                let vn = normalize(v);
                                if vn == gn {
                                    best = best.max(3);
                                } else if contains_norm(&vn, &gn)
                                    || (vn.len() >= 4 && contains_norm(&gn, &vn))
                                {
                                    // Merged display or truncated value.
                                    best = best.max(1);
                                }
                            }
                        }
                    }
                    scores[fi][ai] += best;
                }
            }
        }
    }

    // attr → fields: the best-scoring field plus any other field in
    // the same league (the partial-(ii) "separate fields" case).
    let mut attr_fields: Vec<Vec<usize>> = vec![Vec::new(); attrs.len()];
    for (ai, af) in attr_fields.iter_mut().enumerate() {
        let best = (0..arity).map(|fi| scores[fi][ai]).max().unwrap_or(0);
        if best == 0 {
            continue;
        }
        for (fi, field_scores) in scores.iter().enumerate().take(arity) {
            if field_scores[ai] * 2 >= best {
                af.push(fi);
            }
        }
    }

    flat_pages
        .iter()
        .map(|records| {
            records
                .iter()
                .map(|record| {
                    let mut obj = ExtractedObject::default();
                    for (ai, attr) in attrs.iter().enumerate() {
                        for &fi in &attr_fields[ai] {
                            if let Some(values) = record.fields.get(fi) {
                                obj.push_all(attr, values);
                            }
                        }
                    }
                    obj
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_webgen::{generate_site, Domain, PageKind, SiteSpec};

    fn typed(attrs: &[(&str, &[&str])]) -> ExtractedObject {
        let mut o = ExtractedObject::default();
        for (a, vs) in attrs {
            o.push_all(a, &vs.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
        }
        o
    }

    fn gold(attrs: &[(&str, &[&str])]) -> GoldObject {
        let mut o = GoldObject::default();
        for (a, vs) in attrs {
            for v in *vs {
                o.push(a, v);
            }
        }
        o
    }

    #[test]
    fn exact_values_are_correct() {
        assert_eq!(
            attr_status(&["Metallica".into()], &["Metallica".into()]),
            AttrStatus::Correct
        );
        // Normalization tolerates punctuation and case.
        assert_eq!(
            attr_status(&["May 11, 2010".into()], &["may 11 2010".into()]),
            AttrStatus::Correct
        );
    }

    #[test]
    fn merged_display_is_partial() {
        assert_eq!(
            attr_status(&["Metallica".into()], &["Metallica — May 11, 2010".into()]),
            AttrStatus::Partial
        );
    }

    #[test]
    fn truncated_value_is_partial() {
        assert_eq!(
            attr_status(
                &["4 Penn Plaza, New York City".into()],
                &["4 Penn Plaza".into()]
            ),
            AttrStatus::Partial
        );
    }

    #[test]
    fn lost_value_is_incorrect() {
        assert_eq!(
            attr_status(&["Metallica".into()], &[]),
            AttrStatus::Incorrect
        );
    }

    #[test]
    fn alien_value_is_incorrect() {
        assert_eq!(
            attr_status(&["Metallica".into()], &["$12.99".into()]),
            AttrStatus::Incorrect
        );
    }

    #[test]
    fn author_subset_is_partial() {
        assert_eq!(
            attr_status(
                &["Jane Austen".into(), "Fiona Stafford".into()],
                &["Jane Austen".into()]
            ),
            AttrStatus::Partial
        );
    }

    #[test]
    fn absent_optional_is_not_applicable() {
        assert_eq!(attr_status(&[], &[]), AttrStatus::NotApplicable);
    }

    #[test]
    fn perfect_extraction_scores_full_precision() {
        let spec = SiteSpec::clean("t", Domain::Cars, PageKind::List, 4, 9);
        let source = generate_site(&spec);
        // Perfect output = the golden standard itself.
        let extracted: Vec<Vec<ExtractedObject>> = source
            .truth
            .iter()
            .map(|objs| {
                objs.iter()
                    .map(|g| ExtractedObject {
                        attrs: g.attrs.clone(),
                    })
                    .collect()
            })
            .collect();
        let report = classify_source(&source, &extracted, false);
        assert_eq!(report.oc, report.no);
        assert!((report.pc() - 1.0).abs() < 1e-12);
        let (c, p, i) = report.attr_counts();
        assert_eq!((c, p, i), (2, 0, 0));
    }

    #[test]
    fn empty_extraction_scores_zero() {
        let spec = SiteSpec::clean("t", Domain::Cars, PageKind::List, 3, 10);
        let source = generate_site(&spec);
        let extracted: Vec<Vec<ExtractedObject>> =
            source.truth.iter().map(|_| Vec::new()).collect();
        let report = classify_source(&source, &extracted, false);
        assert_eq!(report.oi, report.no);
        assert_eq!(report.pc(), 0.0);
    }

    #[test]
    fn discarded_source_reports_as_such() {
        let spec = SiteSpec::clean("t", Domain::Albums, PageKind::List, 3, 11);
        let source = generate_site(&spec);
        let report = classify_source(&source, &[], true);
        assert!(report.discarded);
        assert!(report.incompletely_managed());
    }

    #[test]
    fn pairing_is_robust_to_order() {
        let golds = vec![
            gold(&[("brand", &["Toyota"]), ("price", &["$10.00"])]),
            gold(&[("brand", &["Honda"]), ("price", &["$20.00"])]),
        ];
        let extracted = vec![
            typed(&[("brand", &["Honda"]), ("price", &["$20.00"])]),
            typed(&[("brand", &["Toyota"]), ("price", &["$10.00"])]),
        ];
        let pairs = pair_objects(&golds, &extracted);
        assert_eq!(pairs, vec![Some(1), Some(0)]);
    }

    #[test]
    fn unpaired_gold_with_values_on_page_is_partial() {
        // One extracted record holds the values of both objects
        // (RoadRunner's too-regular shape).
        let spec = SiteSpec::clean("t", Domain::Cars, PageKind::List, 1, 12);
        let mut source = generate_site(&spec);
        source.truth = vec![vec![
            gold(&[("brand", &["Toyota"]), ("price", &["$10.00"])]),
            gold(&[("brand", &["Honda"]), ("price", &["$20.00"])]),
        ]];
        let merged = typed(&[
            ("brand", &["Toyota", "Honda"]),
            ("price", &["$10.00", "$20.00"]),
        ]);
        let report = classify_source(&source, &[vec![merged]], false);
        assert_eq!(report.no, 2);
        assert_eq!(report.oc, 0);
        assert_eq!(report.op, 2, "both objects partial: {report:?}");
    }

    #[test]
    fn field_alignment_types_baseline_output() {
        use objectrunner_baselines::FlatRecord;
        let spec = SiteSpec::clean("t", Domain::Cars, PageKind::List, 1, 13);
        let mut source = generate_site(&spec);
        source.truth = vec![vec![
            gold(&[("brand", &["Toyota"]), ("price", &["$10.00"])]),
            gold(&[("brand", &["Honda"]), ("price", &["$20.00"])]),
        ]];
        let flat = vec![vec![
            FlatRecord {
                fields: vec![vec!["Toyota".into()], vec!["$10.00".into()]],
            },
            FlatRecord {
                fields: vec![vec!["Honda".into()], vec!["$20.00".into()]],
            },
        ]];
        let typed_pages = align_fields(&source, &flat);
        let report = classify_source(&source, &typed_pages, false);
        assert_eq!(report.oc, 2);
    }
}
