//! Wrapper generation (paper §III-C, Algorithm 2 end-to-end).
//!
//! Ties together role differentiation, template construction and SOD
//! matching, and carries the wrapper's quality estimate: "a good
//! wrapper (in short, one built with no or very few conflicting
//! annotations)".

use crate::annotate::AnnotatedPage;
use crate::extract::extract_page;
use crate::matching::{
    collect_mapping_nodes, match_sod, partial_match_possible, GapRef, MatchError, SetMapping,
    SodMapping, TupleMapping,
};
use crate::roles::{differentiate, DiffConfig};
use crate::template::{build_template, GapKind, NodeMultiplicity, TemplateNode, TemplateTree};
use crate::tokens::SourceTokens;
use crate::treediff::{
    align_matchers, match_trees, MappingSummary, NodeAlignment, TreeDiffConfig, TreeMapping,
};
use objectrunner_html::{Document, FxHashMap, PageToken};
use objectrunner_sod::{Instance, Sod, SodNode};

/// Wrapper-generation failures.
#[derive(Debug, Clone)]
pub enum WrapperError {
    /// §III-E: the abort condition fired — no partial matching of the
    /// SOD into the (current) template tree can exist.
    Aborted,
    /// The final template tree does not match the SOD.
    NoMatch(MatchError),
    /// The sample was empty.
    EmptySample,
}

impl std::fmt::Display for WrapperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WrapperError::Aborted => write!(f, "wrapper generation aborted (no partial matching)"),
            WrapperError::NoMatch(e) => write!(f, "SOD does not match the template: {e}"),
            WrapperError::EmptySample => write!(f, "empty page sample"),
        }
    }
}

impl std::error::Error for WrapperError {}

/// An extraction wrapper: template tree + SOD mapping.
#[derive(Debug, Clone)]
pub struct Wrapper {
    pub template: TemplateTree,
    pub mapping: SodMapping,
    /// Tuple name of the SOD root (names extracted objects).
    pub object_name: String,
    /// Quality estimate in `(0, 1]` — degraded by conflicting
    /// annotations and merged fields.
    pub quality: f64,
    /// Conflict-driven role splits during generation.
    pub conflict_splits: usize,
    /// Differentiation rounds run.
    pub rounds: usize,
    /// The support parameter the wrapper was built with.
    pub support: usize,
}

impl Wrapper {
    /// Extract all objects from one page.
    pub fn extract_document(&self, doc: &Document) -> Vec<Instance> {
        extract_page(&self.template, &self.mapping, &self.object_name, doc)
    }

    /// Extract from every page of a source.
    pub fn extract_source(&self, docs: &[Document]) -> Vec<Instance> {
        docs.iter().flat_map(|d| self.extract_document(d)).collect()
    }
}

/// Generate a wrapper from an annotated sample (Algorithm 2 + §III-D
/// matching). `diff_cfg.eq.min_support` is the support parameter the
/// self-validation loop varies (3–5 in the paper).
pub fn generate_wrapper(
    sample: &[AnnotatedPage],
    sod: &Sod,
    diff_cfg: &DiffConfig,
) -> Result<Wrapper, WrapperError> {
    if sample.is_empty() {
        return Err(WrapperError::EmptySample);
    }
    let mut src = SourceTokens::from_pages(sample);
    // The SOD's set-valued types guide role differentiation (§III-C).
    let mut cfg = diff_cfg.clone();
    if cfg.set_types.is_empty() {
        cfg.set_types = sod
            .set_entity_types()
            .into_iter()
            .map(str::to_owned)
            .collect();
    }
    let outcome = differentiate(&mut src, &cfg, |_, s| !partial_match_possible(s, sod));
    if outcome.aborted {
        return Err(WrapperError::Aborted);
    }
    let template = build_template(&src, &outcome.analysis);
    let mapping = match_sod(&template, sod).map_err(WrapperError::NoMatch)?;

    let merged = mapping.record.has_merged_fields();
    let mut quality = 1.0 / (1.0 + outcome.conflict_splits as f64);
    if merged {
        quality *= 0.8;
    }
    Ok(Wrapper {
        object_name: object_name(sod),
        template,
        mapping,
        quality,
        conflict_splits: outcome.conflict_splits,
        rounds: outcome.rounds,
        support: diff_cfg.eq.min_support,
    })
}

fn object_name(sod: &Sod) -> String {
    match sod.root() {
        SodNode::Tuple { name, .. } => name.clone(),
        _ => "object".to_owned(),
    }
}

// ------------------------------------------------------------- repair

/// Tunables for [`repair_wrapper`].
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Tree-diff matching thresholds.
    pub diff: TreeDiffConfig,
    /// Role differentiation used for the *structure-only* template
    /// inference on the drifted pages (no annotations are involved —
    /// the drifted pages arrive unannotated and stay that way).
    pub infer: DiffConfig,
    /// Minimum fraction of repair pages on which the patched wrapper
    /// must extract at least one object; below it the repair is
    /// rejected so the caller falls back to full re-induction.
    pub coverage_floor: f64,
}

impl Default for RepairConfig {
    fn default() -> RepairConfig {
        RepairConfig {
            diff: TreeDiffConfig::default(),
            infer: DiffConfig::default(),
            coverage_floor: 0.5,
        }
    }
}

/// Why a repair was declined. Every variant is a reason to fall back
/// to full re-induction — repair never guesses.
#[derive(Debug, Clone)]
pub enum RepairError {
    /// No repair pages were supplied.
    EmptySample,
    /// A template node the SOD mapping reads has no counterpart in
    /// the drifted template.
    NodeUnmatched { stable_id: u64 },
    /// An ancestor of the record anchor no longer aligns token-exactly
    /// — the containment structure itself changed, and patching paths
    /// through it would be guesswork.
    ContainerChanged,
    /// A gap holding a mapped type could not be re-mapped.
    GapLost { type_name: String },
    /// The record (or a repeated set) node lost its multiplicity.
    MultiplicityChanged,
    /// The patched wrapper extracted on too few of the repair pages.
    CoverageBelowFloor { coverage: f64, floor: f64 },
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::EmptySample => write!(f, "no repair pages"),
            RepairError::NodeUnmatched { stable_id } => {
                write!(f, "template node sid={stable_id} has no counterpart")
            }
            RepairError::ContainerChanged => {
                write!(f, "container chain above the record anchor changed")
            }
            RepairError::GapLost { type_name } => {
                write!(f, "gap holding type '{type_name}' was lost")
            }
            RepairError::MultiplicityChanged => write!(f, "record/set multiplicity changed"),
            RepairError::CoverageBelowFloor { coverage, floor } => {
                write!(
                    f,
                    "patched wrapper covers {coverage:.2} of repair pages (floor {floor:.2})"
                )
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// What a successful repair did, for provenance and logs.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Node-mapping counts between the stored and drifted templates.
    pub summary: MappingSummary,
    /// Fraction of repair pages the patched wrapper extracted on.
    pub coverage: f64,
    /// Mapped matchers whose tag path changed (the drift the patch
    /// absorbed).
    pub remapped_paths: usize,
    /// Gaps whose annotation histograms were carried over.
    pub transferred_gaps: usize,
    /// Word matchers the structure-only inference promoted inside old
    /// *data* gaps, demoted back to data (the original induction's
    /// annotations guarded them; the unannotated repair pages can't).
    pub pruned_word_matchers: usize,
}

/// A repaired wrapper plus its report.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    pub wrapper: Wrapper,
    pub report: RepairReport,
}

/// Patch a drifted wrapper instead of re-inducing it (GumTree-style
/// template-tree diff, see [`crate::treediff`]).
///
/// `docs` are the prepared (cleaned, segmented) drifted pages the
/// caller buffered. A *structure-only* template is inferred from them
/// — no annotation pass, no sampling, no SOD matching — and matched
/// against the stored template. The stored wrapper's `Matcher` paths,
/// gap roles and annotation histograms are then pushed through the
/// node mapping onto the new template, and the stored SOD mapping is
/// re-targeted node by node, gap by gap. Stable node ids survive:
/// a repaired node keeps the id of the stored node it was matched to.
///
/// Repair is *conservative*: any node the mapping reads that failed
/// to match, any ancestor of the record anchor whose token structure
/// changed, any lost gap or flipped multiplicity, and any patched
/// wrapper that extracts on less than `cfg.coverage_floor` of the
/// repair pages all return an error so the caller can fall back to
/// full re-induction — loudly, never silently.
pub fn repair_wrapper(
    old: &Wrapper,
    sod: &Sod,
    docs: &[Document],
    cfg: &RepairConfig,
) -> Result<RepairOutcome, RepairError> {
    if docs.is_empty() {
        return Err(RepairError::EmptySample);
    }

    // Structure-only inference: the same differentiation the full
    // pipeline runs, minus annotations (the pages are unannotated, so
    // annotation-driven splits and the §III-E abort simply never
    // fire). Set types still come from the SOD, mirroring
    // `generate_wrapper`, so the class analysis is shaped the same
    // way a fresh induction would shape it.
    let unannotated: Vec<AnnotatedPage> = docs
        .iter()
        .map(|d| AnnotatedPage {
            doc: d.clone(),
            annotations: Default::default(),
        })
        .collect();
    let mut src = SourceTokens::from_pages(&unannotated);
    let mut infer = cfg.infer.clone();
    if infer.set_types.is_empty() {
        infer.set_types = sod
            .set_entity_types()
            .into_iter()
            .map(str::to_owned)
            .collect();
    }
    let outcome = differentiate(&mut src, &infer, |_, _| false);
    let mut new_tree = build_template(&src, &outcome.analysis);

    let mapping = match_trees(&old.template, &new_tree, &cfg.diff);
    let summary = mapping.summary();

    // Every node the SOD mapping reads must have a counterpart.
    let mut read_nodes: Vec<usize> = Vec::new();
    collect_mapping_nodes(&old.mapping.record, &mut read_nodes);
    read_nodes.sort_unstable();
    read_nodes.dedup();
    for &o in &read_nodes {
        if mapping.old_to_new[o].is_none() {
            return Err(RepairError::NodeUnmatched {
                stable_id: old.template.nodes[o].stable_id,
            });
        }
    }

    // Demote wrongly-promoted data words. The drifted pages arrive
    // unannotated, so the inference can't annotation-guard repeating
    // data words ("May", "2010", a shared label) the way the original
    // induction did — they surface as word separators that would split
    // the old data gaps and truncate extracted values. The old
    // template knows better: any *word* matcher the alignment inserts
    // strictly inside an old Data gap is demoted back into the gap.
    let mut pruned_word_matchers = 0usize;
    for n in 0..new_tree.nodes.len() {
        if let Some(o) = mapping.new_to_old[n] {
            pruned_word_matchers +=
                prune_promoted_words(&old.template.nodes[o], &mut new_tree.nodes[n]);
        }
    }

    // Alignment cache over matched old nodes (post-prune).
    let mut alignments: FxHashMap<usize, NodeAlignment> = FxHashMap::default();
    let mut align_of = |o: usize, old_tree: &TemplateTree, new_tree: &TemplateTree| {
        let n = mapping.old_to_new[o].expect("checked matched");
        alignments
            .entry(o)
            .or_insert_with(|| align_matchers(&old_tree.nodes[o], &new_tree.nodes[n]))
            .clone()
    };

    // Container-chain eligibility: every proper ancestor of the record
    // anchor must be matched with a token-exact matcher alignment.
    // Paths may shift (that is what repair fixes); the token structure
    // of the containment chain may not — `<ul>` becoming `<ol>` is a
    // redesign, not drift this patch can absorb.
    let anchor = old.mapping.record.anchor;
    let mut child = anchor;
    let mut walk = old.template.nodes[anchor].parent;
    while let Some(a) = walk {
        let Some(n) = mapping.old_to_new[a] else {
            return Err(RepairError::ContainerChanged);
        };
        // The element *holding* the records must keep its tag: the
        // matchers flanking the gap that hosts `child`'s subtree must
        // align to token-equal counterparts (`<ul>` becoming `<ol>` is
        // a redesign, not drift this patch can absorb). Anything else
        // in the container — chrome the inference sees when the
        // drifted pages could not be re-segmented to the stored main
        // block, an extra wrapper element — may come and go freely:
        // the patched template is the one inferred from the drifted
        // pages, so extraction follows the new structure.
        let align = align_of(a, &old.template, &new_tree);
        let old_node = &old.template.nodes[a];
        let new_node = &new_tree.nodes[n];
        let hosting_gap = old_node
            .gaps
            .iter()
            .position(|g| g.children.contains(&child));
        if let Some(g) = hosting_gap {
            let Some(g2) = align.gap_map[g] else {
                return Err(RepairError::ContainerChanged);
            };
            // Gap `i` sits between matchers `i` and `i+1`; a node with
            // no matchers (the root) hosts everything in one flankless
            // gap, which nothing can redesign.
            let flanks = [
                (old_node.matchers.get(g), new_node.matchers.get(g2)),
                (old_node.matchers.get(g + 1), new_node.matchers.get(g2 + 1)),
            ];
            for (old_m, new_m) in flanks {
                let preserved = match (old_m, new_m) {
                    (Some(o), Some(n)) => o.token == n.token,
                    (None, None) => true,
                    _ => false,
                };
                if !preserved {
                    return Err(RepairError::ContainerChanged);
                }
            }
        }
        child = a;
        walk = old.template.nodes[a].parent;
    }

    // The record must still repeat if it used to.
    let new_anchor = mapping.old_to_new[anchor].expect("checked matched");
    if old.mapping.record_repeats
        && new_tree.nodes[new_anchor].multiplicity != NodeMultiplicity::Repeating
    {
        return Err(RepairError::MultiplicityChanged);
    }

    // Patch the new template: carry stable ids and gap annotation
    // histograms over the mapping. Unmatched new nodes get fresh ids
    // above the old tree's maximum, in index order.
    let mut next_fresh = old.template.max_stable_id() + 1;
    let mut transferred_gaps = 0usize;
    let mut remapped_paths = 0usize;
    for n in 0..new_tree.nodes.len() {
        match mapping.new_to_old[n] {
            Some(o) => {
                new_tree.nodes[n].stable_id = old.template.nodes[o].stable_id;
                let alignment = align_of(o, &old.template, &new_tree);
                for (j, mapped) in alignment.matcher_map.iter().enumerate() {
                    if let Some(i) = mapped {
                        if old.template.nodes[o].matchers[j].path
                            != new_tree.nodes[n].matchers[*i].path
                        {
                            remapped_paths += 1;
                        }
                    }
                }
                for (j, mapped) in alignment.gap_map.iter().enumerate() {
                    let Some(i) = *mapped else { continue };
                    let histogram = old.template.nodes[o].gaps[j].annotations.clone();
                    if histogram.is_empty() {
                        continue;
                    }
                    let gap = &mut new_tree.nodes[n].gaps[i];
                    for (t, c) in histogram {
                        *gap.annotations.entry(t).or_insert(0) += c;
                    }
                    transferred_gaps += 1;
                }
            }
            None => {
                new_tree.nodes[n].stable_id = next_fresh;
                next_fresh += 1;
            }
        }
    }

    // Re-target the SOD mapping through the node mapping.
    let record = remap_tuple(
        &old.mapping.record,
        &old.template,
        &new_tree,
        &mapping,
        &mut align_of,
    )?;
    let patched = Wrapper {
        template: new_tree,
        mapping: SodMapping {
            record,
            record_repeats: old.mapping.record_repeats,
        },
        object_name: old.object_name.clone(),
        quality: old.quality,
        conflict_splits: old.conflict_splits,
        rounds: old.rounds,
        support: old.support,
    };

    // The patched wrapper must actually work on the pages that
    // triggered the repair.
    let covered = docs
        .iter()
        .filter(|d| !patched.extract_document(d).is_empty())
        .count();
    let coverage = covered as f64 / docs.len() as f64;
    if coverage < cfg.coverage_floor {
        return Err(RepairError::CoverageBelowFloor {
            coverage,
            floor: cfg.coverage_floor,
        });
    }

    Ok(RepairOutcome {
        wrapper: patched,
        report: RepairReport {
            summary,
            coverage,
            remapped_paths,
            transferred_gaps,
            pruned_word_matchers,
        },
    })
}

/// Remove word matchers of `new_node` that the alignment places
/// strictly inside a Data gap of `old_node`, merging the gaps around
/// each removal. Returns how many matchers were demoted.
fn prune_promoted_words(old_node: &TemplateNode, new_node: &mut TemplateNode) -> usize {
    let alignment = align_matchers(old_node, new_node);
    let mut remove: Vec<usize> = Vec::new();
    for j in 0..old_node.gaps.len() {
        if old_node.gaps[j].kind() != GapKind::Data {
            continue;
        }
        let (Some(a), Some(b)) = (
            alignment.matcher_map.get(j).copied().flatten(),
            alignment.matcher_map.get(j + 1).copied().flatten(),
        ) else {
            continue;
        };
        for i in a + 1..b {
            if matches!(new_node.matchers[i].token, PageToken::Word(_)) {
                remove.push(i);
            }
        }
    }
    remove.sort_unstable();
    remove.dedup();
    // Every removal index is interior (strictly between two aligned
    // matchers), so merging `gaps[i-1]` and `gaps[i]` is always valid.
    for &i in remove.iter().rev() {
        new_node.matchers.remove(i);
        if !new_node.permutation.is_empty() {
            new_node.permutation.remove(i);
        }
        let right = new_node.gaps.remove(i);
        let left = &mut new_node.gaps[i - 1];
        left.total_instances = left.total_instances.max(right.total_instances);
        // The demoted word itself is data in every instance now.
        left.data_instances = left.total_instances;
        for (t, c) in right.annotations {
            *left.annotations.entry(t).or_insert(0) += c;
        }
        left.children.extend(right.children);
        left.samples.extend(right.samples);
        left.samples.truncate(12);
    }
    remove.len()
}

/// Re-target one tuple mapping (recursively through repeated sets).
fn remap_tuple(
    t: &TupleMapping,
    old_tree: &TemplateTree,
    new_tree: &TemplateTree,
    mapping: &TreeMapping,
    align_of: &mut impl FnMut(usize, &TemplateTree, &TemplateTree) -> NodeAlignment,
) -> Result<TupleMapping, RepairError> {
    let remap_gap =
        |g: &GapRef,
         type_name: &str,
         align_of: &mut dyn FnMut(usize, &TemplateTree, &TemplateTree) -> NodeAlignment|
         -> Result<GapRef, RepairError> {
            let n = mapping.old_to_new[g.node].ok_or(RepairError::NodeUnmatched {
                stable_id: old_tree.nodes[g.node].stable_id,
            })?;
            let alignment = align_of(g.node, old_tree, new_tree);
            let gap = alignment
                .gap_map
                .get(g.gap)
                .copied()
                .flatten()
                .ok_or_else(|| RepairError::GapLost {
                    type_name: type_name.to_owned(),
                })?;
            Ok(GapRef { node: n, gap })
        };

    let anchor = mapping.old_to_new[t.anchor].ok_or(RepairError::NodeUnmatched {
        stable_id: old_tree.nodes[t.anchor].stable_id,
    })?;
    let atomics = t
        .atomics
        .iter()
        .map(|(name, g)| Ok((name.clone(), remap_gap(g, name, align_of)?)))
        .collect::<Result<Vec<_>, RepairError>>()?;
    let sets = t
        .sets
        .iter()
        .map(|s| match s {
            SetMapping::Repeated { set_node, element } => {
                let n = mapping.old_to_new[*set_node].ok_or(RepairError::NodeUnmatched {
                    stable_id: old_tree.nodes[*set_node].stable_id,
                })?;
                if old_tree.nodes[*set_node].multiplicity == NodeMultiplicity::Repeating
                    && new_tree.nodes[n].multiplicity != NodeMultiplicity::Repeating
                {
                    return Err(RepairError::MultiplicityChanged);
                }
                Ok(SetMapping::Repeated {
                    set_node: n,
                    element: remap_tuple(element, old_tree, new_tree, mapping, align_of)?,
                })
            }
            SetMapping::Collapsed { type_name, gap } => Ok(SetMapping::Collapsed {
                type_name: type_name.clone(),
                gap: remap_gap(gap, type_name, align_of)?,
            }),
        })
        .collect::<Result<Vec<_>, RepairError>>()?;
    Ok(TupleMapping {
        anchor,
        atomics,
        sets,
        missing_optional: t.missing_optional.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{AnnotatedPage, Annotation};
    use objectrunner_html::{parse, NodeKind};
    use objectrunner_sod::{Multiplicity, SodBuilder};
    use std::collections::HashMap as Map;

    fn annotated_pages(counts: &[usize]) -> Vec<AnnotatedPage> {
        counts
            .iter()
            .map(|&n| {
                let recs: String = (0..n)
                    .map(|i| {
                        format!(
                            "<li><div>Artist{i}</div><div>May {}, 2010</div></li>",
                            i + 1
                        )
                    })
                    .collect();
                let mut page = AnnotatedPage {
                    doc: parse(&format!("<body><ul>{recs}</ul></body>")),
                    annotations: Map::new(),
                };
                let texts: Vec<_> = page
                    .doc
                    .descendants(page.doc.root())
                    .filter(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
                    .collect();
                for (idx, t) in texts.iter().enumerate() {
                    let type_name = if idx % 2 == 0 { "artist" } else { "date" };
                    page.annotations.insert(
                        *t,
                        vec![Annotation {
                            type_name: type_name.to_owned(),
                            confidence: 0.9,
                        }],
                    );
                }
                page
            })
            .collect()
    }

    fn concert_sod() -> Sod {
        SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("date", Multiplicity::One)
            .build()
    }

    #[test]
    fn end_to_end_wrapper_extracts_objects() {
        let sample = annotated_pages(&[2, 3, 1, 2]);
        let wrapper =
            generate_wrapper(&sample, &concert_sod(), &DiffConfig::default()).expect("wrapper");
        assert!(wrapper.quality > 0.5);
        assert_eq!(wrapper.object_name, "concert");
        let unseen =
            parse("<body><ul><li><div>Metallica</div><div>May 11, 2010</div></li></ul></body>");
        let objects = wrapper.extract_document(&unseen);
        assert_eq!(objects.len(), 1);
        assert_eq!(
            objects[0].to_string(),
            "concert{artist=\"Metallica\", date=\"May 11, 2010\"}"
        );
    }

    #[test]
    fn aborts_when_two_required_types_are_never_annotated() {
        // One missing type is completable by elimination; two fire the
        // §III-E abort.
        let sample = annotated_pages(&[2, 2, 2]);
        let sod = SodBuilder::tuple("concert")
            .entity("artist", Multiplicity::One)
            .entity("price", Multiplicity::One)
            .entity("venue", Multiplicity::One)
            .build();
        let err = generate_wrapper(&sample, &sod, &DiffConfig::default()).expect_err("abort");
        assert!(matches!(err, WrapperError::Aborted));
    }

    #[test]
    fn empty_sample_errors() {
        let err = generate_wrapper(&[], &concert_sod(), &DiffConfig::default())
            .expect_err("empty sample");
        assert!(matches!(err, WrapperError::EmptySample));
    }

    #[test]
    fn extract_source_concatenates_pages() {
        let sample = annotated_pages(&[2, 3, 1, 2]);
        let wrapper =
            generate_wrapper(&sample, &concert_sod(), &DiffConfig::default()).expect("wrapper");
        let docs: Vec<Document> = sample.iter().map(|p| p.doc.clone()).collect();
        let objects = wrapper.extract_source(&docs);
        assert_eq!(objects.len(), 2 + 3 + 1 + 2);
    }

    #[test]
    fn quality_reflects_conflicts() {
        let sample = annotated_pages(&[2, 3, 1, 2]);
        let wrapper =
            generate_wrapper(&sample, &concert_sod(), &DiffConfig::default()).expect("wrapper");
        // Clean source: no conflict splits.
        assert_eq!(wrapper.conflict_splits, 0);
        assert!((wrapper.quality - 1.0).abs() < 0.25);
    }

    // ------------------------------------------------------- repair

    /// Concert-shaped pages with *page-unique* values (like real
    /// sites: only template tokens repeat across pages), with a
    /// configurable cell tag and list-container tag. `page_offset`
    /// keeps a second batch's values disjoint from the first's.
    fn varied_pages(
        counts: &[usize],
        cell: &str,
        list: &str,
        page_offset: usize,
    ) -> Vec<AnnotatedPage> {
        counts
            .iter()
            .enumerate()
            .map(|(p, &n)| {
                let p = p + page_offset;
                let recs: String = (0..n)
                    .map(|i| {
                        format!(
                            "<li><{cell}>Band{p}x{i}</{cell}>\
                             <{cell}>May {}{i}, 2010</{cell}></li>",
                            p + 1
                        )
                    })
                    .collect();
                let mut page = AnnotatedPage {
                    doc: parse(&format!("<body><{list}>{recs}</{list}></body>")),
                    annotations: Map::new(),
                };
                let texts: Vec<_> = page
                    .doc
                    .descendants(page.doc.root())
                    .filter(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
                    .collect();
                for (idx, t) in texts.iter().enumerate() {
                    let type_name = if idx % 2 == 0 { "artist" } else { "date" };
                    page.annotations.insert(
                        *t,
                        vec![Annotation {
                            type_name: type_name.to_owned(),
                            confidence: 0.9,
                        }],
                    );
                }
                page
            })
            .collect()
    }

    /// Unannotated drifted documents for repair.
    fn drifted_docs(counts: &[usize], cell: &str, list: &str) -> Vec<Document> {
        varied_pages(counts, cell, list, 100)
            .into_iter()
            .map(|p| p.doc)
            .collect()
    }

    fn induced() -> Wrapper {
        let sample = varied_pages(&[2, 3, 1, 2], "div", "ul", 0);
        generate_wrapper(&sample, &concert_sod(), &DiffConfig::default()).expect("wrapper")
    }

    #[test]
    fn repair_absorbs_separator_drift() {
        let wrapper = induced();
        let docs = drifted_docs(&[2, 3, 1, 2, 2, 3], "p", "ul");
        let outcome = repair_wrapper(&wrapper, &concert_sod(), &docs, &RepairConfig::default())
            .expect("separator drift must repair");
        assert!(outcome.report.coverage >= 0.99);
        assert!(outcome.report.remapped_paths > 0, "paths must have shifted");

        // The patched wrapper extracts from an unseen drifted page.
        let unseen = parse("<body><ul><li><p>Metallica</p><p>May 11, 2010</p></li></ul></body>");
        let objects = outcome.wrapper.extract_document(&unseen);
        assert_eq!(objects.len(), 1);
        assert_eq!(
            objects[0].to_string(),
            "concert{artist=\"Metallica\", date=\"May 11, 2010\"}"
        );
    }

    #[test]
    fn repair_is_identity_shaped_on_undrifted_pages() {
        let wrapper = induced();
        let docs = drifted_docs(&[2, 3, 1, 2, 2, 3], "div", "ul");
        let outcome = repair_wrapper(&wrapper, &concert_sod(), &docs, &RepairConfig::default())
            .expect("clean pages must repair trivially");
        assert_eq!(outcome.report.remapped_paths, 0);
        // Stable ids of mapped nodes survive.
        let s = outcome.report.summary;
        assert_eq!(s.unmatched_old, 0);
        let old_ids: Vec<u64> = wrapper.template.nodes.iter().map(|n| n.stable_id).collect();
        for node in &outcome.wrapper.template.nodes {
            assert!(
                old_ids.contains(&node.stable_id),
                "node gained a fresh id on an undrifted tree"
            );
        }
    }

    #[test]
    fn repair_declines_container_redesign() {
        let wrapper = induced();
        let docs = drifted_docs(&[2, 3, 1, 2, 2, 3], "p", "ol");
        let err = repair_wrapper(&wrapper, &concert_sod(), &docs, &RepairConfig::default())
            .expect_err("container redesign must fall back");
        assert!(
            matches!(
                err,
                RepairError::ContainerChanged | RepairError::NodeUnmatched { .. }
            ),
            "unexpected repair error: {err}"
        );
    }

    #[test]
    fn repair_declines_empty_sample() {
        let wrapper = induced();
        let err = repair_wrapper(&wrapper, &concert_sod(), &[], &RepairConfig::default())
            .expect_err("empty sample");
        assert!(matches!(err, RepairError::EmptySample));
    }

    #[test]
    fn repaired_stable_ids_survive_while_fresh_nodes_get_new_ones() {
        let wrapper = induced();
        let max_old = wrapper.template.max_stable_id();
        let docs = drifted_docs(&[2, 3, 1, 2, 2, 3], "p", "ul");
        let outcome =
            repair_wrapper(&wrapper, &concert_sod(), &docs, &RepairConfig::default()).expect("ok");
        for (n, node) in outcome.wrapper.template.nodes.iter().enumerate() {
            if node.stable_id > max_old {
                // Fresh node: must not be one the mapping reads.
                assert_ne!(n, outcome.wrapper.mapping.record.anchor);
            }
        }
    }
}
