//! Live-telemetry plumbing for the serving daemon: tail-based trace
//! retention and the structured access log.
//!
//! **Tail sampling.** Retaining every request's span tree is pointless
//! at scale — the buffer wraps and the interesting traces are exactly
//! the rare ones. [`TraceSampler`] keeps three bounded rings, one per
//! [`TraceKind`]: requests that were *slow* (service time at or above
//! a windowed-p99-derived threshold, see
//! `ServiceShared::slow_threshold`), requests that *errored*, and
//! requests that were *shed* by admission control. The full span tree
//! of a qualifying request is copied out of the observability buffer
//! at completion time — an O(buffer) scan paid only by qualifying
//! requests — and is retrievable later via `trace slow|errors|shed`
//! even after the main buffer has wrapped.
//!
//! **Access log.** One canonical JSONL line per request (trace id,
//! source, outcome, queue-wait vs service split, batch membership,
//! response bytes, wrapper revision), appended to `--access-log` with
//! size-bounded rotation: when a line would push the file past
//! `--access-log-max-bytes`, the file is renamed to `<path>.1`
//! (replacing the previous rotation) and a fresh file is started.
//! Write failures never propagate into request handling — they bump a
//! drop counter surfaced in `status.live` and warn on stderr once.

use objectrunner_obs::{Obs, SpanRecord};
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Retained traces per [`TraceKind`] ring.
pub const DEFAULT_RETAINED_PER_KIND: usize = 16;

/// Span cap per retained trace (a runaway trace tree must not pin the
/// whole buffer's worth of memory in a ring slot).
pub const MAX_SPANS_PER_TRACE: usize = 512;

/// Why a trace was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    Slow,
    Error,
    Shed,
}

impl TraceKind {
    /// Protocol spelling, as used by `{"cmd":"trace","kind":…}`.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Slow => "slow",
            TraceKind::Error => "errors",
            TraceKind::Shed => "shed",
        }
    }

    pub fn parse(s: &str) -> Option<TraceKind> {
        match s {
            "slow" => Some(TraceKind::Slow),
            "errors" => Some(TraceKind::Error),
            "shed" => Some(TraceKind::Shed),
            _ => None,
        }
    }

    fn index(self) -> usize {
        match self {
            TraceKind::Slow => 0,
            TraceKind::Error => 1,
            TraceKind::Shed => 2,
        }
    }
}

/// One retained request: identity, why it qualified, and its full
/// span tree as of completion.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    pub kind: TraceKind,
    pub trace: u64,
    /// Service time (queue wait excluded) of the retained request.
    pub latency_micros: u64,
    /// Wall-clock completion time.
    pub wall_unix_micros: u64,
    pub spans: Vec<SpanRecord>,
    /// Whether the span tree hit [`MAX_SPANS_PER_TRACE`].
    pub truncated: bool,
}

/// Bounded per-kind rings of retained traces. `&self` throughout,
/// shared across the worker pool.
#[derive(Debug)]
pub struct TraceSampler {
    capacity: usize,
    rings: [Mutex<VecDeque<RetainedTrace>>; 3],
    retained: [AtomicU64; 3],
    evicted: AtomicU64,
}

impl TraceSampler {
    pub fn new(capacity: usize) -> TraceSampler {
        TraceSampler {
            capacity: capacity.max(1),
            rings: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            retained: std::array::from_fn(|_| AtomicU64::new(0)),
            evicted: AtomicU64::new(0),
        }
    }

    /// Retain `trace`'s span tree under `kind`, evicting the oldest
    /// entry of that kind when the ring is full.
    pub fn offer(
        &self,
        obs: &Obs,
        kind: TraceKind,
        trace: u64,
        latency_micros: u64,
        wall_unix_micros: u64,
    ) {
        let mut spans = obs.spans_for_trace(trace);
        let truncated = spans.len() > MAX_SPANS_PER_TRACE;
        spans.truncate(MAX_SPANS_PER_TRACE);
        let entry = RetainedTrace {
            kind,
            trace,
            latency_micros,
            wall_unix_micros,
            spans,
            truncated,
        };
        let mut ring = self.rings[kind.index()].lock().expect("sampler poisoned");
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(entry);
        self.retained[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// The newest `limit` retained traces of `kind`, oldest first.
    pub fn dump(&self, kind: TraceKind, limit: usize) -> Vec<RetainedTrace> {
        let ring = self.rings[kind.index()].lock().expect("sampler poisoned");
        let skip = ring.len().saturating_sub(limit);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Cumulative retained counts: `(slow, errors, shed)`.
    pub fn retained_counts(&self) -> (u64, u64, u64) {
        (
            self.retained[0].load(Ordering::Relaxed),
            self.retained[1].load(Ordering::Relaxed),
            self.retained[2].load(Ordering::Relaxed),
        )
    }

    /// Retained traces later pushed out of a full ring.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// Counters surfaced in `status.live.access_log`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessLogStats {
    pub written: u64,
    pub rotations: u64,
    pub dropped: u64,
    pub current_bytes: u64,
}

#[derive(Debug)]
struct LogFile {
    out: Option<File>,
    bytes: u64,
}

/// The structured JSONL access log with size-bounded rotation. One
/// mutex around the file handle — access-log writes are one
/// `write_all` per request and never block on rotation I/O longer
/// than a rename.
#[derive(Debug)]
pub struct AccessLog {
    path: PathBuf,
    max_bytes: u64,
    file: Mutex<LogFile>,
    written: AtomicU64,
    rotations: AtomicU64,
    dropped: AtomicU64,
    warned: AtomicBool,
}

impl AccessLog {
    /// Open (append) the log at `path`, rotating once any write would
    /// push the file past `max_bytes`.
    pub fn open(path: impl Into<PathBuf>, max_bytes: u64) -> std::io::Result<AccessLog> {
        let path = path.into();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let out = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = out.metadata()?.len();
        Ok(AccessLog {
            path,
            max_bytes: max_bytes.max(1),
            file: Mutex::new(LogFile {
                out: Some(out),
                bytes,
            }),
            written: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            warned: AtomicBool::new(false),
        })
    }

    /// Where rotated history goes (one generation is kept).
    pub fn rotated_path(&self) -> PathBuf {
        PathBuf::from(format!("{}.1", self.path.display()))
    }

    /// Append one line (newline added here). Never fails the request:
    /// I/O errors increment the drop counter and warn once.
    pub fn write_line(&self, line: &str) {
        let mut file = self.file.lock().expect("access log poisoned");
        let len = line.len() as u64 + 1;
        if file.bytes > 0 && file.bytes + len > self.max_bytes {
            // Rotate: current file becomes `<path>.1` (replacing the
            // previous rotation), then start fresh.
            file.out = None;
            let rotated = match std::fs::rename(&self.path, self.rotated_path()) {
                Ok(()) => true,
                Err(e) => {
                    self.drop_line(&format!("rotate {}: {e}", self.path.display()));
                    false
                }
            };
            match OpenOptions::new()
                .create(true)
                .append(true)
                .open(&self.path)
            {
                Ok(out) => {
                    file.bytes = if rotated {
                        0
                    } else {
                        out.metadata().map(|m| m.len()).unwrap_or(0)
                    };
                    file.out = Some(out);
                    if rotated {
                        self.rotations.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(e) => {
                    self.drop_line(&format!("reopen {}: {e}", self.path.display()));
                }
            }
        }
        let Some(out) = file.out.as_mut() else {
            self.drop_line("no open file");
            return;
        };
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        match out.write_all(&buf) {
            Ok(()) => {
                file.bytes += len;
                self.written.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => self.drop_line(&format!("write {}: {e}", self.path.display())),
        }
    }

    fn drop_line(&self, why: &str) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        if !self.warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "objectrunner-serve: access log dropping lines ({why}); see status.live.access_log"
            );
        }
    }

    pub fn stats(&self) -> AccessLogStats {
        AccessLogStats {
            written: self.written.load(Ordering::Relaxed),
            rotations: self.rotations.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            current_bytes: self.file.lock().expect("access log poisoned").bytes,
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "objectrunner-telemetry-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn sampler_rings_are_bounded_and_per_kind() {
        let obs = Obs::enabled();
        let sampler = TraceSampler::new(2);
        for i in 0..4u64 {
            let span = obs.trace("serve.extract");
            let trace = span.trace_id();
            span.finish();
            sampler.offer(&obs, TraceKind::Slow, trace, 1_000 + i, 0);
        }
        let slow = sampler.dump(TraceKind::Slow, 10);
        assert_eq!(slow.len(), 2, "ring bounded at capacity");
        assert_eq!(slow[0].latency_micros, 1_002, "oldest evicted first");
        assert_eq!(slow[1].latency_micros, 1_003);
        assert!(slow.iter().all(|t| t.spans.len() == 1));
        assert!(sampler.dump(TraceKind::Error, 10).is_empty());
        assert_eq!(sampler.retained_counts(), (4, 0, 0));
        assert_eq!(sampler.evicted(), 2);
    }

    #[test]
    fn sampler_dump_limit_keeps_the_newest() {
        let obs = Obs::enabled();
        let sampler = TraceSampler::new(8);
        for i in 0..5u64 {
            sampler.offer(&obs, TraceKind::Error, 1000 + i, i, 0);
        }
        let dumped = sampler.dump(TraceKind::Error, 2);
        assert_eq!(dumped.len(), 2);
        assert_eq!(dumped[0].trace, 1003);
        assert_eq!(dumped[1].trace, 1004);
    }

    #[test]
    fn access_log_rotates_under_a_tiny_cap() {
        let dir = scratch("rotate");
        let path = dir.join("access.jsonl");
        let log = AccessLog::open(&path, 64).expect("open");
        let line = r#"{"trace":1,"outcome":"ok","bytes":120}"#; // 38 bytes
        for _ in 0..4 {
            log.write_line(line);
        }
        let stats = log.stats();
        assert_eq!(stats.written, 4);
        assert!(stats.rotations >= 1, "tiny cap must rotate: {stats:?}");
        assert_eq!(stats.dropped, 0);
        let current = std::fs::read_to_string(&path).expect("current log");
        let rotated = std::fs::read_to_string(log.rotated_path()).expect("rotated log");
        let total = current.lines().count() + rotated.lines().count();
        // One generation of history is kept: at least the last cap's
        // worth of lines survive, all parseable.
        assert!(total >= 2, "kept {total} lines");
        for l in current.lines().chain(rotated.lines()) {
            assert_eq!(l, line);
        }
    }

    #[test]
    fn access_log_append_resumes_byte_accounting() {
        let dir = scratch("resume");
        let path = dir.join("access.jsonl");
        {
            let log = AccessLog::open(&path, 1 << 20).expect("open");
            log.write_line("{\"a\":1}");
        }
        let log = AccessLog::open(&path, 1 << 20).expect("reopen");
        assert_eq!(
            log.stats().current_bytes,
            8,
            "reopen picks up the existing file size"
        );
    }
}
