//! # objectrunner-bench
//!
//! Criterion benchmarks for the ObjectRunner reproduction:
//!
//! * `wrapping_time` — wrapper-generation wall-clock per domain (the
//!   paper reports 4–9 s per source on 2012 hardware; §IV) and the
//!   "negligible" extraction time.
//! * `annotation` — recognizer/annotation throughput (Algorithm 1's
//!   dominant cost).
//! * `html_parsing` — the substrate: tokenizer, DOM builder, cleaner,
//!   layout/segmentation.
//! * `tables` — end-to-end per-source timing for each system (the
//!   comparison workload behind Tables I/III).
//! * `ablation` — design-choice ablations called out in DESIGN.md:
//!   annotations guard on/off, main-block simplification on/off,
//!   ordinal differentiation on/off, support parameter 3/4/5.
//!
//! Shared fixtures live here so benches stay small.

use objectrunner_core::pipeline::{Pipeline, PipelineConfig, PipelineOutcome};
use objectrunner_core::sample::SampleConfig;
use objectrunner_webgen::{generate_site, knowledge, Domain, PageKind, SiteSpec, Source};

/// A deterministic benchmark source per domain.
pub fn bench_source(domain: Domain, pages: usize) -> Source {
    let spec = SiteSpec::clean(
        &format!("bench-{}", domain.name()),
        domain,
        PageKind::List,
        pages,
        0xbe9c + pages as u64,
    );
    generate_site(&spec)
}

/// The standard pipeline for a benchmark source.
pub fn bench_pipeline(domain: Domain, config: PipelineConfig) -> Pipeline {
    Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2)).with_config(config)
}

/// Default benchmark pipeline configuration (sample of 20 pages).
pub fn bench_config() -> PipelineConfig {
    PipelineConfig {
        sample: SampleConfig {
            sample_size: 20,
            ..SampleConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// Run the full pipeline on a source; panics on failure (benchmark
/// sources are clean by construction).
pub fn run_pipeline(domain: Domain, source: &Source, config: PipelineConfig) -> PipelineOutcome {
    bench_pipeline(domain, config)
        .run_on_html(&source.pages)
        .expect("benchmark source wraps")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_run() {
        let source = bench_source(Domain::Cars, 10);
        assert_eq!(source.pages.len(), 10);
        let outcome = run_pipeline(
            Domain::Cars,
            &source,
            PipelineConfig {
                sample: SampleConfig {
                    sample_size: 8,
                    ..SampleConfig::default()
                },
                ..PipelineConfig::default()
            },
        );
        assert!(!outcome.objects.is_empty());
    }
}
