//! Version-stamped `Arc` swap slots — the lock-free read path of the
//! serving core.
//!
//! A [`Slot`] holds one `Arc<T>` plus a monotonically increasing
//! version stamp. Writers ([`Slot::store`] / [`Slot::update`])
//! publish a replacement `Arc` under a short mutex and bump the
//! version with `Release` ordering; they are rare (induction, repair,
//! a new source warming from disk). Readers go through a
//! [`SlotReader`], which caches the `(version, Arc)` pair it saw
//! last: the steady-state read is **one atomic `Acquire` load** of
//! the version stamp and an `Arc` clone — no mutex, no syscall, no
//! allocation. Only when the stamp moved (a revision bump) does the
//! reader briefly take the slot's mutex to refresh its cache.
//!
//! This is the safe-Rust shape of the "arc-swap" pattern: the mutex
//! exists solely to make `Arc` replacement and cloning atomic with
//! respect to each other (safe reclamation without hazard pointers),
//! and the version stamp keeps it off the hot path entirely. The
//! serving core stores two things in slots: each source's
//! [`StoredWrapper`](objectrunner_store::StoredWrapper) snapshot, and
//! the source-registry map itself — so a cached `extract` touches no
//! lock from request parse to response render.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A swappable `Arc<T>` with a version stamp. Cheap to read through a
/// [`SlotReader`]; writes serialize on an internal mutex.
#[derive(Debug)]
pub struct Slot<T> {
    version: AtomicU64,
    value: Mutex<Arc<T>>,
}

impl<T> Slot<T> {
    pub fn new(value: Arc<T>) -> Slot<T> {
        Slot {
            version: AtomicU64::new(1),
            value: Mutex::new(value),
        }
    }

    /// Current version stamp (starts at 1, bumps on every store).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// The slow path: take the mutex, clone the current `Arc`, and
    /// report the version it belongs to. [`SlotReader::get`] calls
    /// this only when its cached version is stale.
    pub fn load(&self) -> (u64, Arc<T>) {
        let guard = self.value.lock().expect("slot poisoned");
        // Read the stamp *inside* the lock so the pair is consistent:
        // a concurrent store updates value and version under the same
        // mutex.
        (self.version.load(Ordering::Acquire), Arc::clone(&guard))
    }

    /// Publish a replacement value and bump the version. Readers see
    /// the new `Arc` on their next version check; in-flight requests
    /// keep their old snapshot alive until they drop it.
    pub fn store(&self, value: Arc<T>) {
        let mut guard = self.value.lock().expect("slot poisoned");
        *guard = value;
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Read-modify-write under the slot's mutex: `f` maps the current
    /// value to its replacement atomically with respect to other
    /// writers. Used for the source registry (clone map → insert →
    /// publish).
    pub fn update(&self, f: impl FnOnce(&T) -> Arc<T>) {
        let mut guard = self.value.lock().expect("slot poisoned");
        let next = f(&guard);
        *guard = next;
        self.version.fetch_add(1, Ordering::Release);
    }
}

/// A reader-side cache over one [`Slot`]. Each pool worker (and the
/// stdin loop) owns its readers, so the hot path never shares mutable
/// state between threads.
#[derive(Debug)]
pub struct SlotReader<T> {
    cached: Option<(u64, Arc<T>)>,
}

// Manual impl: the derive would demand `T: Default`, which an empty
// cache has no use for.
impl<T> Default for SlotReader<T> {
    fn default() -> SlotReader<T> {
        SlotReader::new()
    }
}

impl<T> SlotReader<T> {
    pub fn new() -> SlotReader<T> {
        SlotReader { cached: None }
    }

    /// The current value of `slot`: one atomic load plus an `Arc`
    /// clone when the cached version is still current, a brief mutex
    /// refresh otherwise.
    pub fn get(&mut self, slot: &Slot<T>) -> Arc<T> {
        self.get_versioned(slot).1
    }

    /// [`SlotReader::get`] plus the version stamp the value belongs
    /// to — callers that later need to detect "did a writer swap this
    /// out from under me" compare the stamp against
    /// [`Slot::version`].
    pub fn get_versioned(&mut self, slot: &Slot<T>) -> (u64, Arc<T>) {
        let version = slot.version();
        if let Some((cached_version, value)) = &self.cached {
            if *cached_version == version {
                return (version, Arc::clone(value));
            }
        }
        let (version, value) = slot.load();
        self.cached = Some((version, Arc::clone(&value)));
        (version, value)
    }

    /// Drop the cache (tests; also useful after a source is replaced
    /// wholesale).
    pub fn invalidate(&mut self) {
        self.cached = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn reader_sees_stores_in_version_order() {
        let slot = Slot::new(Arc::new(1u64));
        let mut reader = SlotReader::new();
        assert_eq!(*reader.get(&slot), 1);
        let v1 = slot.version();
        slot.store(Arc::new(2));
        assert!(slot.version() > v1);
        assert_eq!(*reader.get(&slot), 2);
        // Unchanged slot: the cached Arc is returned without a refresh.
        assert_eq!(*reader.get(&slot), 2);
    }

    #[test]
    fn update_is_read_modify_write() {
        let slot: Slot<Vec<u32>> = Slot::new(Arc::new(vec![1]));
        slot.update(|v| {
            let mut next = v.clone();
            next.push(2);
            Arc::new(next)
        });
        let mut reader = SlotReader::new();
        assert_eq!(*reader.get(&slot), vec![1, 2]);
    }

    #[test]
    fn in_flight_snapshots_survive_a_swap() {
        let slot = Slot::new(Arc::new(String::from("rev1")));
        let mut reader = SlotReader::new();
        let held = reader.get(&slot);
        slot.store(Arc::new(String::from("rev2")));
        // The old snapshot stays alive for whoever holds it …
        assert_eq!(&*held, "rev1");
        // … while new reads observe the replacement.
        assert_eq!(&*reader.get(&slot), "rev2");
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        let slot = Arc::new(Slot::new(Arc::new(0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut reader = SlotReader::new();
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = *reader.get(&slot);
                        assert!(v >= last, "values must be monotone ({v} < {last})");
                        last = v;
                    }
                });
            }
            for i in 1..=1000u64 {
                slot.store(Arc::new(i));
            }
            stop.store(true, Ordering::Relaxed);
        });
        let mut reader = SlotReader::new();
        assert_eq!(*reader.get(&slot), 1000);
    }
}
