//! Automatic annotation of pages (paper §III-B).
//!
//! "The annotation is done by assigning an attribute to the DOM node
//! containing the text that matched the given type. Multiple
//! annotations may be assigned to a given node. … Annotations will
//! also be propagated upwards in the DOM tree to ancestors as long as
//! these nodes have only one child (i.e., on a linear path) or all
//! children have the same annotation."

use objectrunner_html::{Document, FxHashMap, NodeId, NodeKind, Symbol};
use objectrunner_knowledge::compiled::{CompiledRecognizerSet, MatchScratch};
use objectrunner_knowledge::recognizer::{RecognizerSet, TypeMatch};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One type annotation on a DOM node.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// The entity type name from the SOD.
    pub type_name: String,
    /// Recognizer confidence.
    pub confidence: f64,
}

/// A page together with its node annotations.
#[derive(Debug, Clone)]
pub struct AnnotatedPage {
    pub doc: Document,
    /// Annotations per node; absent key = unannotated.
    pub annotations: HashMap<NodeId, Vec<Annotation>>,
}

/// The annotation map of one page: annotations per node, absent key =
/// unannotated. Sampling keeps these maps *next to* borrowed documents
/// (one map per page index) so annotation rounds never clone a DOM.
pub type AnnotationMap = HashMap<NodeId, Vec<Annotation>>;

/// The single *best* annotation of a node in `annotations`, if any:
/// highest confidence wins; ties broken by type name for determinism.
pub fn best_annotation_in(annotations: &AnnotationMap, id: NodeId) -> Option<&Annotation> {
    annotations.get(&id).into_iter().flatten().max_by(|a, b| {
        a.confidence
            .partial_cmp(&b.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.type_name.cmp(&a.type_name))
    })
}

impl AnnotatedPage {
    /// Annotations on a node (empty slice when none).
    pub fn annotations_of(&self, id: NodeId) -> &[Annotation] {
        self.annotations.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The single *best* annotation of a node, if any: highest
    /// confidence wins; ties broken by type name for determinism.
    pub fn best_annotation(&self, id: NodeId) -> Option<&Annotation> {
        best_annotation_in(&self.annotations, id)
    }

    /// Number of annotation assignments of a given type on the page.
    pub fn count_of_type(&self, type_name: &str) -> usize {
        self.annotations
            .values()
            .flatten()
            .filter(|a| a.type_name == type_name)
            .count()
    }

    /// Total number of annotated nodes.
    pub fn annotated_node_count(&self) -> usize {
        self.annotations.len()
    }
}

/// Annotate a page against every type of `recognizers` (or a chosen
/// subset via [`annotate_page_types`]).
pub fn annotate_page(doc: Document, recognizers: &RecognizerSet) -> AnnotatedPage {
    let types: Vec<&str> = recognizers.annotation_order();
    annotate_page_types(doc, recognizers, &types)
}

/// Annotate a page against the listed types only (Algorithm 1
/// processes types in selectivity order and may stop early; the caller
/// controls which types run).
pub fn annotate_page_types(
    doc: Document,
    recognizers: &RecognizerSet,
    types: &[&str],
) -> AnnotatedPage {
    let mut page = AnnotatedPage {
        doc,
        annotations: HashMap::new(),
    };
    for &type_name in types {
        annotate_type(&mut page, recognizers, type_name);
    }
    propagate_upwards(&mut page);
    page
}

/// Add annotations of one more type to an already-annotated page
/// (one "annotation round" of Algorithm 1).
pub fn annotate_type(page: &mut AnnotatedPage, recognizers: &RecognizerSet, type_name: &str) {
    annotate_type_into(&page.doc, &mut page.annotations, recognizers, type_name);
}

/// [`annotate_type`] over a borrowed document and a detached annotation
/// map — the form sampling uses so a round can run over `&[Document]`
/// without cloning any page.
pub fn annotate_type_into(
    doc: &Document,
    annotations: &mut AnnotationMap,
    recognizers: &RecognizerSet,
    type_name: &str,
) {
    let Some(recognizer) = recognizers.get(type_name) else {
        return;
    };
    for id in doc.descendants(doc.root()) {
        let NodeKind::Text(text) = &doc.node(id).kind else {
            continue;
        };
        if let Some(m) = recognizer.recognize(text) {
            let anns = annotations.entry(id).or_default();
            if !anns.iter().any(|a| a.type_name == type_name) {
                anns.push(Annotation {
                    type_name: type_name.to_owned(),
                    confidence: m.confidence * m.coverage.max(0.5),
                });
            }
        }
    }
}

/// Upward propagation: an element inherits an annotation when it has a
/// single annotated child, or when all children carry the same
/// annotation type.
pub fn propagate_upwards(page: &mut AnnotatedPage) {
    propagate_upwards_into(&page.doc, &mut page.annotations);
}

/// [`propagate_upwards`] over a borrowed document and a detached
/// annotation map.
pub fn propagate_upwards_into(doc: &Document, annotations: &mut AnnotationMap) {
    // Reversed preorder is a post-order: every node comes after all of
    // its descendants, which is the only ordering propagation needs
    // (each node reads its direct children only). No depth
    // recomputation, no sort.
    let order: Vec<NodeId> = doc.descendants(doc.root()).collect();
    for &id in order.iter().rev() {
        if !matches!(doc.node(id).kind, NodeKind::Element { .. }) {
            continue;
        }
        let children = doc.children(id);
        if children.is_empty() {
            continue;
        }
        let inherited: Option<Annotation> = if children.len() == 1 {
            best_annotation_in(annotations, children[0]).cloned()
        } else {
            // All children share one annotation type?
            let first = best_annotation_in(annotations, children[0]).cloned();
            match first {
                Some(ann)
                    if children.iter().all(|&c| {
                        best_annotation_in(annotations, c)
                            .map(|a| a.type_name == ann.type_name)
                            .unwrap_or(false)
                    }) =>
                {
                    Some(ann)
                }
                _ => None,
            }
        };
        if let Some(ann) = inherited {
            let anns = annotations.entry(id).or_default();
            if !anns.iter().any(|a| a.type_name == ann.type_name) {
                anns.push(ann);
            }
        }
    }
}

/// Number of memo-cache shards (power of two; shard choice is a mask
/// over the interned symbol index).
const SHARD_COUNT: usize = 64;

thread_local! {
    /// Per-thread compiled-matcher scratch — workers never contend on
    /// match state, only on the (sharded) memo cache.
    static SCRATCH: std::cell::RefCell<MatchScratch> =
        std::cell::RefCell::new(MatchScratch::new());
}

/// The matching text nodes of one page with their all-type matches,
/// in document order ([`Annotator::page_matches`]).
pub type PageMatches = Vec<(NodeId, Arc<Vec<(u32, TypeMatch)>>)>;

/// One memo shard: interned text → its (shared) all-type matches.
type MemoShard = RwLock<FxHashMap<Symbol, Arc<Vec<(u32, TypeMatch)>>>>;

/// The compiled, memoizing annotation engine.
///
/// Wraps a [`CompiledRecognizerSet`] (one-pass multi-type matching)
/// with a sharded `Symbol → matches` cache, so a text that repeats —
/// across nodes, pages, annotation rounds, or support re-runs — is
/// matched once and then served from the memo. The cached value is the
/// *all-type* result; per-round calls project the types they need from
/// it.
///
/// Determinism: the cached value is a pure function of the text (the
/// compiled engine reproduces the naive recognizers exactly), so cache
/// hits can never change an annotation — only the hit/miss counters
/// are scheduling-dependent, and those feed stats, never results.
/// `Annotator` is `Send + Sync` and is shared by reference across the
/// executor's workers.
#[derive(Debug)]
pub struct Annotator {
    compiled: CompiledRecognizerSet,
    shards: Vec<MemoShard>,
    /// The shared no-match value (most texts match nothing; one
    /// allocation serves them all).
    empty: Arc<Vec<(u32, TypeMatch)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Annotator {
    /// Compile `recognizers` and wrap them with an empty memo cache.
    pub fn new(recognizers: &RecognizerSet) -> Annotator {
        Annotator::from_compiled(CompiledRecognizerSet::compile(recognizers))
    }

    /// Wrap an already-compiled set.
    pub fn from_compiled(compiled: CompiledRecognizerSet) -> Annotator {
        Annotator {
            compiled,
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            empty: Arc::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The compiled recognizer set behind this annotator.
    pub fn compiled(&self) -> &CompiledRecognizerSet {
        &self.compiled
    }

    /// Memo-cache hits so far (monotone; stats only).
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Memo-cache misses (= unique texts matched) so far.
    pub fn cache_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// All type matches of `text`, memoized. Pairs are
    /// `(type_index, match)` in the compiled set's annotation order
    /// ([`CompiledRecognizerSet::type_name`] resolves indices).
    pub fn matches_for(&self, text: &str) -> Arc<Vec<(u32, TypeMatch)>> {
        let sym = Symbol::intern(text);
        let shard = &self.shards[sym.index() & (SHARD_COUNT - 1)];
        if let Some(hit) = shard.read().expect("annotator shard poisoned").get(&sym) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let computed = SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let mut out = Vec::new();
            self.compiled.match_all(text, &mut scratch, &mut out);
            if out.is_empty() {
                Arc::clone(&self.empty)
            } else {
                Arc::new(out)
            }
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut shard = shard.write().expect("annotator shard poisoned");
        // A racing worker may have inserted meanwhile; both computed
        // the same pure value, keep the first.
        Arc::clone(shard.entry(sym).or_insert(computed))
    }

    /// The matches of every *matching* text node of a page, in document
    /// order. One DOM traversal + one memo lookup per text node; nodes
    /// with no match of any type are omitted (they can never produce an
    /// annotation). Sampling computes this once per page and feeds it
    /// to [`Annotator::annotate_from_matches`] on every later round.
    pub fn page_matches(&self, doc: &Document) -> PageMatches {
        let mut out = Vec::new();
        for id in doc.descendants(doc.root()) {
            let NodeKind::Text(text) = &doc.node(id).kind else {
                continue;
            };
            let matches = self.matches_for(text);
            if !matches.is_empty() {
                out.push((id, matches));
            }
        }
        out
    }

    /// One annotation round of `type_name` over precomputed
    /// [`Annotator::page_matches`] — equivalent to
    /// [`Annotator::annotate_type_into`] without re-walking the DOM.
    pub fn annotate_from_matches(
        &self,
        matches: &PageMatches,
        annotations: &mut AnnotationMap,
        type_name: &str,
    ) {
        let Some(type_idx) = self.compiled.type_index(type_name) else {
            return;
        };
        for (id, ms) in matches {
            if let Some((_, m)) = ms.iter().find(|(t, _)| *t == type_idx) {
                push_annotation(annotations, *id, type_name, m);
            }
        }
    }

    /// Cached equivalent of [`annotate_type_into`]: one annotation
    /// round of `type_name` over the page's text nodes.
    pub fn annotate_type_into(
        &self,
        doc: &Document,
        annotations: &mut AnnotationMap,
        type_name: &str,
    ) {
        let Some(type_idx) = self.compiled.type_index(type_name) else {
            return;
        };
        for id in doc.descendants(doc.root()) {
            let NodeKind::Text(text) = &doc.node(id).kind else {
                continue;
            };
            let matches = self.matches_for(text);
            if let Some((_, m)) = matches.iter().find(|(t, _)| *t == type_idx) {
                push_annotation(annotations, id, type_name, m);
            }
        }
    }

    /// Annotate every listed type in **one** DOM traversal: each text
    /// node costs one memo lookup, and the types are projected from the
    /// all-type cached result in the order given (matching the naive
    /// per-type rounds' per-node annotation order).
    pub fn annotate_types_into(
        &self,
        doc: &Document,
        annotations: &mut AnnotationMap,
        types: &[&str],
    ) {
        let indices: Vec<Option<u32>> = types.iter().map(|t| self.compiled.type_index(t)).collect();
        for id in doc.descendants(doc.root()) {
            let NodeKind::Text(text) = &doc.node(id).kind else {
                continue;
            };
            let matches = self.matches_for(text);
            if matches.is_empty() {
                continue;
            }
            for (type_name, idx) in types.iter().zip(&indices) {
                let Some(idx) = idx else { continue };
                if let Some((_, m)) = matches.iter().find(|(t, _)| t == idx) {
                    push_annotation(annotations, id, type_name, m);
                }
            }
        }
    }
}

fn push_annotation(annotations: &mut AnnotationMap, id: NodeId, type_name: &str, m: &TypeMatch) {
    let anns = annotations.entry(id).or_default();
    if !anns.iter().any(|a| a.type_name == type_name) {
        anns.push(Annotation {
            type_name: type_name.to_owned(),
            confidence: m.confidence * m.coverage.max(0.5),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_html::parse;
    use objectrunner_knowledge::gazetteer::Gazetteer;
    use objectrunner_knowledge::recognizer::Recognizer;

    fn concert_recognizers() -> RecognizerSet {
        let mut artists = Gazetteer::new();
        artists.insert("Metallica", 0.95, 5.0);
        artists.insert("Madonna", 0.92, 8.0);
        let mut set = RecognizerSet::new();
        set.insert("artist", Recognizer::dictionary(artists));
        set.insert("date", Recognizer::predefined_date());
        set
    }

    #[test]
    fn annotates_matching_text_nodes() {
        let doc = parse("<li><div>Metallica</div><div>Monday May 11, 8:00pm</div></li>");
        let page = annotate_page(doc, &concert_recognizers());
        let texts: Vec<NodeId> = page
            .doc
            .descendants(page.doc.root())
            .filter(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
            .collect();
        assert_eq!(
            page.best_annotation(texts[0])
                .expect("artist ann")
                .type_name,
            "artist"
        );
        assert_eq!(
            page.best_annotation(texts[1]).expect("date ann").type_name,
            "date"
        );
    }

    #[test]
    fn propagates_to_single_child_ancestors() {
        // <div><span><a>Metallica</a></span></div>: the paper's linear
        // path — all three elements get the artist annotation.
        let doc = parse("<div><span><a>Metallica</a></span></div>");
        let page = annotate_page(doc, &concert_recognizers());
        for tag in ["a", "span", "div"] {
            let el = page.doc.elements_by_tag(page.doc.root(), tag)[0];
            assert_eq!(
                page.best_annotation(el).map(|a| a.type_name.as_str()),
                Some("artist"),
                "tag {tag}"
            );
        }
    }

    #[test]
    fn propagates_when_all_children_agree() {
        let mut g = Gazetteer::new();
        g.insert("Jane Austen", 0.9, 3.0);
        g.insert("Fiona Stafford", 0.9, 3.0);
        let mut set = RecognizerSet::new();
        set.insert("author", Recognizer::dictionary(g));
        let doc = parse("<span><b>Jane Austen</b><b>Fiona Stafford</b></span>");
        let page = annotate_page(doc, &set);
        let span = page.doc.elements_by_tag(page.doc.root(), "span")[0];
        assert_eq!(
            page.best_annotation(span).map(|a| a.type_name.as_str()),
            Some("author")
        );
    }

    #[test]
    fn does_not_propagate_across_mixed_children() {
        let doc = parse("<li><div>Metallica</div><div>Monday May 11, 8:00pm</div></li>");
        let page = annotate_page(doc, &concert_recognizers());
        let li = page.doc.elements_by_tag(page.doc.root(), "li")[0];
        assert!(page.best_annotation(li).is_none());
    }

    #[test]
    fn unmatched_text_is_unannotated() {
        let doc = parse("<div>some random words</div>");
        let page = annotate_page(doc, &concert_recognizers());
        assert_eq!(page.annotated_node_count(), 0);
    }

    #[test]
    fn multiple_annotations_on_one_node() {
        // "10019" is both a plausible zip (address) and matched by a
        // dictionary — multiple annotations must coexist.
        let mut g = Gazetteer::new();
        g.insert("10019", 0.6, 2.0);
        let mut set = RecognizerSet::new();
        set.insert("zipcode_dict", Recognizer::dictionary(g));
        set.insert("address", Recognizer::predefined_address());
        let doc = parse("<span>10019</span>");
        let page = annotate_page(doc, &set);
        let text = page
            .doc
            .descendants(page.doc.root())
            .find(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
            .expect("text node");
        assert_eq!(page.annotations_of(text).len(), 2);
    }

    #[test]
    fn count_of_type_counts_assignments() {
        let doc = parse("<ul><li>Metallica</li><li>Madonna</li></ul>");
        let page = annotate_page(doc, &concert_recognizers());
        // 2 text nodes + 2 propagated to <li> (single child each); the
        // <ul> also inherits since both children agree.
        assert!(page.count_of_type("artist") >= 4);
    }

    #[test]
    fn annotator_matches_naive_annotation() {
        let recs = concert_recognizers();
        let annotator = Annotator::new(&recs);
        let html = "<ul><li><b>Metallica</b> live</li>\
                    <li>Monday May 11, 8:00pm</li>\
                    <li>Madonna</li><li>random words</li></ul>";
        let types: Vec<&str> = recs.annotation_order();

        let naive = annotate_page(parse(html), &recs);

        let doc = parse(html);
        let mut cached: AnnotationMap = HashMap::new();
        for t in &types {
            annotator.annotate_type_into(&doc, &mut cached, t);
        }
        propagate_upwards_into(&doc, &mut cached);
        assert_eq!(naive.annotations, cached);

        // The one-traversal multi-type round agrees too.
        let mut multi: AnnotationMap = HashMap::new();
        annotator.annotate_types_into(&doc, &mut multi, &types);
        propagate_upwards_into(&doc, &mut multi);
        assert_eq!(naive.annotations, multi);
    }

    #[test]
    fn annotator_memoizes_repeated_texts() {
        let recs = concert_recognizers();
        let annotator = Annotator::new(&recs);
        let doc = parse("<ul><li>Metallica</li><li>Metallica</li><li>Metallica</li></ul>");
        let mut map: AnnotationMap = HashMap::new();
        annotator.annotate_type_into(&doc, &mut map, "artist");
        assert_eq!(annotator.cache_misses(), 1, "one unique text");
        assert_eq!(annotator.cache_hits(), 2);
        // A second round over the same page is all hits.
        annotator.annotate_type_into(&doc, &mut map, "date");
        assert_eq!(annotator.cache_misses(), 1);
        assert_eq!(annotator.cache_hits(), 5);
    }

    #[test]
    fn incremental_round_api() {
        let doc = parse("<div>Metallica</div>");
        let recs = concert_recognizers();
        let mut page = AnnotatedPage {
            doc,
            annotations: HashMap::new(),
        };
        annotate_type(&mut page, &recs, "artist");
        assert_eq!(page.annotated_node_count(), 1);
        annotate_type(&mut page, &recs, "artist"); // idempotent
        let text = page
            .doc
            .descendants(page.doc.root())
            .find(|&id| matches!(page.doc.node(id).kind, NodeKind::Text(_)))
            .expect("text");
        assert_eq!(page.annotations_of(text).len(), 1);
    }
}
