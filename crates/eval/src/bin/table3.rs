//! Regenerate Table III: ObjectRunner vs ExAlg vs RoadRunner.

use objectrunner_eval::tables::{corpus_sources, render_table3, table3};

fn main() {
    objectrunner_eval::parse_stats_json_flag(std::env::args().skip(1).collect());
    eprintln!("generating corpus…");
    let sources = corpus_sources();
    eprintln!("running OR, EA and RR on every source…");
    let cmp = table3(&sources);
    print!("{}", render_table3(&cmp));
}
