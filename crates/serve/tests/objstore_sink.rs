//! The object-store sink through the protocol layer: extraction
//! persists de-duplicated objects with provenance, the query surface
//! (`query`/`get`/`store-status`/`compact`) answers over them, and a
//! daemon started *without* `--object-store` keeps its old response
//! shapes and rejects store commands loudly.

use objectrunner_serve::{ServeConfig, Service};
use objectrunner_store::Json;
use objectrunner_webgen::{generate_site, Domain, PageKind, SiteSpec};
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "objectrunner-objstore-sink-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A daemon with (or without) an object store attached.
fn service(tag: &str, with_store: bool) -> Service {
    let dir = scratch_dir(tag);
    Service::new(ServeConfig {
        store_dir: dir.join("wrappers"),
        object_store: with_store.then(|| dir.join("objects")),
        threads: Some(2),
        ..ServeConfig::default()
    })
}

fn request(cmd: &str, source: &str, domain: Option<&str>, pages: &[String]) -> String {
    let mut fields = vec![
        ("cmd".to_owned(), Json::str(cmd)),
        ("source".to_owned(), Json::str(source)),
    ];
    if let Some(d) = domain {
        fields.push(("domain".to_owned(), Json::str(d)));
    }
    fields.push((
        "pages".to_owned(),
        Json::Arr(pages.iter().map(Json::str).collect()),
    ));
    Json::Obj(fields).render()
}

fn respond(service: &mut Service, line: &str) -> Json {
    let raw = service.handle_line(line);
    let json = Json::parse(&raw).expect("responses are valid JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {raw}"
    );
    json
}

fn induce_and_extract(service: &mut Service, name: &str, pages: &[String]) -> Json {
    respond(service, &request("induce", name, Some("Books"), pages));
    respond(service, &request("extract", name, None, pages))
}

fn books_pages() -> Vec<String> {
    generate_site(&SiteSpec::clean(
        "shop",
        Domain::Books,
        PageKind::List,
        12,
        17_003,
    ))
    .pages
}

#[test]
fn extraction_persists_and_the_query_surface_answers() {
    let mut service = service("full", true);
    let pages = books_pages();
    let extract = induce_and_extract(&mut service, "shop", &pages);

    // The extract response reports what the sink did with the batch.
    let store = extract.get("store").expect("store section");
    let ingested = store.get("ingested").and_then(Json::as_i64).unwrap();
    let new = store.get("new").and_then(Json::as_i64).unwrap();
    assert!(new > 0, "fresh store starts empty");
    assert_eq!(ingested, new, "every object is first-seen");
    assert_eq!(store.get("skipped").and_then(Json::as_i64), Some(0));

    // Walk the whole store through cursor pagination.
    let mut keys: Vec<String> = Vec::new();
    let mut cursor = Json::Null;
    loop {
        let mut req = vec![
            ("cmd".to_owned(), Json::str("query")),
            ("domain".to_owned(), Json::str("Books")),
            ("limit".to_owned(), Json::int(7)),
        ];
        if let Json::Str(c) = &cursor {
            req.push(("cursor".to_owned(), Json::str(c)));
        }
        let page = respond(&mut service, &Json::Obj(req).render());
        for hit in page.get("hits").and_then(Json::as_arr).unwrap() {
            keys.push(hit.get("key").and_then(Json::as_str).unwrap().to_owned());
        }
        cursor = page.get("next_cursor").cloned().unwrap();
        if cursor.is_null() {
            break;
        }
    }
    assert_eq!(keys.len() as i64, new, "pagination covers every object");
    let mut sorted = keys.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(
        sorted, keys,
        "hits arrive in identity-key order, no repeats"
    );

    // `get` returns the record with per-attribute provenance naming
    // the synthesized inline-page ids.
    let get = respond(
        &mut service,
        &format!(r#"{{"cmd":"get","key":"{}"}}"#, keys[0]),
    );
    assert_eq!(get.get("found").and_then(Json::as_bool), Some(true));
    let attrs = get
        .get("hit")
        .and_then(|h| h.get("attrs"))
        .and_then(Json::as_arr)
        .expect("hit.attrs");
    assert!(!attrs.is_empty());
    for attr in attrs {
        let prov = attr.get("prov").expect("attr provenance");
        assert_eq!(prov.get("source").and_then(Json::as_str), Some("shop"));
        assert_eq!(prov.get("revision").and_then(Json::as_i64), Some(1));
        let page = prov.get("page").and_then(Json::as_str).unwrap();
        assert!(page.starts_with("page-"), "inline pages get ids: {page}");
    }

    // A second extract of the same pages is pure duplicates: nothing
    // new is written and the status counters say so.
    let again = respond(&mut service, &request("extract", "shop", None, &pages));
    let store = again.get("store").expect("store section");
    assert_eq!(store.get("new").and_then(Json::as_i64), Some(0));
    assert_eq!(store.get("duplicates").and_then(Json::as_i64), Some(new));

    let status = respond(&mut service, r#"{"cmd":"store-status"}"#);
    assert_eq!(status.get("live_objects").and_then(Json::as_i64), Some(new));
    assert_eq!(
        status.get("ingested").and_then(Json::as_i64),
        Some(2 * new),
        "both batches counted"
    );
    assert_eq!(
        status
            .get("per_domain")
            .and_then(|d| d.get("Books"))
            .and_then(Json::as_i64),
        Some(new)
    );
    assert_eq!(status.get("last_compaction_unix_micros"), Some(&Json::Null));

    // The daemon status mirrors the same section.
    let daemon = respond(&mut service, r#"{"cmd":"status"}"#);
    let section = daemon.get("object_store").expect("object_store section");
    assert_eq!(
        section.get("live_objects").and_then(Json::as_i64),
        Some(new)
    );

    // Compaction preserves every hit byte-for-byte.
    let before = respond(&mut service, r#"{"cmd":"query","limit":500}"#);
    let compact = respond(&mut service, r#"{"cmd":"compact"}"#);
    assert_eq!(
        compact.get("live_records").and_then(Json::as_i64),
        Some(new)
    );
    let after = respond(&mut service, r#"{"cmd":"query","limit":500}"#);
    assert_eq!(
        before.get("hits").map(Json::render),
        after.get("hits").map(Json::render),
        "compaction must not change query results"
    );
    let status = respond(&mut service, r#"{"cmd":"store-status"}"#);
    assert_eq!(status.get("compactions").and_then(Json::as_i64), Some(1));
    assert!(status
        .get("last_compaction_unix_micros")
        .and_then(Json::as_i64)
        .is_some());
}

#[test]
fn filters_project_and_match_normalized() {
    let mut service = service("filters", true);
    let pages = books_pages();
    induce_and_extract(&mut service, "shop", &pages);

    let all = respond(&mut service, r#"{"cmd":"query","limit":500}"#);
    let first = &all.get("hits").and_then(Json::as_arr).unwrap()[0];
    let title = first
        .get("object")
        .and_then(|o| o.get("fields"))
        .and_then(Json::as_arr)
        .and_then(|fields| {
            fields.iter().find_map(|f| {
                (f.get("t").and_then(Json::as_str) == Some("title"))
                    .then(|| f.get("v").and_then(Json::as_str).unwrap().to_owned())
            })
        })
        .expect("a book has a title");

    // eq under normalization: querying the uppercased title matches.
    let q = Json::Obj(vec![
        ("cmd".to_owned(), Json::str("query")),
        (
            "where".to_owned(),
            Json::Arr(vec![Json::Obj(vec![
                ("attr".to_owned(), Json::str("title")),
                ("value".to_owned(), Json::str(title.to_uppercase())),
            ])]),
        ),
        ("select".to_owned(), Json::Arr(vec![Json::str("title")])),
    ]);
    let hits = respond(&mut service, &q.render());
    let hits = hits.get("hits").and_then(Json::as_arr).unwrap();
    assert!(!hits.is_empty(), "normalized eq must match");
    for hit in hits {
        assert!(hit.get("object").is_none(), "select drops the full object");
        let attrs = hit.get("attrs").and_then(Json::as_arr).unwrap();
        assert!(attrs
            .iter()
            .all(|a| a.get("t").and_then(Json::as_str) == Some("title")));
    }

    // A malformed clause is an error, not an empty result.
    let raw =
        service.handle_line(r#"{"cmd":"query","where":[{"attr":"t","op":"like","value":"x"}]}"#);
    let bad = Json::parse(&raw).unwrap();
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
}

#[test]
fn without_a_store_the_surface_declines_and_shapes_are_unchanged() {
    let mut service = service("absent", false);
    let pages = books_pages();
    let extract = induce_and_extract(&mut service, "shop", &pages);
    assert!(
        extract.get("store").is_none(),
        "no sink, no store section — response shape is unchanged"
    );
    let daemon = respond(&mut service, r#"{"cmd":"status"}"#);
    assert_eq!(daemon.get("object_store"), Some(&Json::Null));
    for cmd in ["query", "get", "store-status", "compact"] {
        let raw = service.handle_line(&format!(r#"{{"cmd":"{cmd}"}}"#));
        let json = Json::parse(&raw).unwrap();
        assert_eq!(
            json.get("ok").and_then(Json::as_bool),
            Some(false),
            "{cmd} must fail without a store"
        );
        assert!(
            json.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("--object-store"),
            "{cmd} names the fix"
        );
    }
}

/// Run the real daemon binary once over `lines`, return its parsed
/// responses. Cold process: empty interner tables, store state comes
/// only from disk.
fn daemon_session(dir: &Path, lines: &[String]) -> Vec<Json> {
    use std::io::Write;
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_objectrunner-serve"))
        .arg("--store")
        .arg(dir.join("wrappers"))
        .arg("--object-store")
        .arg(dir.join("objects"))
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn daemon");
    {
        let mut stdin = child.stdin.take().unwrap();
        for line in lines {
            writeln!(stdin, "{line}").unwrap();
        }
    }
    let output = child.wait_with_output().expect("daemon exits at EOF");
    assert!(output.status.success(), "daemon failed");
    let responses: Vec<Json> = String::from_utf8(output.stdout)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).expect("valid response"))
        .collect();
    assert_eq!(responses.len(), lines.len());
    for r in &responses {
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    }
    responses
}

#[test]
fn cursors_stay_valid_across_cold_daemon_processes() {
    let dir = scratch_dir("cold");
    let pages_dir = dir.join("pages");
    std::fs::create_dir_all(&pages_dir).unwrap();
    for (i, page) in books_pages().iter().enumerate() {
        std::fs::write(pages_dir.join(format!("page-{i:03}.html")), page).unwrap();
    }
    let dir_req = |cmd: &str| {
        format!(
            r#"{{"cmd":"{cmd}","source":"shop","domain":"Books","dir":"{}"}}"#,
            pages_dir.display()
        )
    };

    // Process 1 harvests into the store; process 2 hands out a cursor;
    // process 3 — another cold start — resumes from it.
    daemon_session(&dir, &[dir_req("induce"), dir_req("extract")]);
    let handed_out = daemon_session(
        &dir,
        &[
            r#"{"cmd":"query","limit":5}"#.to_owned(),
            r#"{"cmd":"query","limit":500}"#.to_owned(),
        ],
    );
    let cursor = handed_out[0]
        .get("next_cursor")
        .and_then(Json::as_str)
        .expect("more than 5 objects")
        .to_owned();
    let all_hits = handed_out[1].get("hits").and_then(Json::as_arr).unwrap();
    let expected_rest: Vec<String> = all_hits[5..].iter().map(Json::render).collect();

    let resumed = daemon_session(
        &dir,
        &[format!(
            r#"{{"cmd":"query","limit":500,"cursor":"{cursor}"}}"#
        )],
    );
    let rest: Vec<String> = resumed[0]
        .get("hits")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(Json::render)
        .collect();
    assert_eq!(
        rest, expected_rest,
        "a cursor from one process resumes exactly in another"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sink_survives_daemon_restart_and_cursors_stay_valid() {
    let dir = scratch_dir("restart");
    let config = || ServeConfig {
        store_dir: dir.join("wrappers"),
        object_store: Some(dir.join("objects")),
        threads: Some(2),
        ..ServeConfig::default()
    };
    let pages = books_pages();
    let mut first = Service::new(config());
    induce_and_extract(&mut first, "shop", &pages);
    let page1 = respond(&mut first, r#"{"cmd":"query","limit":5}"#);
    let cursor = page1
        .get("next_cursor")
        .and_then(Json::as_str)
        .expect("more than 5 objects")
        .to_owned();
    let live = respond(&mut first, r#"{"cmd":"store-status"}"#)
        .get("live_objects")
        .and_then(Json::as_i64)
        .unwrap();
    let rest_warm = respond(
        &mut first,
        &format!(r#"{{"cmd":"query","limit":500,"cursor":"{cursor}"}}"#),
    );
    drop(first);

    // A fresh daemon over the same directory sees the same objects,
    // and the cursor handed out before the restart still works —
    // pagination order is a property of the persisted keys.
    let mut second = Service::new(config());
    let status = respond(&mut second, r#"{"cmd":"store-status"}"#);
    assert_eq!(
        status.get("live_objects").and_then(Json::as_i64),
        Some(live)
    );
    let rest_cold = respond(
        &mut second,
        &format!(r#"{{"cmd":"query","limit":500,"cursor":"{cursor}"}}"#),
    );
    assert_eq!(
        rest_warm.get("hits").map(Json::render),
        rest_cold.get("hits").map(Json::render),
        "a pre-restart cursor resumes identically"
    );
}
