//! Read-only file mapping without a libc dependency.
//!
//! Streaming extraction reads corpus pages from disk; `mmap` lets the
//! kernel page file contents in and out on demand, so a million-page
//! run's resident set stays at the working window instead of the sum
//! of everything read. The crate graph deliberately has no `libc`, so
//! on Linux x86_64/aarch64 the two needed syscalls (`mmap`/`munmap`)
//! are issued directly via inline assembly; everywhere else — and
//! whenever the mapping fails (pipes, empty files, exotic
//! filesystems) — [`MappedFile`] falls back to an ordinary buffered
//! read, which is always correct, just not as cheap.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::arch::asm;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// Linux error returns are `-4095..=-1` encoded in the result.
    fn check(ret: isize) -> Option<*const u8> {
        if (-4095..0).contains(&ret) {
            None
        } else {
            Some(ret as *const u8)
        }
    }

    /// Map `len` bytes of `fd` read-only; `None` on any kernel error.
    pub fn mmap_readonly(fd: i32, len: usize) -> Option<*const u8> {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") 9isize => ret, // SYS_mmap
                in("rdi") 0usize,               // addr hint
                in("rsi") len,
                in("rdx") PROT_READ,
                in("r10") MAP_PRIVATE,
                in("r8") fd as isize,
                in("r9") 0usize,                // offset
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        #[cfg(target_arch = "aarch64")]
        unsafe {
            asm!(
                "svc 0",
                in("x8") 222usize, // SYS_mmap
                inlateout("x0") 0usize => ret,
                in("x1") len,
                in("x2") PROT_READ,
                in("x3") MAP_PRIVATE,
                in("x4") fd as isize,
                in("x5") 0usize,
                options(nostack)
            );
        }
        check(ret)
    }

    /// Unmap a region mapped by [`mmap_readonly`].
    pub fn munmap(ptr: *const u8, len: usize) {
        let _ret: isize;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") 11isize => _ret, // SYS_munmap
                in("rdi") ptr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        #[cfg(target_arch = "aarch64")]
        unsafe {
            asm!(
                "svc 0",
                in("x8") 215usize, // SYS_munmap
                inlateout("x0") ptr as usize => _ret,
                in("x1") len,
                options(nostack)
            );
        }
    }
}

/// The bytes of one file: a private read-only mapping when the
/// platform supports it, an in-memory copy otherwise. Dropping unmaps.
pub struct MappedFile {
    /// `Some((ptr, len))` when the bytes live in a kernel mapping.
    mapping: Option<(*const u8, usize)>,
    /// The read fallback (empty and unused while mapped).
    buf: Vec<u8>,
}

// A private read-only mapping is immutable shared memory.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Map (or read) a whole file.
    pub fn open(path: &Path) -> io::Result<MappedFile> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if len > 0 {
            use std::os::fd::AsRawFd;
            if let Some(ptr) = sys::mmap_readonly(file.as_raw_fd(), len) {
                return Ok(MappedFile {
                    mapping: Some((ptr, len)),
                    buf: Vec::new(),
                });
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(MappedFile { mapping: None, buf })
    }

    /// The file's bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match self.mapping {
            // SAFETY: the region is mapped read-only for self's
            // lifetime and unmapped only in Drop.
            Some((ptr, len)) => unsafe { std::slice::from_raw_parts(ptr, len) },
            None => &self.buf,
        }
    }

    /// Whether the bytes come from a kernel mapping (diagnostics only —
    /// behavior is identical either way).
    pub fn is_mapped(&self) -> bool {
        self.mapping.is_some()
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Some((ptr, len)) = self.mapping.take() {
            sys::munmap(ptr, len);
        }
    }
}

/// A mapped file validated as UTF-8 at open time, usable wherever a
/// `&str` page is expected (the streaming extraction source).
pub struct MappedText {
    file: MappedFile,
}

impl MappedText {
    /// Map a file and check it is valid UTF-8.
    pub fn open(path: &Path) -> io::Result<MappedText> {
        let file = MappedFile::open(path)?;
        if std::str::from_utf8(file.as_bytes()).is_err() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not valid UTF-8", path.display()),
            ));
        }
        Ok(MappedText { file })
    }

    /// The file's text.
    pub fn as_str(&self) -> &str {
        // SAFETY: validated in `open`; the mapping is immutable.
        unsafe { std::str::from_utf8_unchecked(self.file.as_bytes()) }
    }
}

impl AsRef<str> for MappedText {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("objectrunner-mmap-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn maps_file_contents_exactly() {
        let dir = tmp_dir("exact");
        let path = dir.join("a.html");
        let body = "<html><body>café &amp; crème</body></html>".repeat(100);
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(body.as_bytes()))
            .expect("write");
        let mapped = MappedFile::open(&path).expect("open");
        assert_eq!(mapped.as_bytes(), body.as_bytes());
        let text = MappedText::open(&path).expect("open");
        assert_eq!(text.as_str(), body);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_file_is_fine() {
        let dir = tmp_dir("empty");
        let path = dir.join("empty.html");
        std::fs::write(&path, "").expect("write");
        let mapped = MappedFile::open(&path).expect("open");
        assert!(mapped.as_bytes().is_empty());
        assert!(!mapped.is_mapped(), "empty files use the read path");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_utf8_is_rejected_as_text() {
        let dir = tmp_dir("utf8");
        let path = dir.join("bad.html");
        std::fs::write(&path, [0xff, 0xfe, 0x41]).expect("write");
        assert!(MappedFile::open(&path).is_ok(), "bytes always load");
        assert!(MappedText::open(&path).is_err(), "text validates");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_errors() {
        let dir = tmp_dir("missing");
        assert!(MappedFile::open(&dir.join("nope.html")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn many_mappings_drop_cleanly() {
        let dir = tmp_dir("many");
        let path = dir.join("page.html");
        std::fs::write(&path, "<p>x</p>".repeat(1000)).expect("write");
        // Far more open/drop cycles than default vm.max_map_count would
        // allow if Drop leaked mappings.
        for _ in 0..10_000 {
            let m = MappedFile::open(&path).expect("open");
            assert_eq!(m.as_bytes().len(), 8 * 1000);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
