//! Determinism guard for the staged, parallel pipeline.
//!
//! The stage graph fans per-page work out across a worker pool, but
//! every reduction is index-ordered and every whole-source fold is
//! sequential, so `threads = 8` must produce a `PipelineOutcome` that
//! is byte-identical to `threads = 1` — same objects *in the same
//! extraction order*, same wrapper, same support/rerun accounting.
//!
//! The comparison here deliberately does NOT sort the extracted
//! instances (unlike the golden snapshots): page-scan order is part of
//! what fan-out could scramble, so it is part of what we pin.
//!
//! Note: both runs share this process's interners, so Symbol/PathId
//! ids are identical by construction here; the cross-process variant
//! of this guard is `ci.sh` running the whole suite (including the
//! golden snapshots) under `OBJECTRUNNER_THREADS=8` in a fresh process.

use objectrunner::core::pipeline::{Pipeline, PipelineConfig, PipelineError, PipelineOutcome};
use objectrunner::core::sample::SampleConfig;
use objectrunner::webgen::{generate_site, knowledge, Domain, PageKind, SiteSpec};
use proptest::prelude::*;

/// Everything observable about an outcome, as one comparable string.
fn fingerprint(outcome: &PipelineOutcome) -> String {
    let objects: Vec<String> = outcome.objects.iter().map(|o| o.to_string()).collect();
    format!(
        "objects:\n{}\nwrapper: {:?}\nsupport: {} splits: {} rounds: {} reruns: {} pages: {} sample: {}",
        objects.join("\n"),
        outcome.wrapper,
        outcome.stats.support_used,
        outcome.stats.conflict_splits,
        outcome.stats.rounds,
        outcome.stats.reruns,
        outcome.stats.pages,
        outcome.stats.sample_pages,
    )
}

fn run_with_threads(
    domain: Domain,
    pages: &[String],
    threads: usize,
    sample_size: usize,
) -> Result<String, String> {
    let pipeline = Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2))
        .with_config(PipelineConfig {
            threads: Some(threads),
            sample: SampleConfig {
                sample_size,
                ..SampleConfig::default()
            },
            ..PipelineConfig::default()
        });
    match pipeline.run_on_html(pages) {
        Ok(outcome) => Ok(fingerprint(&outcome)),
        // Errors must be deterministic too: compare their rendering.
        Err(e @ PipelineError::Sample(_)) => Err(format!("{e}")),
        Err(e @ PipelineError::Wrapper(_)) => Err(format!("{e}")),
    }
}

/// The PR 1 golden corpus: same specs as `golden_equivalence.rs`.
fn golden_corpus(domain: Domain, index: usize) -> Vec<String> {
    let spec = SiteSpec::clean(
        &format!("golden-{}", domain.name()),
        domain,
        PageKind::List,
        15,
        17_000 + index as u64,
    );
    generate_site(&spec).pages
}

#[test]
fn parallel_run_is_byte_identical_on_golden_corpus() {
    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        let pages = golden_corpus(domain, i);
        let sequential = run_with_threads(domain, &pages, 1, 12);
        let parallel = run_with_threads(domain, &pages, 8, 12);
        assert_eq!(
            sequential,
            parallel,
            "{}: threads=8 diverged from threads=1",
            domain.name()
        );
        assert!(
            sequential.is_ok(),
            "{}: golden corpus must wrap",
            domain.name()
        );
    }
}

#[test]
fn oversubscribed_pool_is_also_identical() {
    // More workers than pages: every worker gets at most one item and
    // the reduction still reassembles page order.
    let pages = golden_corpus(Domain::Concerts, 0);
    assert_eq!(
        run_with_threads(Domain::Concerts, &pages, 1, 12),
        run_with_threads(Domain::Concerts, &pages, 64, 12),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized sources (domain × size × seed × sample size): the
    /// parallel run must match the sequential run on every generated
    /// source — including sources the pipeline *rejects*, where both
    /// must fail with the same error.
    #[test]
    fn parallel_matches_sequential_on_generated_sources(
        domain_idx in 0usize..Domain::ALL.len(),
        pages in 6usize..14,
        seed in 0u64..1_000,
        sample_size in 5usize..12,
    ) {
        let domain = Domain::ALL[domain_idx];
        let spec = SiteSpec::clean("determinism-prop", domain, PageKind::List, pages, seed);
        let source = generate_site(&spec).pages;
        let sequential = run_with_threads(domain, &source, 1, sample_size);
        let parallel = run_with_threads(domain, &source, 8, sample_size);
        prop_assert_eq!(sequential, parallel);
    }
}
