//! Format compatibility: a store directory committed by the v1 format
//! must keep opening byte-for-byte as the code evolves, and the
//! open∘read and open∘compact∘reopen paths must be fixed points over
//! it. The fixture under `tests/fixtures/v1-store/` was written by the
//! `regenerate_v1_fixture` test below (run with `--ignored` after a
//! deliberate format change, alongside a version bump).

use objectrunner_objstore::{Manifest, ObjectStore, Query, MANIFEST_FILE, MANIFEST_VERSION};
use objectrunner_obs::Obs;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v1-store")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "objectrunner-objstore-compat-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Copy the fixture into a scratch directory (compaction rewrites
/// files; the committed fixture must never be touched by a test run).
fn fixture_copy(tag: &str) -> PathBuf {
    let dir = scratch_dir(tag);
    for entry in std::fs::read_dir(fixture_dir()).expect("fixture dir exists — regenerate it?") {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    dir
}

fn contents(dir: &Path) -> Vec<String> {
    let store = ObjectStore::open_with(dir, 512, Obs::disabled()).expect("open");
    let result = store
        .query(
            &Query {
                limit: 500,
                ..Query::all()
            },
            None,
        )
        .expect("query");
    result.hits.iter().map(|r| r.render()).collect()
}

#[test]
fn v1_store_still_opens_with_fused_history_intact() {
    let dir = fixture_copy("open");
    let manifest_bytes = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
    assert!(
        manifest_bytes.starts_with("ORMAN v1 "),
        "fixture is not a v1 manifest: {}",
        &manifest_bytes[..20.min(manifest_bytes.len())]
    );
    // The manifest codec is a fixed point on the committed bytes.
    let manifest = Manifest::parse(&manifest_bytes).expect("v1 manifest parses");
    assert_eq!(manifest.render(), manifest_bytes);
    assert_eq!(MANIFEST_VERSION, 1, "bump: regenerate the fixture");

    let store = ObjectStore::open_with(&dir, 512, Obs::disabled()).expect("v1 store opens");
    let status = store.status();
    assert_eq!(status.live_objects, 4, "fixture holds four concerts");
    assert_eq!(status.fused, 2, "two were fused from a second source");
    assert_eq!(status.per_domain.get("Concerts"), Some(&4));
    assert!(status.dead_records > 0, "fusion left superseded versions");

    // A fused object reads back at version 2 with per-attribute
    // provenance pointing at both contributing sources.
    let record = store
        .get("artist=the nationals|date=may 1 2012")
        .expect("read")
        .expect("fused concert is live");
    assert_eq!(record.version, 2);
    let sources: Vec<&str> = (0..record.attr_prov.len())
        .map(|i| record.provenance_of(i).source.as_str())
        .collect();
    assert!(
        sources.contains(&"zvents"),
        "original attrs keep their source"
    );
    assert!(
        sources.contains(&"yellowpages"),
        "fused attr carries the fusing source"
    );
}

#[test]
fn open_compact_reopen_is_a_fixed_point_on_the_fixture() {
    let dir = fixture_copy("compact");
    let before = contents(&dir);
    assert!(!before.is_empty());

    let dropped = {
        let mut store = ObjectStore::open_with(&dir, 512, Obs::disabled()).expect("open");
        let report = store.compact(1_700_000_099_000_000, None).expect("compact");
        assert_eq!(report.live_records as usize, before.len());
        report.dropped_records
    };
    assert!(dropped > 0, "the fixture's dead versions get dropped");

    assert_eq!(contents(&dir), before, "reads unchanged after compact");
    assert_eq!(
        contents(&dir),
        before,
        "…and after reopening the compacted store"
    );
    let status = ObjectStore::open_with(&dir, 512, Obs::disabled())
        .unwrap()
        .status();
    assert_eq!(status.dead_records, 0);
    assert_eq!(status.generation, 2);
}

/// Writes the fixture. Deliberately `#[ignore]`d: it only runs by hand
/// (`cargo test -p objectrunner-objstore --test compat -- --ignored`)
/// when the format version is bumped, and its output gets committed.
#[test]
#[ignore]
fn regenerate_v1_fixture() {
    use objectrunner_objstore::{IngestContext, IngestObject};
    use objectrunner_sod::Instance;

    let dir = fixture_dir();
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut store = ObjectStore::open_with(&dir, 512, Obs::disabled()).unwrap();

    let concert = |fields: &[(&str, &str)]| Instance::Tuple {
        name: "concert".into(),
        fields: fields.iter().map(|(t, v)| Instance::atomic(t, v)).collect(),
    };
    let ctx = |source, extracted_unix_micros| IngestContext {
        source,
        domain: "Concerts",
        wrapper_revision: 1,
        repaired_from: None,
        extracted_unix_micros,
        confidence: 0.9,
        key_attrs: &["artist", "date"],
    };

    // First crawl: four concerts, no venue information.
    let offers = [
        ("The Nationals", "May 1, 2012"),
        ("Iron Harvest", "May 2, 2012"),
        ("Golden Era", "May 3, 2012"),
        ("Silver Arcade", "May 4, 2012"),
    ]
    .iter()
    .enumerate()
    .map(|(i, (artist, date))| IngestObject {
        instance: concert(&[("artist", artist), ("date", date)]),
        page_id: format!("page-{i:02}"),
    })
    .collect();
    store
        .ingest(offers, &ctx("zvents", 1_700_000_000_000_000), None)
        .unwrap();

    // Second source fills the venue gap for two of them: fusion.
    let offers = [
        ("The Nationals", "May 1, 2012", "Beacon Theatre"),
        ("Iron Harvest", "May 2, 2012", "Palace Hall"),
    ]
    .iter()
    .map(|(artist, date, theater)| IngestObject {
        instance: concert(&[("artist", artist), ("date", date), ("theater", theater)]),
        page_id: "listing-007".to_owned(),
    })
    .collect();
    let report = store
        .ingest(offers, &ctx("yellowpages", 1_700_000_050_000_000), None)
        .unwrap();
    assert_eq!(report.fused, 2);
}
