//! The shared checksummed-header framing both on-disk formats use.
//!
//! A framed file is one header line followed by the payload bytes:
//!
//! ```text
//! <MAGIC> v<version> <payload-bytes> <fnv64-hex>\n
//! <payload>
//! ```
//!
//! The header carries the format version, the payload length and an
//! FNV-1a/64 checksum of the payload, so truncation and bit rot fail
//! loudly before any payload byte is trusted. The wrapper store
//! (`ORWRAP`, see [`crate::format`]) and the object store's manifest
//! (`ORMAN`, `crates/objstore`) share this frame; their payloads
//! differ, their failure behaviour does not.

use crate::format::fnv64;

/// Frame decode failures, mapped by each format into its own typed
/// error so callers keep a single error surface per format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Wrong magic, or the header line is malformed.
    BadHeader,
    /// The version is outside the caller's supported window.
    UnsupportedVersion(u32),
    /// Payload length or checksum mismatch (truncation / corruption).
    Corrupt { expected: String, found: String },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadHeader => write!(f, "bad frame header"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            FrameError::Corrupt { expected, found } => {
                write!(f, "corrupt payload: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Serialize `payload` under a checksummed `magic` header.
pub fn encode(magic: &str, version: u32, payload: &str) -> String {
    format!(
        "{magic} v{version} {} {:016x}\n{payload}",
        payload.len(),
        fnv64(payload.as_bytes())
    )
}

/// Parse a framed file: verify magic, version window, declared length
/// and checksum, and return `(version, payload)`. Nothing in the
/// payload is interpreted.
pub fn decode<'a>(
    data: &'a str,
    magic: &str,
    min_version: u32,
    max_version: u32,
) -> Result<(u32, &'a str), FrameError> {
    let newline = data.find('\n').ok_or(FrameError::BadHeader)?;
    let header = &data[..newline];
    let payload = &data[newline + 1..];

    let mut parts = header.split(' ');
    if parts.next() != Some(magic) {
        return Err(FrameError::BadHeader);
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.strip_prefix('v'))
        .and_then(|v| v.parse().ok())
        .ok_or(FrameError::BadHeader)?;
    if !(min_version..=max_version).contains(&version) {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let declared_len: usize = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or(FrameError::BadHeader)?;
    let declared_sum = parts.next().ok_or(FrameError::BadHeader)?;
    if parts.next().is_some() {
        return Err(FrameError::BadHeader);
    }
    if payload.len() != declared_len {
        return Err(FrameError::Corrupt {
            expected: format!("{declared_len} payload bytes"),
            found: format!("{}", payload.len()),
        });
    }
    let actual_sum = format!("{:016x}", fnv64(payload.as_bytes()));
    if actual_sum != declared_sum {
        return Err(FrameError::Corrupt {
            expected: format!("checksum {declared_sum}"),
            found: actual_sum,
        });
    }
    Ok((version, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let framed = encode("ORTEST", 3, "{\"a\":1}");
        let (version, payload) = decode(&framed, "ORTEST", 1, 3).expect("decodes");
        assert_eq!(version, 3);
        assert_eq!(payload, "{\"a\":1}");
    }

    #[test]
    fn failures_are_typed() {
        let framed = encode("ORTEST", 2, "payload");
        assert_eq!(
            decode(&framed, "OTHER", 1, 2),
            Err(FrameError::BadHeader),
            "wrong magic"
        );
        assert_eq!(
            decode(&framed, "ORTEST", 3, 4),
            Err(FrameError::UnsupportedVersion(2)),
            "version window"
        );
        let truncated = &framed[..framed.len() - 2];
        assert!(matches!(
            decode(truncated, "ORTEST", 1, 2),
            Err(FrameError::Corrupt { .. })
        ));
        let mut flipped = framed.clone().into_bytes();
        let p = framed.find('\n').unwrap() + 2;
        flipped[p] ^= 0x01;
        assert!(matches!(
            decode(&String::from_utf8(flipped).unwrap(), "ORTEST", 1, 2),
            Err(FrameError::Corrupt { .. })
        ));
        assert!(decode("no newline", "ORTEST", 1, 2).is_err());
    }

    #[test]
    fn empty_payload_frames() {
        let framed = encode("ORTEST", 1, "");
        assert_eq!(decode(&framed, "ORTEST", 1, 1), Ok((1, "")));
    }
}
