//! Cross-source integration: the Web-redundancy bet of the paper.
//!
//! "As Web data tends to be very redundant, the concerts one can find
//! in the yellowpages.com site are precisely the ones from zvents.com"
//! (§IV-B2). Two sites publish overlapping concert listings with
//! different templates; ObjectRunner wraps each independently, then
//! the de-duplication stage (architecture Fig. 1) merges the two
//! extractions — removing duplicates *and* filling attributes one
//! source omits.
//!
//! Bonus: the artist recognizer is built from **three example
//! instances only** (§VI future work, implemented in
//! `knowledge::bytype`): the ontology finds the matching concept and
//! expands it Google-sets-style.
//!
//! Run with: `cargo run --release --example cross_source`

use objectrunner::core::dedup::deduplicate;
use objectrunner::core::pipeline::Pipeline;
use objectrunner::knowledge::bytype::recognizer_from_examples;
use objectrunner::knowledge::recognizer::{Recognizer, RecognizerSet};
use objectrunner::sod::{Multiplicity, SodBuilder};
use objectrunner::webgen::data;
use objectrunner::webgen::knowledge::domain_ontology;

fn main() {
    // ── A shared concert database, rendered by two different sites ──
    let concerts: Vec<(String, String, String)> = {
        let artists = data::all_artists();
        let venues = data::all_venues();
        (0..40)
            .map(|i| {
                (
                    artists[(i * 13) % artists.len()].clone(),
                    format!("May {}, 2012 8:00pm", i % 27 + 1),
                    venues[(i * 7) % venues.len()].clone(),
                )
            })
            .collect()
    };

    // Site A: ul/li layout, shows artist + date + venue.
    let site_a: Vec<String> = concerts
        .chunks(5)
        .map(|chunk| {
            let recs: String = chunk
                .iter()
                .map(|(a, d, v)| format!("<li><b>{a}</b><i>{d}</i><em>{v}</em></li>"))
                .collect();
            format!("<html><body><div class=\"m\"><ul>{recs}</ul></div></body></html>")
        })
        .collect();

    // Site B: table layout, shows artist + date only (no venue) and
    // overlaps site A on 25 of its 40 concerts.
    let site_b: Vec<String> = concerts[..25]
        .chunks(4)
        .map(|chunk| {
            let recs: String = chunk
                .iter()
                .map(|(a, d, _)| format!("<tr><td><b>{a}</b><i>{d}</i></td></tr>"))
                .collect();
            format!(
                "<html><body><div class=\"m\"><table><tbody>{recs}</tbody></table></div></body></html>"
            )
        })
        .collect();

    // ── Recognizers from three examples (§VI) ──────────────────────
    let ontology = domain_ontology();
    let artist_pool = data::all_artists();
    let examples = [
        artist_pool[0].as_str(),
        artist_pool[40].as_str(),
        artist_pool[99].as_str(),
    ];
    let (artist_dict, concepts) = recognizer_from_examples(&ontology, &examples);
    println!(
        "artist type specified by {} examples → concept {:?} → {} dictionary instances",
        examples.len(),
        concepts.first().map(|c| c.name.as_str()).unwrap_or("?"),
        artist_dict.len()
    );

    let sod_full = SodBuilder::tuple("concert")
        .entity("artist", Multiplicity::One)
        .entity("date", Multiplicity::One)
        .entity("venue", Multiplicity::Optional)
        .build();

    let mut recognizers = RecognizerSet::new();
    recognizers.insert(
        "artist",
        Recognizer::dictionary(artist_dict.with_coverage(0.4)),
    );
    recognizers.insert("date", Recognizer::predefined_date());
    recognizers.insert(
        "venue",
        Recognizer::dictionary(
            domain_ontology()
                .gazetteer_for("Venue", 1)
                .with_coverage(0.4),
        ),
    );

    // ── Wrap each source independently ─────────────────────────────
    let mut all_objects = Vec::new();
    for (label, pages) in [("site A", &site_a), ("site B", &site_b)] {
        let outcome = Pipeline::new(sod_full.clone(), recognizers.clone())
            .run_on_html(pages)
            .unwrap_or_else(|e| panic!("{label} failed: {e}"));
        println!("{label}: extracted {} objects", outcome.objects.len());
        all_objects.extend(outcome.objects);
    }

    // ── De-duplicate + fuse across sources (Fig. 1) ────────────────
    let before = all_objects.len();
    let (distinct, report) = deduplicate(all_objects, &["artist", "date"]);
    println!(
        "integration: {before} extracted → {} distinct ({} duplicates removed, {} fused)",
        distinct.len(),
        report.duplicates,
        report.fused
    );
    let with_venue = distinct
        .iter()
        .filter(|o| {
            let mut vs = Vec::new();
            o.values_of_type("venue", &mut vs);
            !vs.is_empty()
        })
        .count();
    println!(
        "{} of {} integrated concerts carry a venue (site A filled site B's gaps)",
        with_venue,
        distinct.len()
    );
    for object in distinct.iter().take(3) {
        println!("  {object}");
    }
}
