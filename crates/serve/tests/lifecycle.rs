//! The serving lifecycle end to end, through the protocol layer:
//! induce → cached extraction (no induction stages) → drift detection
//! → stale → re-induction → post-repair extraction matching a fresh
//! induction on the drifted template.

use objectrunner_core::pipeline::{Pipeline, PipelineConfig};
use objectrunner_core::sample::SampleConfig;
use objectrunner_serve::{instance_json, ServeConfig, Service};
use objectrunner_store::Json;
use objectrunner_webgen::knowledge::recognizers_for;
use objectrunner_webgen::{generate_drifted, generate_site, Domain, PageKind, SiteSpec};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "objectrunner-lifecycle-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn config(store_dir: PathBuf) -> ServeConfig {
    ServeConfig {
        store_dir,
        threads: Some(2),
        ..ServeConfig::default()
    }
}

/// Build a protocol request with inline pages.
fn request(cmd: &str, source: &str, domain: Option<&str>, pages: &[String]) -> String {
    let mut fields = vec![
        ("cmd".to_owned(), Json::str(cmd)),
        ("source".to_owned(), Json::str(source)),
    ];
    if let Some(d) = domain {
        fields.push(("domain".to_owned(), Json::str(d)));
    }
    fields.push((
        "pages".to_owned(),
        Json::Arr(pages.iter().map(Json::str).collect()),
    ));
    Json::Obj(fields).render()
}

fn respond(service: &mut Service, line: &str) -> Json {
    let raw = service.handle_line(line);
    let json = Json::parse(&raw).expect("responses are valid JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {raw}"
    );
    json
}

fn stage_names(response: &Json) -> Vec<String> {
    response
        .get("stats")
        .and_then(|s| s.get("stage_timings"))
        .and_then(Json::as_arr)
        .expect("stats.stage_timings")
        .iter()
        .map(|t| t.get("stage").and_then(Json::as_str).unwrap().to_owned())
        .collect()
}

fn object_lines(response: &Json) -> Vec<String> {
    response
        .get("objects")
        .and_then(Json::as_arr)
        .expect("objects")
        .iter()
        .map(Json::render)
        .collect()
}

#[test]
fn cached_extraction_skips_induction_and_drift_triggers_reinduction() {
    let dir = scratch_dir("drift");
    let mut service = Service::new(config(dir.clone()));

    let spec = SiteSpec::clean(
        "concerts-live",
        Domain::Concerts,
        PageKind::List,
        15,
        17_000,
    );
    let clean = generate_site(&spec);
    let drifted = generate_drifted(&spec, 0.8);

    // 1. Induce: the full pipeline runs (Wrap stage present).
    let induce = respond(
        &mut service,
        &request("induce", "concerts-live", Some("concerts"), &clean.pages),
    );
    let induced_objects = object_lines(&induce);
    assert!(!induced_objects.is_empty());
    assert!(stage_names(&induce).contains(&"wrap".to_owned()));
    assert_eq!(induce.get("revision").and_then(Json::as_i64), Some(1));

    // 2. Cached extraction, twice: both hit the cache, skip every
    // induction stage, and reproduce the induce-time objects.
    for _ in 0..2 {
        let extract = respond(
            &mut service,
            &request("extract", "concerts-live", None, &clean.pages),
        );
        assert_eq!(extract.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(extract.get("state").and_then(Json::as_str), Some("fresh"));
        assert_eq!(
            extract.get("reinduced").and_then(Json::as_bool),
            Some(false)
        );
        assert!(extract.get("drift").and_then(Json::as_f64).unwrap() < 0.01);
        let stages = stage_names(&extract);
        for absent in ["annotate", "sample", "wrap"] {
            assert!(
                !stages.contains(&absent.to_owned()),
                "{absent} ran on the cached path"
            );
        }
        assert_eq!(object_lines(&extract), induced_objects);
    }

    // 3. The site ships a redesign: drift crosses the threshold, the
    // wrapper goes stale, and — with enough buffered drifted pages —
    // re-induction fires in the same request.
    let repaired = respond(
        &mut service,
        &request("extract", "concerts-live", None, &drifted.pages),
    );
    assert_eq!(
        repaired.get("state").and_then(Json::as_str),
        Some("reinduced")
    );
    assert_eq!(
        repaired.get("reinduced").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(repaired.get("revision").and_then(Json::as_i64), Some(2));
    assert!(
        repaired.get("drift").and_then(Json::as_f64).unwrap() < 0.01,
        "post-repair drift should vanish"
    );

    // 4. The repaired extraction equals a fresh induction run directly
    // on the drifted pages — re-induction lost nothing.
    let pipeline_config = PipelineConfig {
        sample: SampleConfig {
            sample_size: 12,
            ..SampleConfig::default()
        },
        threads: Some(2),
        ..PipelineConfig::default()
    };
    let fresh = Pipeline::new(
        Domain::Concerts.sod(),
        recognizers_for(Domain::Concerts, 0.2),
    )
    .with_config(pipeline_config)
    .run_on_html(&drifted.pages)
    .expect("fresh induction on drifted pages");
    let fresh_lines: Vec<String> = fresh
        .objects
        .iter()
        .map(|o| instance_json(o).render())
        .collect();
    assert_eq!(object_lines(&repaired), fresh_lines);

    // 5. Status reflects the whole lifecycle.
    let status = respond(&mut service, "{\"cmd\":\"status\"}");
    let sources = status.get("sources").and_then(Json::as_arr).unwrap();
    assert_eq!(sources.len(), 1);
    let entry = &sources[0];
    assert_eq!(entry.get("state").and_then(Json::as_str), Some("reinduced"));
    assert_eq!(entry.get("revision").and_then(Json::as_i64), Some(2));
    assert_eq!(entry.get("drift_events").and_then(Json::as_i64), Some(1));
    assert_eq!(entry.get("extracts").and_then(Json::as_i64), Some(3));
    assert_eq!(entry.get("cache_hits").and_then(Json::as_i64), Some(3));
    let log = entry.get("log").and_then(Json::as_arr).unwrap();
    let log_text = log
        .iter()
        .filter_map(Json::as_str)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        log_text.contains("stale:"),
        "missing stale transition: {log_text}"
    );
    assert!(
        log_text.contains("reinduced:"),
        "missing reinduce transition: {log_text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrappers_survive_a_daemon_restart() {
    let dir = scratch_dir("restart");
    let spec = SiteSpec::clean("books-shop", Domain::Books, PageKind::List, 12, 17_002);
    let source = generate_site(&spec);

    let baseline = {
        let mut service = Service::new(config(dir.clone()));
        respond(
            &mut service,
            &request("induce", "books-shop", Some("books"), &source.pages),
        );
        let extract = respond(
            &mut service,
            &request("extract", "books-shop", None, &source.pages),
        );
        object_lines(&extract)
    };

    // A brand-new Service over the same store directory: the wrapper
    // warms from disk, no induce needed.
    let mut restarted = Service::new(config(dir.clone()));
    let extract = respond(
        &mut restarted,
        &request("extract", "books-shop", None, &source.pages),
    );
    assert_eq!(extract.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(object_lines(&extract), baseline);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cosmetic_drift_is_invisible_to_the_wrapper() {
    let dir = scratch_dir("cosmetic");
    let mut service = Service::new(config(dir.clone()));

    let spec = SiteSpec::clean("cars-lot", Domain::Cars, PageKind::List, 12, 17_004);
    let clean = generate_site(&spec);
    let cosmetic = generate_drifted(&spec, 0.1);

    respond(
        &mut service,
        &request("induce", "cars-lot", Some("cars"), &clean.pages),
    );
    // Attribute reorder + class rename: token paths are unchanged, so
    // drift stays zero and the wrapper stays fresh.
    let extract = respond(
        &mut service,
        &request("extract", "cars-lot", None, &cosmetic.pages),
    );
    assert_eq!(extract.get("state").and_then(Json::as_str), Some("fresh"));
    assert_eq!(extract.get("drift").and_then(Json::as_f64), Some(0.0));
    assert_eq!(
        extract.get("reinduced").and_then(Json::as_bool),
        Some(false)
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_error_responses() {
    let service = Service::new(config(scratch_dir("errors")));
    for bad in [
        "not json at all",
        "{\"cmd\":\"frobnicate\"}",
        "{\"cmd\":\"extract\",\"source\":\"nobody\",\"pages\":[\"<html></html>\"]}",
        "{\"cmd\":\"induce\",\"source\":\"x\",\"domain\":\"astrology\",\"pages\":[]}",
        "{\"cmd\":\"induce\",\"source\":\"x\",\"domain\":\"cars\"}",
    ] {
        let raw = service.handle_line(bad);
        let json = Json::parse(&raw).expect("error responses are valid JSON");
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
        assert!(json.get("error").and_then(Json::as_str).is_some());
    }
}

/// Separator-tier drift (cell tags change, the container chain holds):
/// the stale wrapper must be *repaired* — patched through the tree
/// diff, no induction stages — and the repaired extraction must be
/// byte-identical to a full re-induction on the drifted pages.
#[test]
fn separator_drift_is_repaired_without_reinduction() {
    let dir = scratch_dir("repair");
    let mut service = Service::new(config(dir.clone()));

    let mut spec = SiteSpec::clean("concerts-sep", Domain::Concerts, PageKind::List, 15, 17_100);
    spec.style = 0;
    let clean = generate_site(&spec);
    let drifted = generate_drifted(&spec, 0.25);

    respond(
        &mut service,
        &request("induce", "concerts-sep", Some("concerts"), &clean.pages),
    );
    let extract = respond(
        &mut service,
        &request("extract", "concerts-sep", None, &drifted.pages),
    );
    assert_eq!(
        extract.get("state").and_then(Json::as_str),
        Some("repaired")
    );
    assert_eq!(extract.get("repaired").and_then(Json::as_bool), Some(true));
    assert_eq!(
        extract.get("reinduced").and_then(Json::as_bool),
        Some(false)
    );
    assert_eq!(extract.get("revision").and_then(Json::as_i64), Some(2));

    // The whole request — repair included — ran no induction stage.
    let stages = stage_names(&extract);
    for absent in ["annotate", "sample", "wrap"] {
        assert!(
            !stages.contains(&absent.to_owned()),
            "{absent} ran on the repair path"
        );
    }

    // Byte-identical to a fresh induction on the drifted pages.
    let pipeline_config = PipelineConfig {
        sample: SampleConfig {
            sample_size: 12,
            ..SampleConfig::default()
        },
        threads: Some(2),
        ..PipelineConfig::default()
    };
    let fresh = Pipeline::new(
        Domain::Concerts.sod(),
        recognizers_for(Domain::Concerts, 0.2),
    )
    .with_config(pipeline_config)
    .run_on_html(&drifted.pages)
    .expect("fresh induction on drifted pages");
    let fresh_lines: Vec<String> = fresh
        .objects
        .iter()
        .map(|o| instance_json(o).render())
        .collect();
    assert_eq!(object_lines(&extract), fresh_lines);

    // Status carries the provenance and the transition log.
    let status = respond(&mut service, "{\"cmd\":\"status\"}");
    let entry = &status.get("sources").and_then(Json::as_arr).unwrap()[0];
    assert_eq!(entry.get("state").and_then(Json::as_str), Some("repaired"));
    let provenance = entry.get("repair").expect("repair provenance");
    assert_eq!(
        provenance.get("repaired_from").and_then(Json::as_i64),
        Some(1)
    );
    let log_text = entry
        .get("log")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        log_text.contains("repaired:"),
        "missing repair transition: {log_text}"
    );
    assert!(
        !log_text.contains("reinduced:"),
        "re-induction ran on a repairable tier: {log_text}"
    );
    // The config echo names the knobs an operator can tune.
    let cfg = status.get("config").expect("config echo");
    assert_eq!(cfg.get("drift_threshold").and_then(Json::as_f64), Some(0.5));
    assert_eq!(
        cfg.get("min_reinduce_pages").and_then(Json::as_i64),
        Some(6)
    );
    assert_eq!(cfg.get("repair_floor").and_then(Json::as_f64), Some(0.5));

    let _ = std::fs::remove_dir_all(&dir);
}

/// The drift detector's blind spot (E10): at strength 0.50 the Books
/// and Cars record markup changes *inside* the records, so the
/// separator slots still align — drift stays under the threshold —
/// while extraction silently returns nothing. The emptiness signal
/// must flag the wrapper stale anyway and recover in the same request.
#[test]
fn silent_misses_trigger_staleness_despite_low_drift() {
    for (domain, name, seed) in [
        (Domain::Books, "books-blind", 17_101u64),
        (Domain::Cars, "cars-blind", 17_102u64),
    ] {
        let dir = scratch_dir(name);
        let mut service = Service::new(config(dir.clone()));
        let mut spec = SiteSpec::clean(name, domain, PageKind::List, 15, seed);
        spec.style = 0;
        let clean = generate_site(&spec);
        let drifted = generate_drifted(&spec, 0.50);

        respond(
            &mut service,
            &request(
                "induce",
                name,
                Some(&domain.name().to_lowercase()),
                &clean.pages,
            ),
        );
        let extract = respond(
            &mut service,
            &request("extract", name, None, &drifted.pages),
        );

        // Drift alone would not have fired (the E10 blind-spot rows).
        assert!(
            extract.get("drift").and_then(Json::as_f64).unwrap() < 0.5
                || extract.get("repaired").and_then(Json::as_bool) == Some(true)
                || extract.get("reinduced").and_then(Json::as_bool) == Some(true),
        );
        // Non-silent handling: the wrapper must not sit "fresh" while
        // extracting nothing.
        let state = extract.get("state").and_then(Json::as_str).unwrap();
        assert!(
            state == "repaired" || state == "reinduced",
            "{name}: blind-spot drift left state '{state}'"
        );
        assert!(
            extract.get("count").and_then(Json::as_i64).unwrap() > 0,
            "{name}: no objects recovered from the blind-spot tier"
        );

        let status = respond(&mut service, "{\"cmd\":\"status\"}");
        let entry = &status.get("sources").and_then(Json::as_arr).unwrap()[0];
        let log_text = entry
            .get("log")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(
            log_text.contains("stale (silent miss)"),
            "{name}: emptiness trigger did not fire: {log_text}"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}
