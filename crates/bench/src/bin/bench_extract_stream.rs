//! Streaming-extraction trajectory point (`BENCH_extract.json`).
//!
//! Exercises the crawl-scale path end to end: a Cars wrapper is
//! induced once, two disk corpora are generated with the streaming
//! writer (N/10 and N pages, same template), and both are extracted
//! through `extract_stream` reading `mmap`ed pages from disk. The
//! document records:
//!
//! * `pages_per_sec` — streamed throughput over the big corpus;
//! * `rss_flat_ok` — `VmHWM` after the 10× corpus must sit within a
//!   fixed budget of `VmHWM` after the small one. The high-water mark
//!   is monotonic, so any O(corpus) residency in the big run would
//!   show up as growth here;
//! * `stream_equals_batch` — streamed instances, page by page, equal
//!   the materialized `extract_only` path's byte-for-byte;
//! * `automaton_speedup_vs_char_seed` — the compiled byte-level
//!   recognizer engine against the char-level engine this refactor
//!   replaced, on the recorded seed timing of the same workload.
//!
//! Output is one JSON document on stdout; `ci.sh` redirects it into a
//! scratch file and checks the sanity fields, and a recorded 100k-page
//! run is committed as `BENCH_extract.json` at the repository root.

use objectrunner_bench::{bench_config, bench_pipeline, bench_source};
use objectrunner_core::pipeline::extract_only;
use objectrunner_core::{extract_stream, StreamConfig, StreamStats};
use objectrunner_html::{clean_document, parse, CleanOptions, NodeKind};
use objectrunner_knowledge::compiled::{CompiledRecognizerSet, MatchScratch};
use objectrunner_webgen::{knowledge, write_corpus, CorpusDir, Domain, Drift, PageKind, SiteSpec};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// `match_all` µs/rep of the char-level engine (the revision this
/// refactor replaced) on the same workload — every text node of the
/// 20-page Cars bench corpus — measured on the reference machine.
const SEED_CHAR_MICROS_PER_REP: f64 = 172.2;

/// Allowed `VmHWM` growth between the small and the 10× run. The big
/// corpus is ~10× the small one on disk (~30 MB vs ~3 MB at the
/// default size), so O(corpus) residency would blow far past this.
const RSS_GROWTH_BUDGET_KB: u64 = 64 * 1024;

/// The process peak resident set, in kB, from `/proc/self/status`
/// (0 where the file does not exist — the flatness check is vacuous
/// off Linux).
fn vmhwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// Stream a corpus directory through the wrapper, counting objects.
fn stream_dir(
    dir: &Path,
    wrapper: &objectrunner_core::wrapper::Wrapper,
    main_block: Option<&objectrunner_segment::MainBlockChoice>,
    clean: &CleanOptions,
) -> StreamStats {
    let corpus = CorpusDir::open(dir).expect("bench corpus opens");
    extract_stream(
        wrapper,
        main_block,
        clean,
        corpus.pages().map(|r| r.expect("bench page maps")),
        &StreamConfig::default(),
        |_, instances| {
            black_box(&instances);
        },
    )
}

/// Best-of-8 × 400 reps of compiled `match_all` over the seed
/// workload's text nodes, in µs per rep.
fn automaton_micros_per_rep() -> f64 {
    let source = bench_source(Domain::Cars, 20);
    let mut texts: Vec<String> = Vec::new();
    for html in &source.pages {
        let mut doc = parse(html);
        clean_document(&mut doc, &CleanOptions::default());
        for id in doc.descendants(doc.root()) {
            if let NodeKind::Text(t) = &doc.node(id).kind {
                texts.push(t.clone());
            }
        }
    }
    let compiled = CompiledRecognizerSet::compile(&knowledge::recognizers_for(Domain::Cars, 0.2));
    let mut scratch = MatchScratch::new();
    let mut out = Vec::new();
    // Warm: touch every memo/code path once before timing.
    for t in &texts {
        compiled.match_all(t, &mut scratch, &mut out);
        black_box(&out);
    }
    // Min over many short rounds: the reference machine drifts between
    // frequency states, and the recorded seed number is a fast-state
    // measurement, so the comparison must capture the fast state too.
    const REPS: usize = 400;
    let mut best = u128::MAX;
    for _ in 0..20 {
        let t0 = Instant::now();
        for _ in 0..REPS {
            for t in &texts {
                compiled.match_all(t, &mut scratch, &mut out);
                black_box(&out);
            }
        }
        best = best.min(t0.elapsed().as_micros());
    }
    best as f64 / REPS as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pages_big: usize = args
        .iter()
        .position(|a| a == "--pages")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let pages_small = (pages_big / 10).max(100);

    // Timed before the corpus work: the engine comparison is the
    // noise-sensitive measurement, so it runs on a quiet machine.
    let automaton = automaton_micros_per_rep();
    let automaton_speedup = SEED_CHAR_MICROS_PER_REP / automaton.max(0.001);
    let automaton_ok = automaton_speedup >= 1.5;

    let scratch: PathBuf =
        std::env::temp_dir().join(format!("objectrunner-bench-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Same template (same name/style/seed) at two corpus sizes: page i
    // is byte-identical across both, only the page count differs.
    let seed = 0xca25;
    let spec_small = SiteSpec::clean(
        "stream-cars",
        Domain::Cars,
        PageKind::List,
        pages_small,
        seed,
    );
    let spec_big = SiteSpec::clean("stream-cars", Domain::Cars, PageKind::List, pages_big, seed);
    let t0 = Instant::now();
    write_corpus(&spec_small, &Drift::NONE, &scratch.join("small")).expect("write small corpus");
    let big_stats =
        write_corpus(&spec_big, &Drift::NONE, &scratch.join("big")).expect("write big corpus");
    let gen_micros = t0.elapsed().as_micros();

    // Induce the wrapper from the corpus' own first pages, so the
    // streamed runs replay exactly the cached-wrapper serving case.
    let sample_corpus = CorpusDir::open(&scratch.join("big")).expect("big corpus opens");
    let sample: Vec<String> = (0..30.min(sample_corpus.len()))
        .map(|i| {
            sample_corpus
                .page(i)
                .expect("sample page")
                .as_str()
                .to_owned()
        })
        .collect();
    let config = bench_config();
    let clean = config.clean.clone();
    let outcome = bench_pipeline(Domain::Cars, config)
        .run_on_html(&sample)
        .expect("bench corpus induces");
    let (wrapper, main_block) = (outcome.wrapper, outcome.main_block);
    drop(sample);

    // VmHWM is monotonic: small first, then the 10× corpus. Flat peak
    // RSS means the second number barely moves.
    let small = stream_dir(
        &scratch.join("small"),
        &wrapper,
        main_block.as_ref(),
        &clean,
    );
    let hwm_small_kb = vmhwm_kb();
    let big = stream_dir(&scratch.join("big"), &wrapper, main_block.as_ref(), &clean);
    let hwm_big_kb = vmhwm_kb();
    let rss_growth_kb = hwm_big_kb.saturating_sub(hwm_small_kb);
    let rss_flat_ok = rss_growth_kb <= RSS_GROWTH_BUDGET_KB;

    // Equality against the materialized path, after the RSS numbers
    // are taken (this deliberately materializes a page vector).
    let eq_corpus = CorpusDir::open(&scratch.join("small")).expect("small corpus opens");
    let eq_pages: Vec<String> = (0..1_000.min(eq_corpus.len()))
        .map(|i| eq_corpus.page(i).expect("eq page").as_str().to_owned())
        .collect();
    let batch = extract_only(&wrapper, main_block.as_ref(), &clean, &eq_pages, None);
    let expect: Vec<Vec<String>> = batch
        .per_page
        .iter()
        .map(|page| page.iter().map(|o| o.to_string()).collect())
        .collect();
    let mut got: Vec<Vec<String>> = Vec::with_capacity(eq_pages.len());
    extract_stream(
        &wrapper,
        main_block.as_ref(),
        &clean,
        eq_pages.iter().map(String::as_str),
        &StreamConfig::default(),
        |_, instances| got.push(instances.iter().map(|o| o.to_string()).collect()),
    );
    let stream_equals_batch = got == expect;

    let _ = std::fs::remove_dir_all(&scratch);

    println!("{{");
    println!("  \"bench\": \"extract_stream\",");
    println!("  \"threads\": {},", big.threads);
    println!("  \"pages_small\": {pages_small},");
    println!("  \"pages_big\": {pages_big},");
    println!("  \"corpus_bytes_big\": {},", big_stats.bytes);
    println!("  \"corpus_gen_micros\": {gen_micros},");
    println!("  \"small_wall_micros\": {},", small.wall_micros);
    println!("  \"big_wall_micros\": {},", big.wall_micros);
    println!("  \"pages_per_sec\": {:.1},", big.pages_per_sec());
    println!("  \"objects\": {},", big.objects);
    println!("  \"arena_peak_bytes\": {},", big.arena_peak_bytes);
    println!("  \"vmhwm_after_small_kb\": {hwm_small_kb},");
    println!("  \"vmhwm_after_big_kb\": {hwm_big_kb},");
    println!("  \"rss_growth_kb\": {rss_growth_kb},");
    println!("  \"rss_growth_budget_kb\": {RSS_GROWTH_BUDGET_KB},");
    println!("  \"rss_flat_ok\": {rss_flat_ok},");
    println!("  \"stream_equals_batch\": {stream_equals_batch},");
    println!("  \"automaton_micros_per_rep\": {automaton:.1},");
    println!("  \"seed_char_micros_per_rep\": {SEED_CHAR_MICROS_PER_REP},");
    println!("  \"automaton_speedup_vs_char_seed\": {automaton_speedup:.2},");
    println!("  \"automaton_speedup_ok\": {automaton_ok}");
    println!("}}");
}
