//! Substrate throughput: tokenizer, tolerant DOM builder, cleaner, and
//! the VIPS-style layout/segmentation pass.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use objectrunner_bench::bench_source;
use objectrunner_html::{clean_document, parse, to_html, CleanOptions};
use objectrunner_segment::{block_tree, layout_document, LayoutOptions};
use objectrunner_webgen::Domain;
use std::hint::black_box;

fn substrate(c: &mut Criterion) {
    let page = bench_source(Domain::Books, 1).pages.remove(0);
    let bytes = page.len() as u64;

    let mut group = c.benchmark_group("html_substrate");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("tokenize", |b| {
        b.iter(|| black_box(objectrunner_html::tokenize(&page)))
    });
    group.bench_function("parse", |b| b.iter(|| black_box(parse(&page))));
    group.bench_function("parse_and_clean", |b| {
        b.iter(|| {
            let mut doc = parse(&page);
            clean_document(&mut doc, &CleanOptions::default());
            black_box(doc)
        })
    });
    let doc = parse(&page);
    group.bench_function("serialize", |b| {
        b.iter(|| black_box(to_html(&doc, doc.root())))
    });
    group.bench_function("layout_and_blocks", |b| {
        let opts = LayoutOptions::default();
        b.iter(|| {
            let layout = layout_document(&doc, &opts);
            black_box(block_tree(&doc, &layout, &opts))
        })
    });
    group.finish();
}

criterion_group!(benches, substrate);
criterion_main!(benches);
