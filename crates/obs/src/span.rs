//! Hierarchical spans and the [`Obs`] handle.
//!
//! A span is one timed region of work with a name, key/value
//! attributes, and a parent — together they form per-request /
//! per-induction trace trees. The design constraints come from the
//! PR-2 executor:
//!
//! * **Safe under scoped threads** — finished spans land in a
//!   lock-sharded buffer (shard = span id mod shard count), so worker
//!   threads finishing spans concurrently contend only rarely and
//!   never against the coordinator.
//! * **Deterministic trees** — parenthood is explicit (`Span::child`),
//!   never ambient thread-local state, so the *shape* of a trace is a
//!   property of the code path, not of scheduling. Exports sort by
//!   `(trace, id)`; ids allocated on the coordinating thread are
//!   identical at any thread count, and ids allocated inside worker
//!   closures are normalized away by the determinism suite.
//! * **Zero-cost when disabled** — `Obs::disabled()` is a `const fn`
//!   producing a handle whose every operation is a single
//!   `Option::is_none` branch on an inlined method; no allocation, no
//!   atomics, no clock reads. The bench-smoke CI stage holds the
//!   enabled path to ≤2% overhead on the annotation bench.

use crate::clock::Clock;
use crate::metrics::{MetricsSnapshot, Registry};
use crate::window::{WindowConfig, WindowRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of buffer shards (power of two).
const SHARDS: usize = 16;

/// Default span-buffer capacity (per handle, across shards).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// An attribute value on a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl AttrValue {
    /// Canonical JSON rendering (floats via shortest round-trip).
    pub fn render_json(&self) -> String {
        match self {
            AttrValue::U64(v) => v.to_string(),
            AttrValue::F64(v) => {
                let s = format!("{v:?}");
                // `{:?}` on f64 always includes a `.` or exponent for
                // finite values, keeping the type stable on re-parse.
                s
            }
            AttrValue::Str(s) => format!("\"{}\"", crate::metrics::escape(s)),
        }
    }
}

/// A finished span, as stored in the buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Trace this span belongs to (one per request / induction).
    pub trace: u64,
    /// Span id, unique within the handle (1-based; 0 means "no span").
    pub id: u64,
    /// Parent span id (0 for trace roots).
    pub parent: u64,
    pub name: &'static str,
    /// Monotonic start, microseconds on the handle's clock.
    pub start_micros: u64,
    /// Wall duration, microseconds.
    pub dur_micros: u64,
    /// Summed worker CPU attributed to this span (0 when untracked).
    pub cpu_micros: u64,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

#[derive(Debug)]
pub(crate) struct ObsInner {
    clock: Clock,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    shards: Vec<Mutex<Vec<SpanRecord>>>,
    capacity_per_shard: usize,
    /// Spans discarded because a shard was full.
    dropped: AtomicU64,
    pub(crate) registry: Registry,
    /// Sliding-window mirror of the histogram registry (live-telemetry
    /// handles only; `None` keeps the plain handles' costs unchanged).
    windows: Option<WindowRegistry>,
}

/// The observability handle: clonable, thread-safe, and free to pass
/// around by value. All clones share one span buffer, one metrics
/// registry, and one clock.
#[derive(Clone, Debug)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The no-op handle. `const`, allocation-free; every method on it
    /// reduces to one branch.
    pub const fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle with the default span capacity and clock.
    pub fn enabled() -> Obs {
        Obs::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled handle holding at most `capacity` finished spans
    /// (oldest evicted first, per shard).
    pub fn with_capacity(capacity: usize) -> Obs {
        Obs::with_clock_and_capacity(Clock::system(), capacity)
    }

    /// Full control: explicit clock (tests inject a fake) + capacity.
    pub fn with_clock_and_capacity(clock: Clock, capacity: usize) -> Obs {
        Obs::build(clock, capacity, None)
    }

    /// A live-telemetry handle: like [`Obs::with_clock_and_capacity`],
    /// but every histogram record is mirrored into a sliding-window
    /// ring (see [`crate::window`]), which is what powers windowed
    /// rates and percentiles in the serving daemon's `status.live`.
    pub fn with_windows(clock: Clock, capacity: usize, windows: WindowConfig) -> Obs {
        Obs::build(clock, capacity, Some(WindowRegistry::new(windows)))
    }

    fn build(clock: Clock, capacity: usize, windows: Option<WindowRegistry>) -> Obs {
        let per_shard = (capacity / SHARDS).max(1);
        Obs {
            inner: Some(Arc::new(ObsInner {
                clock,
                next_trace: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                shards: (0..SHARDS)
                    .map(|_| Mutex::new(Vec::with_capacity(per_shard.min(64))))
                    .collect(),
                capacity_per_shard: per_shard,
                dropped: AtomicU64::new(0),
                registry: Registry::new(),
                windows,
            })),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The handle's clock (None when disabled).
    pub fn clock(&self) -> Option<&Clock> {
        self.inner.as_ref().map(|i| &i.clock)
    }

    /// Start a new trace: allocates a trace id and returns its root
    /// span. On a disabled handle this is free and the span inert.
    #[inline]
    pub fn trace(&self, name: &'static str) -> Span {
        match &self.inner {
            None => Span::inert(),
            Some(inner) => {
                let trace = inner.next_trace.fetch_add(1, Ordering::Relaxed);
                self.start_span(trace, 0, name)
            }
        }
    }

    /// Start a span inside an existing trace under an explicit parent
    /// id — the cross-layer stitch (serve request span → pipeline
    /// spans) without threading `&Span` borrows through call stacks.
    #[inline]
    pub fn span_in(&self, trace: u64, parent: u64, name: &'static str) -> Span {
        if self.inner.is_none() {
            return Span::inert();
        }
        self.start_span(trace, parent, name)
    }

    fn start_span(&self, trace: u64, parent: u64, name: &'static str) -> Span {
        let inner = self.inner.as_ref().expect("caller checked");
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        Span {
            obs: self.clone(),
            trace,
            id,
            parent,
            name,
            start_micros: inner.clock.monotonic_micros(),
            cpu_micros: 0,
            attrs: Vec::new(),
            finished: false,
        }
    }

    fn record(&self, record: SpanRecord) {
        let Some(inner) = &self.inner else { return };
        let shard = &inner.shards[(record.id as usize) & (SHARDS - 1)];
        let mut buf = shard.lock().expect("span shard poisoned");
        if buf.len() >= inner.capacity_per_shard {
            buf.remove(0);
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push(record);
    }

    /// Add to a counter. Cold-path convenience — hot loops should hold
    /// the `Arc<Counter>` from [`Obs::registry`] instead.
    #[inline]
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter(name).add(n);
        }
    }

    /// Set a gauge.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: i64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name).set(v);
        }
    }

    /// Shift a gauge by a signed delta (level tracking: in-flight
    /// requests, live connections). Cold-path convenience — hot loops
    /// should hold the `Arc<Gauge>` from [`Obs::registry`] instead.
    #[inline]
    pub fn gauge_add(&self, name: &str, delta: i64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge(name).add(delta);
        }
    }

    /// Record into a fixed-bucket histogram (created on first use).
    /// On a windows-enabled handle the value also lands in the
    /// matching sliding-window ring, stamped with the handle's clock.
    #[inline]
    pub fn histogram_record(&self, name: &str, bounds: &[u64], value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.histogram(name, bounds).record(value);
            if let Some(windows) = &inner.windows {
                windows.record(name, bounds, inner.clock.monotonic_micros(), value);
            }
        }
    }

    /// The sliding-window registry (None when disabled or when this
    /// handle was built without windows).
    pub fn windows(&self) -> Option<&WindowRegistry> {
        self.inner.as_ref().and_then(|i| i.windows.as_ref())
    }

    /// The live registry (None when disabled) — for hot paths that
    /// want to cache metric handles.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// Freeze the metrics into a snapshot (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => inner.registry.snapshot(),
        }
    }

    /// All finished spans, sorted by `(trace, id)`, buffer untouched.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for shard in &inner.shards {
            out.extend(shard.lock().expect("span shard poisoned").iter().cloned());
        }
        out.sort_unstable_by_key(|s| (s.trace, s.id));
        out
    }

    /// The finished spans of one trace, sorted by id, buffer
    /// untouched. Scans the buffer but clones only the matches — the
    /// tail-sampling path retains full span trees for rare
    /// (slow/errored/shed) requests without paying for a full
    /// [`Obs::spans`] clone per retention.
    pub fn spans_for_trace(&self, trace: u64) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for shard in &inner.shards {
            out.extend(
                shard
                    .lock()
                    .expect("span shard poisoned")
                    .iter()
                    .filter(|s| s.trace == trace)
                    .cloned(),
            );
        }
        out.sort_unstable_by_key(|s| s.id);
        out
    }

    /// All finished spans, sorted by `(trace, id)`, draining the
    /// buffer (exporters use this).
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for shard in &inner.shards {
            out.append(&mut shard.lock().expect("span shard poisoned"));
        }
        out.sort_unstable_by_key(|s| (s.trace, s.id));
        out
    }

    /// Spans evicted due to buffer pressure since creation.
    pub fn dropped_spans(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.dropped.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A live span. Records itself into the buffer when finished (or
/// dropped). Spans from a disabled handle are inert: every method is
/// one branch.
#[derive(Debug)]
pub struct Span {
    obs: Obs,
    trace: u64,
    id: u64,
    parent: u64,
    name: &'static str,
    start_micros: u64,
    cpu_micros: u64,
    attrs: Vec<(&'static str, AttrValue)>,
    finished: bool,
}

impl Span {
    fn inert() -> Span {
        Span {
            obs: Obs::disabled(),
            trace: 0,
            id: 0,
            parent: 0,
            name: "",
            start_micros: 0,
            cpu_micros: 0,
            attrs: Vec::new(),
            finished: true,
        }
    }

    /// Is this a recording span?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.obs.is_enabled()
    }

    /// The trace this span belongs to (0 when inert).
    pub fn trace_id(&self) -> u64 {
        self.trace
    }

    /// This span's id (0 when inert).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// `(trace, id)` — the context a child layer needs to attach its
    /// own spans under this one via [`Obs::span_in`].
    pub fn context(&self) -> (u64, u64) {
        (self.trace, self.id)
    }

    /// Start a child span.
    #[inline]
    pub fn child(&self, name: &'static str) -> Span {
        if !self.obs.is_enabled() {
            return Span::inert();
        }
        self.obs.span_in(self.trace, self.id, name)
    }

    #[inline]
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if self.obs.is_enabled() {
            self.attrs.push((key, AttrValue::U64(value)));
        }
    }

    #[inline]
    pub fn attr_f64(&mut self, key: &'static str, value: f64) {
        if self.obs.is_enabled() {
            self.attrs.push((key, AttrValue::F64(value)));
        }
    }

    #[inline]
    pub fn attr_str(&mut self, key: &'static str, value: &str) {
        if self.obs.is_enabled() {
            self.attrs.push((key, AttrValue::Str(value.to_owned())));
        }
    }

    /// Attribute summed worker CPU time to this span.
    #[inline]
    pub fn add_cpu_micros(&mut self, micros: u64) {
        self.cpu_micros += micros;
    }

    /// Finish now (otherwise Drop finishes it).
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let Some(clock) = self.obs.clock() else {
            return;
        };
        let end = clock.monotonic_micros();
        let record = SpanRecord {
            trace: self.trace,
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_micros: self.start_micros,
            dur_micros: end.saturating_sub(self.start_micros),
            cpu_micros: self.cpu_micros,
            attrs: std::mem::take(&mut self.attrs),
        };
        self.obs.record(record);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_fully_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let mut span = obs.trace("pipeline.induce");
        assert!(!span.is_enabled());
        span.attr_u64("pages", 7);
        let child = span.child("stage.parse");
        child.finish();
        span.finish();
        obs.counter_add("objectrunner.test.c", 5);
        assert!(obs.spans().is_empty());
        assert_eq!(obs.snapshot().counter("objectrunner.test.c"), 0);
    }

    #[test]
    fn const_disabled_is_usable_in_const_context() {
        const OBS: Obs = Obs::disabled();
        assert!(!OBS.is_enabled());
    }

    #[test]
    fn spans_form_a_tree_sorted_by_id() {
        let obs = Obs::enabled();
        let mut root = obs.trace("pipeline.induce");
        root.attr_u64("pages", 3);
        let a = root.child("stage.parse");
        let a_id = a.id();
        a.finish();
        let b = root.child("stage.clean");
        b.finish();
        let root_id = root.id();
        root.finish();
        let spans = obs.spans();
        assert_eq!(spans.len(), 3);
        // Sorted by id: root allocated first.
        assert_eq!(spans[0].id, root_id);
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].id, a_id);
        assert_eq!(spans[1].parent, root_id);
        assert_eq!(spans[2].parent, root_id);
        assert!(spans.iter().all(|s| s.trace == spans[0].trace));
        assert_eq!(spans[0].attrs, vec![("pages", AttrValue::U64(3))]);
    }

    #[test]
    fn traces_get_distinct_ids() {
        let obs = Obs::enabled();
        let t1 = obs.trace("serve.extract");
        let t2 = obs.trace("serve.extract");
        assert_ne!(t1.trace_id(), t2.trace_id());
        t1.finish();
        t2.finish();
        let spans = obs.drain_spans();
        assert_eq!(spans.len(), 2);
        assert!(obs.spans().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_drops() {
        let obs = Obs::with_capacity(16); // 1 per shard
        for _ in 0..64 {
            obs.trace("spin").finish();
        }
        assert!(obs.spans().len() <= 16);
        assert!(obs.dropped_spans() >= 48);
    }

    #[test]
    fn concurrent_finishes_are_safe_and_complete() {
        let obs = Obs::enabled();
        let root = obs.trace("parallel");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let root = &root;
                s.spawn(move || {
                    for _ in 0..100 {
                        root.child("work").finish();
                    }
                });
            }
        });
        root.finish();
        assert_eq!(obs.spans().len(), 801);
    }

    #[test]
    fn span_in_attaches_across_layers() {
        let obs = Obs::enabled();
        let req = obs.trace("serve.extract");
        let (trace, parent) = req.context();
        let inner = obs.span_in(trace, parent, "pipeline.extract");
        let inner_id = inner.id();
        inner.finish();
        req.finish();
        let spans = obs.spans();
        let child = spans.iter().find(|s| s.id == inner_id).unwrap();
        assert_eq!(child.parent, parent);
        assert_eq!(child.trace, trace);
    }
}
