//! GumTree-style matching between two annotated template trees.
//!
//! Wrapper repair (see [`crate::wrapper::repair_wrapper`]) needs to
//! know which node of a *drifted* template corresponds to which node
//! of the stored one. This module computes that correspondence the way
//! GumTree (Falleri et al., ASE 2014) matches ASTs, adapted to
//! template trees:
//!
//! 1. **Top-down pass** — nodes are visited in decreasing subtree
//!    height; two unmatched subtrees with equal *structural hash*
//!    (matcher token sequences + multiplicities, paths excluded — see
//!    [`TemplateTree::structural_hash`]) are matched wholesale, every
//!    descendant pair marked [`MatchKind::Exact`]. This is what
//!    survives cosmetic drift: class renames shift no token, so whole
//!    record subtrees hash identically.
//! 2. **Bottom-up pass** — remaining unmatched nodes are matched as
//!    *containers* by dice similarity over already-matched descendant
//!    pairs, with a matcher-sequence alignment as the tie-break and
//!    the leaf fallback. This is what survives separator drift: a
//!    record whose `<div>` cells became `<p>` hashes differently, but
//!    most of its children (or its own matcher kinds) still line up.
//!
//! The output is a [`TreeMapping`] plus, per matched pair, a
//! [`NodeAlignment`] of the two matcher sequences (Needleman–Wunsch)
//! from which the repair step re-maps paths, gaps and annotations.

use crate::template::{GapKind, TemplateNode, TemplateTree};
use objectrunner_html::PageToken;

/// Tunables for the bottom-up container pass.
#[derive(Debug, Clone, Copy)]
pub struct TreeDiffConfig {
    /// Minimum dice similarity over matched descendants for a
    /// container match.
    pub min_dice: f64,
    /// Minimum matcher-alignment similarity for matching two nodes
    /// with no matched descendants (leaf fallback).
    pub min_leaf_sim: f64,
}

impl Default for TreeDiffConfig {
    fn default() -> TreeDiffConfig {
        // A full same-kind tag swap with surviving data gaps scores
        // 0.4 against the exact-match normalizer; 0.35 admits it while
        // rejecting short accidental alignments (≈0.15).
        TreeDiffConfig {
            min_dice: 0.3,
            min_leaf_sim: 0.35,
        }
    }
}

/// How a pair of nodes was matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Top-down: the subtrees are structurally isomorphic.
    Exact,
    /// Bottom-up: matched as containers by descendant dice / matcher
    /// similarity; their matcher sequences may differ.
    Container,
}

/// A node correspondence between an old and a new template tree.
#[derive(Debug, Clone)]
pub struct TreeMapping {
    /// `old_to_new[o] = Some(n)` when old node `o` matched new node `n`.
    pub old_to_new: Vec<Option<usize>>,
    /// Inverse direction.
    pub new_to_old: Vec<Option<usize>>,
    /// Match kind per *old* node (index-aligned with `old_to_new`).
    pub kinds: Vec<Option<MatchKind>>,
}

/// Count summary of a [`TreeMapping`] — what repair provenance records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingSummary {
    pub matched_exact: usize,
    pub matched_container: usize,
    pub unmatched_old: usize,
    pub unmatched_new: usize,
}

impl TreeMapping {
    pub fn summary(&self) -> MappingSummary {
        let matched_exact = self
            .kinds
            .iter()
            .filter(|k| **k == Some(MatchKind::Exact))
            .count();
        let matched_container = self
            .kinds
            .iter()
            .filter(|k| **k == Some(MatchKind::Container))
            .count();
        MappingSummary {
            matched_exact,
            matched_container,
            unmatched_old: self.old_to_new.iter().filter(|m| m.is_none()).count(),
            unmatched_new: self.new_to_old.iter().filter(|m| m.is_none()).count(),
        }
    }
}

/// Match `old` against `new`. The roots always match (both are the
/// synthetic page root); everything else follows the two passes.
pub fn match_trees(old: &TemplateTree, new: &TemplateTree, cfg: &TreeDiffConfig) -> TreeMapping {
    let mut m = TreeMapping {
        old_to_new: vec![None; old.nodes.len()],
        new_to_old: vec![None; new.nodes.len()],
        kinds: vec![None; old.nodes.len()],
    };

    let old_hash: Vec<u64> = (0..old.nodes.len())
        .map(|i| old.structural_hash(i))
        .collect();
    let new_hash: Vec<u64> = (0..new.nodes.len())
        .map(|i| new.structural_hash(i))
        .collect();
    let old_heights = old.heights();

    // --- top-down: tallest unmatched old subtrees first.
    let mut by_height: Vec<usize> = (0..old.nodes.len()).collect();
    by_height.sort_by_key(|&i| (std::cmp::Reverse(old_heights[i]), i));
    for o in by_height {
        if m.old_to_new[o].is_some() {
            continue;
        }
        let candidates: Vec<usize> = (0..new.nodes.len())
            .filter(|&n| m.new_to_old[n].is_none() && new_hash[n] == old_hash[o])
            .collect();
        if candidates.is_empty() {
            continue;
        }
        // Ambiguity (repeated identical subtrees): prefer the candidate
        // whose parent is already matched to this node's parent, else
        // the first in DFS order — deterministic either way.
        let pick = candidates
            .iter()
            .copied()
            .find(|&n| parents_correspond(old, new, &m, o, n))
            .unwrap_or(candidates[0]);
        match_subtrees_isomorphic(old, new, &mut m, o, pick);
    }

    // --- roots always correspond.
    if m.old_to_new[0].is_none() {
        record_match(&mut m, 0, 0, MatchKind::Container);
    }

    // --- bottom-up: children before parents, containers by dice.
    let post = {
        let mut order = old.dfs();
        order.reverse();
        order
    };
    for o in post {
        if m.old_to_new[o].is_some() {
            continue;
        }
        // Rank candidates by dice, then matcher-alignment similarity,
        // then parent correspondence, then index (determinism).
        let mut best: Option<(usize, f64, f64, bool)> = None;
        for n in 0..new.nodes.len() {
            if m.new_to_old[n].is_some() {
                continue;
            }
            let dice = dice_similarity(old, new, &m, o, n);
            let align = align_matchers(&old.nodes[o], &new.nodes[n]);
            let acceptable = dice >= cfg.min_dice
                || (dice == 0.0
                    && no_matched_descendants(old, &m, o)
                    && align.similarity >= cfg.min_leaf_sim);
            if !acceptable {
                continue;
            }
            let parent_ok = parents_correspond(old, new, &m, o, n);
            let replace = match &best {
                None => true,
                Some((_, bd, bs, bp)) => {
                    dice > bd + 1e-12
                        || ((dice - bd).abs() <= 1e-12
                            && (align.similarity > bs + 1e-12
                                || ((align.similarity - bs).abs() <= 1e-12 && parent_ok && !bp)))
                }
            };
            if replace {
                best = Some((n, dice, align.similarity, parent_ok));
            }
        }
        if let Some((n, ..)) = best {
            record_match(&mut m, o, n, MatchKind::Container);
        }
    }

    m
}

fn record_match(m: &mut TreeMapping, o: usize, n: usize, kind: MatchKind) {
    m.old_to_new[o] = Some(n);
    m.new_to_old[n] = Some(o);
    m.kinds[o] = Some(kind);
}

/// Are the parents of `o` and `n` already matched to each other (or
/// both roots)?
fn parents_correspond(
    old: &TemplateTree,
    new: &TemplateTree,
    m: &TreeMapping,
    o: usize,
    n: usize,
) -> bool {
    match (old.nodes[o].parent, new.nodes[n].parent) {
        (None, None) => true,
        (Some(po), Some(pn)) => m.old_to_new[po] == Some(pn),
        _ => false,
    }
}

/// Zip two isomorphic subtrees (equal structural hash ⇒ equal matcher
/// sequences, multiplicities and child counts) into Exact matches.
fn match_subtrees_isomorphic(
    old: &TemplateTree,
    new: &TemplateTree,
    m: &mut TreeMapping,
    o: usize,
    n: usize,
) {
    record_match(m, o, n, MatchKind::Exact);
    for (&co, &cn) in old.nodes[o]
        .children
        .iter()
        .zip(new.nodes[n].children.iter())
    {
        match_subtrees_isomorphic(old, new, m, co, cn);
    }
}

fn descendants(tree: &TemplateTree, node: usize, out: &mut Vec<usize>) {
    for &c in &tree.nodes[node].children {
        out.push(c);
        descendants(tree, c, out);
    }
}

fn no_matched_descendants(old: &TemplateTree, m: &TreeMapping, o: usize) -> bool {
    let mut descs = Vec::new();
    descendants(old, o, &mut descs);
    descs.iter().all(|&d| m.old_to_new[d].is_none())
}

/// Dice coefficient over matched descendant pairs:
/// `2·|{(d_o, d_n) matched, d_o under o, d_n under n}| / (|desc o| + |desc n|)`.
fn dice_similarity(
    old: &TemplateTree,
    new: &TemplateTree,
    m: &TreeMapping,
    o: usize,
    n: usize,
) -> f64 {
    let mut old_descs = Vec::new();
    descendants(old, o, &mut old_descs);
    let mut new_descs = Vec::new();
    descendants(new, n, &mut new_descs);
    if old_descs.is_empty() && new_descs.is_empty() {
        return 0.0;
    }
    let common = old_descs
        .iter()
        .filter(|&&d| {
            m.old_to_new[d]
                .map(|dn| new_descs.contains(&dn))
                .unwrap_or(false)
        })
        .count();
    2.0 * common as f64 / (old_descs.len() + new_descs.len()) as f64
}

// ------------------------------------------------- matcher alignment

/// Alignment of one matched node pair's matcher sequences, with the
/// induced gap correspondence.
#[derive(Debug, Clone)]
pub struct NodeAlignment {
    /// `matcher_map[j] = Some(i)` — old matcher `j` aligned to new
    /// matcher `i`.
    pub matcher_map: Vec<Option<usize>>,
    /// `gap_map[j] = Some(i)` — old gap `j` (between old matchers `j`
    /// and `j+1`) corresponds to new gap `i`.
    pub gap_map: Vec<Option<usize>>,
    /// Every matcher aligned one-to-one with an identical token (the
    /// sequences are equal up to paths).
    pub exact: bool,
    /// Alignment score normalized to the old sequence's self-score,
    /// in `[0, 1]`.
    pub similarity: f64,
}

fn token_kind(t: PageToken) -> u8 {
    match t {
        PageToken::Open(_) => b'o',
        PageToken::Close(_) => b'c',
        PageToken::Word(_) => b'w',
    }
}

/// Pair score for Needleman–Wunsch: exact token equality is worth a
/// lot, a same-kind tag swap (`<div>` → `<p>`, the separator-drift
/// case) a little, a cross-kind pairing nothing at all. When the gaps
/// *following* the two matchers agree on a substantive kind (both
/// Data, or both Children), the pair earns a bonus — gaps are where
/// the wrapper's data lives, so an alignment that keeps data gaps
/// facing data gaps should win over one that merely pairs tags.
fn pair_score(old: &TemplateNode, new: &TemplateNode, j: usize, i: usize) -> Option<f64> {
    let (a, b) = (old.matchers[j], new.matchers[i]);
    if token_kind(a.token) != token_kind(b.token) {
        return None;
    }
    let mut score = if a.token == b.token { 4.0 } else { 1.0 };
    let old_gap = old.gaps.get(j).map(|g| g.kind());
    let new_gap = new.gaps.get(i).map(|g| g.kind());
    if let (Some(og), Some(ng)) = (old_gap, new_gap) {
        if og == ng && matches!(og, GapKind::Data | GapKind::Children) {
            score += 2.0;
        }
    }
    Some(score)
}

/// Penalty per skipped matcher on either side.
const SKIP: f64 = -0.5;

/// Needleman–Wunsch alignment of two matcher sequences.
pub fn align_matchers(old: &TemplateNode, new: &TemplateNode) -> NodeAlignment {
    let (k, l) = (old.matchers.len(), new.matchers.len());
    // dp[j][i] = best score aligning old[..j] with new[..i].
    let mut dp = vec![vec![f64::NEG_INFINITY; l + 1]; k + 1];
    // 0 = stop, 1 = diagonal, 2 = skip old (up), 3 = skip new (left).
    let mut back = vec![vec![0u8; l + 1]; k + 1];
    dp[0][0] = 0.0;
    for j in 0..=k {
        for i in 0..=l {
            if j > 0 && i > 0 {
                if let Some(s) = pair_score(old, new, j - 1, i - 1) {
                    let v = dp[j - 1][i - 1] + s;
                    if v > dp[j][i] {
                        dp[j][i] = v;
                        back[j][i] = 1;
                    }
                }
            }
            if j > 0 {
                let v = dp[j - 1][i] + SKIP;
                if v > dp[j][i] {
                    dp[j][i] = v;
                    back[j][i] = 2;
                }
            }
            if i > 0 {
                let v = dp[j][i - 1] + SKIP;
                if v > dp[j][i] {
                    dp[j][i] = v;
                    back[j][i] = 3;
                }
            }
        }
    }

    let mut matcher_map = vec![None; k];
    let (mut j, mut i) = (k, l);
    while j > 0 || i > 0 {
        match back[j][i] {
            1 => {
                j -= 1;
                i -= 1;
                matcher_map[j] = Some(i);
            }
            2 => j -= 1,
            3 => i -= 1,
            _ => break,
        }
    }

    // Normalizer: the score of aligning `old` with itself (every pair
    // exact, every substantive gap agreeing).
    let mut self_score = 0.0;
    for j in 0..k {
        self_score += 4.0;
        if matches!(
            old.gaps.get(j).map(|g| g.kind()),
            Some(GapKind::Data | GapKind::Children)
        ) {
            self_score += 2.0;
        }
    }
    let similarity = if self_score > 0.0 {
        (dp[k][l].max(0.0) / self_score).min(1.0)
    } else if k == 0 && l == 0 {
        1.0
    } else {
        0.0
    };

    let exact = k == l
        && matcher_map
            .iter()
            .enumerate()
            .all(|(j, m)| *m == Some(j) && old.matchers[j].token == new.matchers[j].token);

    let gap_map = resolve_gaps(old, new, &matcher_map);

    NodeAlignment {
        matcher_map,
        gap_map,
        exact,
        similarity,
    }
}

/// Old gap `j` sits between old matchers `j` and `j+1`. With both
/// endpoints aligned (to new matchers `a` and `b`), the candidate new
/// gaps are `a..b`. A unique candidate wins outright; among several,
/// a unique one of the *same kind* wins; otherwise the gap stays
/// unmapped — repair treats an unmapped data gap as a lost field
/// rather than guessing.
fn resolve_gaps(
    old: &TemplateNode,
    new: &TemplateNode,
    matcher_map: &[Option<usize>],
) -> Vec<Option<usize>> {
    let mut gap_map = vec![None; old.gaps.len()];
    // The root node has one gap and no matchers; map it directly.
    if old.matchers.is_empty() && new.matchers.is_empty() && old.gaps.len() == new.gaps.len() {
        for (j, g) in gap_map.iter_mut().enumerate() {
            *g = Some(j);
        }
        return gap_map;
    }
    for (j, slot) in gap_map.iter_mut().enumerate() {
        let (Some(a), Some(b)) = (
            matcher_map.get(j).copied().flatten(),
            matcher_map.get(j + 1).copied().flatten(),
        ) else {
            continue;
        };
        if b <= a {
            continue;
        }
        let candidates: Vec<usize> = (a..b).filter(|&i| i < new.gaps.len()).collect();
        match candidates.len() {
            0 => {}
            1 => *slot = Some(candidates[0]),
            _ => {
                let kind = old.gaps[j].kind();
                let same_kind: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&i| new.gaps[i].kind() == kind)
                    .collect();
                if same_kind.len() == 1 {
                    *slot = Some(same_kind[0]);
                }
            }
        }
    }
    gap_map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{GapInfo, Matcher, NodeMultiplicity};
    use objectrunner_html::{PathId, Symbol};

    fn tok(spec: &str) -> PageToken {
        let (kind, body) = spec.split_once('/').unwrap();
        let sym = Symbol::intern(body);
        match kind {
            "o" => PageToken::Open(sym),
            "c" => PageToken::Close(sym),
            _ => PageToken::Word(sym),
        }
    }

    fn node(tokens: &[&str], path: &[&str], mult: NodeMultiplicity) -> TemplateNode {
        let p = PathId::from_segments(path.to_vec());
        let matchers: Vec<Matcher> = tokens
            .iter()
            .map(|t| Matcher {
                token: tok(t),
                path: p,
            })
            .collect();
        let gaps = vec![GapInfo::default(); matchers.len().saturating_sub(1)];
        TemplateNode {
            class: None,
            stable_id: 0,
            multiplicity: mult,
            matchers,
            permutation: Vec::new(),
            gaps,
            children: Vec::new(),
            parent: None,
        }
    }

    /// root → record(*) → cell. `cell_tag` lets tests emulate
    /// separator drift.
    fn tree(cell_tag: &str, path_hint: &str) -> TemplateTree {
        let mut root = node(&[], &["html", "body"], NodeMultiplicity::One);
        root.gaps = vec![GapInfo::default()];
        root.gaps[0].children = vec![1];
        let mut record = node(
            &["o/li", "c/li"],
            &["html", "body", path_hint],
            NodeMultiplicity::Repeating,
        );
        record.parent = Some(0);
        record.children = vec![2];
        record.gaps[0].children = vec![2];
        let mut cell = node(
            &[
                &format!("o/{cell_tag}"),
                &format!("c/{cell_tag}"),
                &format!("o/{cell_tag}"),
                &format!("c/{cell_tag}"),
            ],
            &["html", "body", path_hint, "li"],
            NodeMultiplicity::One,
        );
        cell.parent = Some(1);
        cell.gaps[0].data_instances = 3;
        cell.gaps[0].total_instances = 3;
        cell.gaps[2].data_instances = 3;
        cell.gaps[2].total_instances = 3;
        root.children = vec![1];
        TemplateTree {
            nodes: vec![root, record, cell],
        }
    }

    #[test]
    fn identical_trees_match_exactly_everywhere() {
        let old = tree("div", "ul");
        let new = tree("div", "ul");
        let m = match_trees(&old, &new, &TreeDiffConfig::default());
        for (o, mapped) in m.old_to_new.iter().enumerate() {
            assert_eq!(*mapped, Some(o));
        }
        let s = m.summary();
        assert_eq!(s.matched_exact, 3);
        assert_eq!(s.unmatched_old, 0);
        assert_eq!(s.unmatched_new, 0);
    }

    #[test]
    fn path_only_drift_still_matches_exactly() {
        // Cosmetic/container drift shifts paths but not tokens; the
        // structural hash ignores paths, so top-down still matches.
        let old = tree("div", "ul");
        let new = tree("div", "ol");
        let m = match_trees(&old, &new, &TreeDiffConfig::default());
        assert_eq!(m.summary().matched_exact, 3);
    }

    #[test]
    fn separator_drift_matches_containers_bottom_up() {
        let old = tree("div", "ul");
        let new = tree("p", "ul");
        let m = match_trees(&old, &new, &TreeDiffConfig::default());
        // The cell node hashes differently (div → p) but aligns by
        // kind; the record and root follow by dice.
        assert_eq!(m.old_to_new[2], Some(2));
        assert_eq!(m.old_to_new[1], Some(1));
        assert_eq!(m.old_to_new[0], Some(0));
        let s = m.summary();
        assert_eq!(s.matched_exact + s.matched_container, 3);
        assert!(s.matched_container >= 1);
    }

    #[test]
    fn unrelated_leaf_stays_unmatched() {
        let old = tree("div", "ul");
        let mut new = tree("div", "ul");
        // Replace the cell with a word-matcher node: kinds disagree
        // everywhere, so no pair score exists at all.
        new.nodes[2] = node(
            &["w/foo", "w/bar"],
            &["html", "body", "ul", "li"],
            NodeMultiplicity::One,
        );
        new.nodes[2].parent = Some(1);
        let m = match_trees(&old, &new, &TreeDiffConfig::default());
        assert_eq!(m.old_to_new[2], None);
        assert_eq!(m.summary().unmatched_old, 1);
        assert_eq!(m.summary().unmatched_new, 1);
    }

    #[test]
    fn alignment_is_exact_on_equal_token_sequences() {
        let old = tree("div", "ul");
        let new = tree("div", "ol");
        let a = align_matchers(&old.nodes[2], &new.nodes[2]);
        assert!(a.exact);
        assert!((a.similarity - 1.0).abs() < 1e-9);
        assert_eq!(a.gap_map, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn alignment_survives_tag_swap_and_keeps_gap_map() {
        let old = tree("div", "ul");
        let new = tree("p", "ul");
        let a = align_matchers(&old.nodes[2], &new.nodes[2]);
        assert!(!a.exact);
        assert!(a.similarity > 0.0 && a.similarity < 1.0);
        // One-to-one alignment: gaps carry over positionally.
        assert_eq!(a.gap_map, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn inserted_wrapper_tags_skip_but_data_gaps_survive() {
        // New cell node gained a leading+trailing <span> wrapper pair:
        // o/span o/div c/div o/div c/div c/span. The div pairs must
        // still align and the data gaps must land on the right new
        // gaps.
        let mut wrapped = node(
            &["o/span", "o/div", "c/div", "o/div", "c/div", "c/span"],
            &["html", "body", "ul", "li"],
            NodeMultiplicity::One,
        );
        // Data gaps now sit at new indices 1 and 3.
        wrapped.gaps[1].data_instances = 3;
        wrapped.gaps[1].total_instances = 3;
        wrapped.gaps[3].data_instances = 3;
        wrapped.gaps[3].total_instances = 3;
        let a = align_matchers(&tree("div", "ul").nodes[2], &wrapped);
        assert_eq!(a.matcher_map, vec![Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(a.gap_map[0], Some(1));
        assert_eq!(a.gap_map[2], Some(3));
    }

    #[test]
    fn ambiguous_gap_resolves_by_kind_or_not_at_all() {
        // Old: o/div c/div with one Data gap. New: o/div o/span c/span
        // c/div — endpoints align 0 and 3, candidates {0, 1, 2}; only
        // gap 1 is Data, so it wins uniquely.
        let mut old = node(&["o/div", "c/div"], &["x"], NodeMultiplicity::One);
        old.gaps[0].data_instances = 2;
        old.gaps[0].total_instances = 2;
        let mut new = node(
            &["o/div", "o/span", "c/span", "c/div"],
            &["x"],
            NodeMultiplicity::One,
        );
        new.gaps[1].data_instances = 2;
        new.gaps[1].total_instances = 2;
        let a = align_matchers(&old, &new);
        assert_eq!(a.matcher_map, vec![Some(0), Some(3)]);
        assert_eq!(a.gap_map, vec![Some(1)]);

        // With two Data candidates the gap stays unmapped.
        let mut ambiguous = new.clone();
        ambiguous.gaps[0].data_instances = 2;
        ambiguous.gaps[0].total_instances = 2;
        let a = align_matchers(&old, &ambiguous);
        assert_eq!(a.gap_map, vec![None]);
    }

    #[test]
    fn summary_counts_are_consistent() {
        let old = tree("div", "ul");
        let new = tree("p", "ol");
        let m = match_trees(&old, &new, &TreeDiffConfig::default());
        let s = m.summary();
        assert_eq!(
            s.matched_exact + s.matched_container + s.unmatched_old,
            old.nodes.len()
        );
    }
}
