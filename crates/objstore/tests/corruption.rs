//! Randomized crash/corruption properties of the on-disk format:
//! any truncation or bit flip inside a committed file fails open with
//! a typed error — the store never comes up silently missing objects
//! or holding a partial one — while bytes *past* the committed prefix
//! (a torn append) are discarded and every committed object survives.

use objectrunner_objstore::{IngestContext, IngestObject, ObjStoreError, ObjectStore, Query};
use objectrunner_obs::Obs;
use objectrunner_sod::Instance;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "objectrunner-objstore-corruption-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn concert(artist: &str, date: &str) -> Instance {
    Instance::Tuple {
        name: "concert".into(),
        fields: vec![
            Instance::atomic("artist", artist),
            Instance::atomic("date", date),
        ],
    }
}

/// Build a small multi-segment store (tiny roll size forces several
/// files) and return its directory.
fn build_store_dir(tag: &str) -> PathBuf {
    let dir = scratch_dir(tag);
    {
        let mut store = ObjectStore::open_with(&dir, 256, Obs::disabled()).expect("fresh store");
        let offers = (0..10)
            .map(|i| IngestObject {
                instance: concert(&format!("artist-{i:02}"), "May 1, 2012"),
                page_id: format!("page-{i:02}"),
            })
            .collect();
        let ctx = IngestContext {
            source: "zvents",
            domain: "Concerts",
            wrapper_revision: 1,
            repaired_from: None,
            extracted_unix_micros: 1_700_000_000_000_000,
            confidence: 0.9,
            key_attrs: &["artist", "date"],
        };
        store.ingest(offers, &ctx, None).expect("ingest");
    }
    dir
}

/// Every committed file of a store, sorted for determinism.
fn committed_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    files.sort();
    files
}

/// Canonical view of a store's contents: every live record rendered.
fn contents(dir: &Path) -> Vec<String> {
    let store = ObjectStore::open_with(dir, 256, Obs::disabled()).expect("open");
    let result = store
        .query(
            &Query {
                limit: 500,
                ..Query::all()
            },
            None,
        )
        .expect("query");
    assert!(result.next_cursor.is_none(), "one page holds everything");
    result.hits.iter().map(|r| r.render()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Truncating any committed file at any point makes open fail with
    /// a typed error; it never yields a store with fewer objects.
    #[test]
    fn truncation_anywhere_fails_open_loudly(file_pick in 0usize..10_000,
                                             cut_pick in 0usize..1_000_000) {
        let dir = build_store_dir("truncate");
        let files = committed_files(&dir);
        let path = &files[file_pick % files.len()];
        let bytes = std::fs::read(path).unwrap();
        let cut = cut_pick % (bytes.len() - 1); // strictly shorter
        std::fs::write(path, &bytes[..cut]).unwrap();

        let err = ObjectStore::open_with(&dir, 256, Obs::disabled())
            .err()
            .expect("truncated store must not open");
        prop_assert!(
            matches!(
                err,
                ObjStoreError::Corrupt { .. }
                    | ObjStoreError::BadHeader { .. }
                    | ObjStoreError::Malformed { .. }
                    | ObjStoreError::UnsupportedVersion(_)
            ),
            "untyped error for cut at {cut} of {}: {err}",
            path.display()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Flipping any bit of any committed byte makes open fail with a
    /// typed error (FNV-1a over a fixed-length prefix changes under
    /// any single-byte change, so both checksum layers are airtight).
    #[test]
    fn bit_flips_anywhere_fail_open_loudly(file_pick in 0usize..10_000,
                                           byte_pick in 0usize..1_000_000,
                                           bit in 0u8..8) {
        let dir = build_store_dir("bitflip");
        let files = committed_files(&dir);
        let path = &files[file_pick % files.len()];
        let mut bytes = std::fs::read(path).unwrap();
        let at = byte_pick % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(path, &bytes).unwrap();

        let err = ObjectStore::open_with(&dir, 256, Obs::disabled())
            .err()
            .expect("flipped store must not open");
        prop_assert!(
            matches!(
                err,
                ObjStoreError::Corrupt { .. }
                    | ObjStoreError::BadHeader { .. }
                    | ObjStoreError::Malformed { .. }
                    | ObjStoreError::UnsupportedVersion(_)
            ),
            "untyped error for flip at {at} of {}: {err}",
            path.display()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Garbage past a segment's committed length is a torn append from
    /// a crash: open discards it and every committed object reads back
    /// byte-identically.
    #[test]
    fn torn_tails_are_discarded_not_trusted(tail in prop::collection::vec(0u8..255, 1..200)) {
        let dir = build_store_dir("torn");
        let clean = contents(&dir);

        let files = committed_files(&dir);
        let seg = files
            .iter()
            .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("seg-"))
            .expect("a segment file");
        let mut bytes = std::fs::read(seg).unwrap();
        let committed = bytes.len();
        bytes.extend_from_slice(&tail);
        std::fs::write(seg, &bytes).unwrap();

        prop_assert_eq!(&contents(&dir), &clean, "committed objects survive a torn tail");
        prop_assert_eq!(
            std::fs::read(seg).unwrap().len(),
            committed,
            "the torn tail is physically truncated at open"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deleting a committed segment file outright is also loud (an `Io`
/// error naming the missing file), never a silently smaller store.
#[test]
fn a_missing_segment_fails_open() {
    let dir = build_store_dir("missing");
    let seg = committed_files(&dir)
        .into_iter()
        .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("seg-"))
        .expect("a segment file");
    std::fs::remove_file(&seg).unwrap();
    assert!(
        matches!(
            ObjectStore::open_with(&dir, 256, Obs::disabled()),
            Err(ObjStoreError::Io(_))
        ),
        "missing segment must surface as an I/O error"
    );
    std::fs::remove_dir_all(&dir).ok();
}
