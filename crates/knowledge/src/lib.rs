//! # objectrunner-knowledge
//!
//! Domain knowledge for targeted extraction (paper §II-A, §III-A):
//! entity types come with *recognizers* that are "never assumed to be
//! entirely precise nor complete".
//!
//! * [`regex`] — a small from-scratch regular-expression engine
//!   (Thompson NFA) backing user-defined and predefined recognizers.
//! * [`gazetteer`] — confidence-scored dictionaries of instances with
//!   term frequencies; coverage control (the 20%/10% experiments);
//!   the type-selectivity estimate of Eq. 2.
//! * [`ontology`] — a YAGO-like knowledge base: classes, subclass
//!   edges, `isInstanceOf` facts with confidences, and the *semantic
//!   neighborhood* lookup the paper uses (Metallica is a Band, and
//!   Band is close to Artist).
//! * [`corpus`] — a synthetic Web-text corpus with controlled
//!   redundancy (the ClueWeb substitution).
//! * [`hearst`] — Hearst-pattern instance harvesting over the corpus
//!   with the Str-ICNorm-Thresh confidence metric (Eq. 1).
//! * [`recognizer`] — the three recognizer kinds of the paper
//!   (user regex, predefined, dictionary/`isInstanceOf`) behind one
//!   interface.
//! * [`enrich`] — dictionary enrichment from extraction results (Eq. 4).
//! * [`bytype`] — §VI future work implemented: specify an atomic type
//!   by a few example instances; the ontology finds the matching
//!   concepts Google-sets-style and expands them into a recognizer.

pub mod aho;
pub mod bytype;
pub mod compiled;
pub mod corpus;
pub mod enrich;
pub mod gazetteer;
pub mod hearst;
pub mod ontology;
pub mod recognizer;
pub mod regex;

pub use compiled::{CompiledRecognizerSet, MatchScratch};
pub use gazetteer::Gazetteer;
pub use ontology::Ontology;
pub use recognizer::{Recognizer, RecognizerSet, TypeMatch};
