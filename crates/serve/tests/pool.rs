//! Concurrency guarantees of the pooled serving core.
//!
//! * **Fidelity** — N parallel TCP clients firing pipelined bursts
//!   (which the pool runs through the batched extraction path) must
//!   get responses byte-identical to a serial, in-process
//!   `handle_line` run under the same pinned fake clock. Only the
//!   per-request `trace` id and wall-clock `stats` timings may
//!   differ.
//! * **Admission control** — request lines past the in-flight budget
//!   are shed with the typed `overloaded` response, in request order,
//!   without killing the connection; the budget recovers afterwards
//!   and the sheds are visible in `status.serving`.
//! * **Connection bound** — connections past `--max-conns` get one
//!   `overloaded` line and EOF; closing an admitted connection frees
//!   the slot.

use objectrunner_obs::{Clock, Obs, DEFAULT_SPAN_CAPACITY};
use objectrunner_serve::{serve_tcp, PoolConfig, ServeConfig, Service};
use objectrunner_store::Json;
use objectrunner_webgen::{generate_site, Domain, PageKind, SiteSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("objectrunner-pool-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A service under a pinned fake clock, so two instances cannot
/// diverge on anything time-derived.
fn pinned_service(store_dir: PathBuf) -> Service {
    let (clock, fake) = Clock::fake();
    fake.set_wall_unix_micros(1_700_000_000_000_000);
    let obs = Obs::with_clock_and_capacity(clock.clone(), DEFAULT_SPAN_CAPACITY);
    Service::with_observability(
        ServeConfig {
            store_dir,
            threads: Some(2),
            ..ServeConfig::default()
        },
        obs,
        clock,
    )
}

/// Strip the fields that legitimately differ between runs: the
/// per-request `trace` id and the wall-clock `stats` timings.
fn normalize(raw: &str) -> String {
    match Json::parse(raw).expect("valid response") {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "trace" && k != "stats")
                .collect(),
        )
        .render(),
        other => other.render(),
    }
}

/// Persist a books wrapper into `store_dir` and return the extract
/// request both the serial reference and the TCP clients will send.
fn seed_wrapper(store_dir: &Path) -> String {
    let source = generate_site(&SiteSpec::clean(
        "pool-books",
        Domain::Books,
        PageKind::List,
        8,
        17_031,
    ));
    let pages = Json::Arr(source.pages.iter().map(Json::str).collect());
    let induce = Json::Obj(vec![
        ("cmd".into(), Json::str("induce")),
        ("source".into(), Json::str("pool-books")),
        ("domain".into(), Json::str("Books")),
        ("pages".into(), pages.clone()),
    ])
    .render();
    let seeder = pinned_service(store_dir.to_path_buf());
    let response = seeder.handle_line(&induce);
    assert!(
        response.contains("\"ok\":true"),
        "seed induction failed: {response}"
    );
    Json::Obj(vec![
        ("cmd".into(), Json::str("extract")),
        ("source".into(), Json::str("pool-books")),
        ("pages".into(), pages),
    ])
    .render()
}

#[test]
fn parallel_clients_get_byte_identical_responses_to_a_serial_run() {
    const CLIENTS: usize = 6;
    const REQUESTS_PER_CLIENT: usize = 4;
    let dir = scratch_dir("fidelity");
    let extract = seed_wrapper(&dir);

    // The serial reference: a fresh service warming the same wrapper
    // from disk, handling the request once through `handle_line`.
    let serial = pinned_service(dir.clone());
    let expected = normalize(&serial.handle_line(&extract));
    assert!(expected.contains("\"ok\":true"), "reference run failed");
    assert!(expected.contains("\"cache\":\"hit\""));

    let pooled = Arc::new(pinned_service(dir.clone()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve_tcp(
        listener,
        Arc::clone(&pooled),
        PoolConfig {
            workers: 3,
            ..PoolConfig::default()
        },
    );
    let addr = handle.addr();

    // Each client pipelines its whole burst up front, so consecutive
    // same-source extracts flow through the batched pipeline path.
    let client_responses: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let extract = &extract;
                s.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    let mut burst = String::new();
                    for _ in 0..REQUESTS_PER_CLIENT {
                        burst.push_str(extract);
                        burst.push('\n');
                    }
                    stream.write_all(burst.as_bytes()).expect("send burst");
                    let reader = BufReader::new(&stream);
                    reader
                        .lines()
                        .take(REQUESTS_PER_CLIENT)
                        .map(|l| l.expect("response line"))
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    for (client, responses) in client_responses.iter().enumerate() {
        assert_eq!(responses.len(), REQUESTS_PER_CLIENT);
        for (i, raw) in responses.iter().enumerate() {
            assert_eq!(
                normalize(raw),
                expected,
                "client {client} response {i} diverged from the serial run"
            );
        }
    }

    // The pool actually batched: fewer pipeline invocations than
    // requests would need serially.
    let snap = pooled.obs().snapshot();
    assert!(
        snap.counter("objectrunner.serve.serving.batched_requests") > 0,
        "pipelined bursts should have been batched"
    );
    assert_eq!(
        snap.counter("objectrunner.serve.serving.shed_requests"),
        0,
        "no shedding expected at this load"
    );
    handle.shutdown();
}

#[test]
fn overload_sheds_typed_responses_and_recovers() {
    const BURST: usize = 7;
    const INFLIGHT: usize = 2;
    let dir = scratch_dir("overload");
    let extract = seed_wrapper(&dir);

    let service = Arc::new(pinned_service(dir.clone()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve_tcp(
        listener,
        Arc::clone(&service),
        PoolConfig {
            workers: 1,
            max_conns: 4,
            inflight: INFLIGHT,
            batch_max: 32,
            ..PoolConfig::default()
        },
    );

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // One write syscall on loopback delivers the burst as one unit,
    // so the worker's turn sees all lines at once: the admitted
    // prefix is exactly the in-flight budget, the rest is shed.
    let mut burst = String::new();
    for _ in 0..BURST {
        burst.push_str(&extract);
        burst.push('\n');
    }
    stream.write_all(burst.as_bytes()).expect("send burst");

    let mut reader = BufReader::new(&stream);
    let mut read_line = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        line.trim_end().to_owned()
    };
    let responses: Vec<String> = (0..BURST).map(|_| read_line()).collect();

    // Admitted prefix first, in order …
    for (i, raw) in responses[..INFLIGHT].iter().enumerate() {
        let json = Json::parse(raw).expect("valid response");
        assert_eq!(
            json.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {i} should be admitted: {raw}"
        );
        assert_eq!(json.get("cmd").and_then(Json::as_str), Some("extract"));
    }
    // … then the typed sheds, connection intact.
    for raw in &responses[INFLIGHT..] {
        assert_eq!(raw, r#"{"ok":false,"error":"overloaded","shed":true}"#);
    }

    // The budget was released: a lone follow-up request succeeds.
    writeln!(&stream, "{extract}").expect("send follow-up");
    let follow_up = read_line();
    assert!(
        follow_up.contains("\"ok\":true"),
        "budget should recover after the burst: {follow_up}"
    );

    // The sheds are visible to operators.
    let status_cmd = r#"{"cmd":"status"}"#;
    writeln!(&stream, "{status_cmd}").expect("send status");
    let status = Json::parse(&read_line()).expect("status response");
    let serving = status.get("serving").expect("serving section");
    assert_eq!(
        serving.get("shed_requests").and_then(Json::as_i64),
        Some((BURST - INFLIGHT) as i64)
    );
    assert_eq!(serving.get("shed_conns").and_then(Json::as_i64), Some(0));
    assert_eq!(
        serving
            .get("pool")
            .and_then(|p| p.get("inflight_budget"))
            .and_then(Json::as_i64),
        Some(INFLIGHT as i64)
    );
    handle.shutdown();
}

#[test]
fn connections_past_the_bound_are_shed_and_slots_recover() {
    let dir = scratch_dir("maxconns");
    let service = Arc::new(pinned_service(dir));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve_tcp(
        listener,
        Arc::clone(&service),
        PoolConfig {
            workers: 1,
            max_conns: 1,
            ..PoolConfig::default()
        },
    );
    let addr = handle.addr();

    let status_line = r#"{"cmd":"status"}"#;
    // Occupy the only slot, and prove it is *admitted* (served) —
    // connect alone only proves the kernel queued the socket.
    let mut first = TcpStream::connect(addr).expect("connect");
    writeln!(first, "{status_line}").expect("send");
    let mut reader = BufReader::new(&first);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"ok\":true"));

    // The second connection gets one typed line, then EOF.
    let mut second = TcpStream::connect(addr).expect("connect");
    let mut rejected = String::new();
    second.read_to_string(&mut rejected).expect("read to EOF");
    assert_eq!(
        rejected.trim_end(),
        r#"{"ok":false,"error":"overloaded","shed":true}"#
    );

    // Freeing the slot lets a later connection in (the pool notices
    // the close on a poll turn, so retry briefly).
    drop(reader);
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let served = loop {
        // A retry that lands while the slot is still held is shed and
        // closed server-side, so the write itself may fail — both
        // outcomes mean "try again".
        let mut third = TcpStream::connect(addr).expect("connect");
        let mut response = String::new();
        if writeln!(third, "{status_line}").is_ok() {
            let _ = BufReader::new(&third).read_line(&mut response);
        }
        if response.contains("\"ok\":true") {
            break true;
        }
        if std::time::Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(served, "slot should recover after the first client closes");

    let snap = service.obs().snapshot();
    assert!(snap.counter("objectrunner.serve.serving.shed_conns") >= 1);
    handle.shutdown();
}
