//! `obs_golden` — run the golden corpus (the same specs the
//! determinism suite pins) with observability enabled, then write the
//! canonical exporter artifacts:
//!
//! * `events.jsonl` — one event per line: finished spans, then the
//!   metrics snapshot (validated by `obs_check jsonl`);
//! * `trace.json` — Chrome `trace_event` JSON, loadable in Perfetto /
//!   `chrome://tracing` (validated by `obs_check chrome`);
//! * `snapshot.json` — the metrics registry alone, diffable against
//!   `results/obs_baseline.json` by `obs_check diff`.
//!
//! The ci.sh `obs-smoke` stage runs this binary and then `obs_check`
//! over its output.
//!
//! Usage: `obs_golden [--out DIR] [--threads N]`

use objectrunner_core::pipeline::{Pipeline, PipelineConfig};
use objectrunner_core::sample::SampleConfig;
use objectrunner_obs::{export, Obs};
use objectrunner_webgen::{generate_site, knowledge, Domain, PageKind, SiteSpec};
use std::path::{Path, PathBuf};

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn write(path: &Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("obs_golden: write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("obs_golden: wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = PathBuf::from(flag(&args, "--out").unwrap_or_else(|| "results/obs".into()));
    let threads: Option<usize> = flag(&args, "--threads").and_then(|s| s.parse().ok());

    let obs = Obs::enabled();
    // Ambient build-level counters (html parse/clean, segment scoring,
    // knowledge compilation) flow into the same registry.
    objectrunner_obs::set_global(obs.clone());

    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        let spec = SiteSpec::clean(
            &format!("golden-{}", domain.name()),
            domain,
            PageKind::List,
            15,
            17_000 + i as u64,
        );
        let pages = generate_site(&spec).pages;
        let config = PipelineConfig {
            threads,
            sample: SampleConfig {
                sample_size: 12,
                ..SampleConfig::default()
            },
            obs: obs.clone(),
            ..PipelineConfig::default()
        };
        let pipeline = Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2))
            .with_config(config);
        match pipeline.run_on_html(&pages) {
            Ok(o) => eprintln!(
                "obs_golden: {} — {} objects from {} pages",
                domain.name(),
                o.objects.len(),
                pages.len()
            ),
            Err(e) => {
                eprintln!("obs_golden: {} failed: {e}", domain.name());
                std::process::exit(1);
            }
        }
    }

    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("obs_golden: create {}: {e}", out.display());
        std::process::exit(1);
    }
    let spans = obs.spans();
    let snapshot = obs.snapshot();
    write(
        &out.join("events.jsonl"),
        &export::events_jsonl(&spans, &snapshot),
    );
    write(&out.join("trace.json"), &export::chrome_trace(&spans));
    write(&out.join("snapshot.json"), &snapshot.to_json());
    print!("{}", export::report(&spans, &snapshot));
}
