//! # objectrunner-html
//!
//! A from-scratch, error-tolerant HTML substrate for the ObjectRunner
//! reproduction. The paper pre-processes pages with JTidy to obtain
//! well-formed documents; this crate plays that role:
//!
//! * [`tokenizer`] — an HTML tokenizer producing a flat stream of
//!   [`tokenizer::Token`]s (tags, text, comments, doctype), tolerant of
//!   malformed markup.
//! * [`dom`] — an arena-based DOM built from the token stream with
//!   HTML-style error recovery (void elements, implied end tags,
//!   mismatched close tags).
//! * [`clean`] — the paper's cleaning pass: drop scripts, styles,
//!   comments, hidden elements, empty nodes; normalize whitespace.
//! * [`path`] — DOM paths and structural node signatures used to
//!   identify the same block across pages of a source.
//! * [`serialize`] — back to HTML text, plus the *word/tag token
//!   stream* consumed by the wrapper-induction algorithms.
//! * [`entities`] — HTML entity decoding.
//! * [`intern`] — process-wide [`intern::Symbol`] / [`intern::PathId`]
//!   interners and the FxHash-style hasher; tags, attributes, words and
//!   DOM paths are integer handles everywhere downstream.
//!
//! The DOM is deliberately simple: a `Vec`-backed arena addressed by
//! [`dom::NodeId`]; no interior mutability, no reference counting.

pub mod clean;
pub mod dom;
pub mod entities;
pub mod intern;
pub mod path;
pub mod serialize;
pub mod tokenizer;

pub use clean::{clean_document, CleanOptions};
pub use dom::{Document, Node, NodeId, NodeKind};
pub use intern::{FxHashMap, FxHashSet, FxHasher, PathId, Symbol};
pub use path::{node_path, node_path_id, NodeSignature};
pub use serialize::{to_html, token_stream, PageToken};
pub use tokenizer::{tokenize, Token};

/// Parse an HTML string into a well-formed [`Document`].
///
/// Never fails: malformed input is repaired in the style of JTidy
/// (unclosed tags are auto-closed, stray end tags are dropped).
///
/// ```
/// let doc = objectrunner_html::parse("<ul><li>a<li>b</ul>");
/// let text = doc.text_content(doc.root());
/// assert_eq!(text, "a b");
/// ```
pub fn parse(input: &str) -> Document {
    dom::build(tokenizer::tokenize(input))
}

/// Parse and clean in one step with default [`CleanOptions`].
pub fn parse_clean(input: &str) -> Document {
    let mut doc = parse(input);
    clean::clean_document(&mut doc, &CleanOptions::default());
    doc
}
