//! Regeneration of the paper's tables.

use crate::classify::{AttrStatus, SourceReport};
use crate::runners::{
    run_exalg, run_objectrunner, run_objectrunner_with, run_roadrunner, SourceRun, SystemId,
};
use objectrunner_core::sample::SampleStrategy;
use objectrunner_webgen::{paper_corpus, Domain, Source};
use std::fmt::Write as _;

/// Generate the evaluation corpus once.
pub fn corpus_sources() -> Vec<Source> {
    paper_corpus().generate()
}

/// Aggregate Pc/Pp over a domain's reports (discarded sources are
/// excluded, as in the paper's emusic row).
pub fn domain_precision(reports: &[&SourceReport]) -> (f64, f64) {
    let mut no = 0usize;
    let mut oc = 0usize;
    let mut op = 0usize;
    for r in reports {
        if r.discarded {
            continue;
        }
        no += r.no;
        oc += r.oc;
        op += r.op;
    }
    if no == 0 {
        (0.0, 0.0)
    } else {
        (oc as f64 / no as f64, (oc + op) as f64 / no as f64)
    }
}

// ---------------------------------------------------------------------
// Table I — per-source extraction results (ObjectRunner)
// ---------------------------------------------------------------------

/// One Table I row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub index: usize,
    pub domain: Domain,
    pub site: String,
    pub optional: Option<bool>,
    pub discarded: bool,
    pub ac: usize,
    pub ap: usize,
    pub ai: usize,
    pub total_attrs: usize,
    pub no: usize,
    pub oc: usize,
    pub op: usize,
    pub oi: usize,
}

/// Compute Table I: ObjectRunner over every source.
pub fn table1(sources: &[Source]) -> Vec<Table1Row> {
    sources
        .iter()
        .enumerate()
        .map(|(i, source)| {
            let run = run_objectrunner(source, SampleStrategy::SodBased);
            table1_row(i + 1, source, &run)
        })
        .collect()
}

fn table1_row(index: usize, source: &Source, run: &SourceRun) -> Table1Row {
    let (ac, ap, ai) = run.report.attr_counts();
    let total_attrs = run
        .report
        .attrs
        .iter()
        .filter(|(_, s)| *s != AttrStatus::NotApplicable)
        .count()
        .max(ac + ap + ai);
    Table1Row {
        index,
        domain: source.spec.domain,
        site: source.spec.name.clone(),
        optional: source
            .spec
            .domain
            .optional_attribute()
            .map(|_| source.spec.optional_present),
        discarded: run.report.discarded,
        ac,
        ap,
        ai,
        total_attrs,
        no: run.report.no,
        oc: run.report.oc,
        op: run.report.op,
        oi: run.report.oi,
    }
}

/// Render Table I as fixed-width text.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "TABLE I — EXTRACTION RESULTS (ObjectRunner)");
    let _ = writeln!(
        out,
        "{:>3} {:<14} {:<22} {:>8} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6}",
        "#", "Domain", "Site", "Optional", "Ac", "Ap", "Ai", "No", "Oc", "Op", "Oi"
    );
    let mut last_domain: Option<Domain> = None;
    for r in rows {
        let domain = if last_domain != Some(r.domain) {
            last_domain = Some(r.domain);
            r.domain.name()
        } else {
            ""
        };
        if r.discarded {
            let _ = writeln!(
                out,
                "{:>3} {:<14} {:<22} (discarded)",
                r.index, domain, r.site
            );
            continue;
        }
        let optional = match r.optional {
            Some(true) => "yes",
            Some(false) => "no",
            None => "-",
        };
        let t = r.total_attrs;
        let _ = writeln!(
            out,
            "{:>3} {:<14} {:<22} {:>8} {:>7} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6}",
            r.index,
            domain,
            r.site,
            optional,
            format!("{}/{t}", r.ac),
            format!("{}/{t}", r.ap),
            format!("{}/{t}", r.ai),
            r.no,
            r.oc,
            r.op,
            r.oi
        );
    }
    out
}

// ---------------------------------------------------------------------
// Table II — SOD-based vs random sample selection
// ---------------------------------------------------------------------

/// One Table II row: a domain under both strategies.
#[derive(Debug, Clone)]
pub struct Table2Row {
    pub domain: Domain,
    pub sod_pc: f64,
    pub sod_pp: f64,
    pub random_pc: f64,
    pub random_pp: f64,
}

/// Compute Table II.
pub fn table2(sources: &[Source], random_seed: u64) -> Vec<Table2Row> {
    Domain::ALL
        .iter()
        .map(|&domain| {
            let domain_sources: Vec<&Source> =
                sources.iter().filter(|s| s.spec.domain == domain).collect();
            let sod_reports: Vec<SourceReport> = domain_sources
                .iter()
                .map(|s| run_objectrunner(s, SampleStrategy::SodBased).report)
                .collect();
            let random_reports: Vec<SourceReport> = domain_sources
                .iter()
                .map(|s| run_objectrunner(s, SampleStrategy::Random(random_seed)).report)
                .collect();
            let (sod_pc, sod_pp) = domain_precision(&sod_reports.iter().collect::<Vec<_>>());
            let (random_pc, random_pp) =
                domain_precision(&random_reports.iter().collect::<Vec<_>>());
            Table2Row {
                domain,
                sod_pc,
                sod_pp,
                random_pc,
                random_pp,
            }
        })
        .collect()
}

/// Render Table II.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "TABLE II — PRECISION BY SAMPLE SELECTION: SOD-BASED vs RANDOM (%)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>8}   {:>8} {:>8}",
        "Domain", "Pc(SOD)", "Pp(SOD)", "Pc(rand)", "Pp(rand)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>8.2} {:>8.2}   {:>8.2} {:>8.2}",
            r.domain.name(),
            r.sod_pc * 100.0,
            r.sod_pp * 100.0,
            r.random_pc * 100.0,
            r.random_pp * 100.0
        );
    }
    out
}

// ---------------------------------------------------------------------
// Table III — system comparison
// ---------------------------------------------------------------------

/// Per-domain, per-system precision, plus the per-source reports
/// (reused by Figure 6).
#[derive(Debug, Clone)]
pub struct Comparison {
    pub domains: Vec<ComparisonRow>,
}

/// One Table III row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    pub domain: Domain,
    /// Per system: (Pc, Pp, per-source reports).
    pub systems: Vec<(SystemId, f64, f64, Vec<SourceReport>)>,
}

/// Compute the full three-system comparison.
pub fn table3(sources: &[Source]) -> Comparison {
    let domains = Domain::ALL
        .iter()
        .map(|&domain| {
            let domain_sources: Vec<&Source> =
                sources.iter().filter(|s| s.spec.domain == domain).collect();
            let systems = [
                SystemId::ObjectRunner,
                SystemId::ExAlg,
                SystemId::RoadRunner,
            ]
            .iter()
            .map(|&system| {
                let reports: Vec<SourceReport> = domain_sources
                    .iter()
                    .map(|s| match system {
                        SystemId::ObjectRunner => {
                            run_objectrunner(s, SampleStrategy::SodBased).report
                        }
                        SystemId::ExAlg => run_exalg(s).report,
                        SystemId::RoadRunner => run_roadrunner(s).report,
                    })
                    .collect();
                let (pc, pp) = domain_precision(&reports.iter().collect::<Vec<_>>());
                (system, pc, pp, reports)
            })
            .collect();
            ComparisonRow { domain, systems }
        })
        .collect();
    Comparison { domains }
}

/// Render Table III.
pub fn render_table3(cmp: &Comparison) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "TABLE III — PERFORMANCE RESULTS (%)");
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>7}   {:>7} {:>7}   {:>7} {:>7}",
        "Domain", "OR Pc", "OR Pp", "EA Pc", "EA Pp", "RR Pc", "RR Pp"
    );
    for row in &cmp.domains {
        let mut cells = String::new();
        for (_, pc, pp, _) in &row.systems {
            let _ = write!(cells, " {:>7.2} {:>7.2}  ", pc * 100.0, pp * 100.0);
        }
        let _ = writeln!(out, "{:<14}{}", row.domain.name(), cells);
    }
    out
}

// ---------------------------------------------------------------------
// Appendix A — dictionary coverage sweep
// ---------------------------------------------------------------------

/// One coverage sweep row.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    pub domain: Domain,
    pub coverage: f64,
    pub pc: f64,
    pub pp: f64,
}

/// Pc/Pp per domain at each dictionary coverage level.
pub fn coverage_sweep(sources: &[Source], coverages: &[f64]) -> Vec<CoverageRow> {
    let mut rows = Vec::new();
    for &coverage in coverages {
        for &domain in &Domain::ALL {
            let reports: Vec<SourceReport> = sources
                .iter()
                .filter(|s| s.spec.domain == domain)
                .map(|s| run_objectrunner_with(s, SampleStrategy::SodBased, coverage).report)
                .collect();
            let (pc, pp) = domain_precision(&reports.iter().collect::<Vec<_>>());
            rows.push(CoverageRow {
                domain,
                coverage,
                pc,
                pp,
            });
        }
    }
    rows
}

/// Render the coverage sweep.
pub fn render_coverage(rows: &[CoverageRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "APPENDIX A — PRECISION BY DICTIONARY COVERAGE (%)");
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>8} {:>8}",
        "Domain", "Coverage", "Pc", "Pp"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>8.0}% {:>8.2} {:>8.2}",
            r.domain.name(),
            r.coverage * 100.0,
            r.pc * 100.0,
            r.pp * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use objectrunner_webgen::{generate_site, PageKind, SiteSpec};

    fn small_sources() -> Vec<Source> {
        // A miniature corpus: one quick source per domain.
        Domain::ALL
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                generate_site(&SiteSpec::clean(
                    &format!("mini-{}", d.name()),
                    d,
                    PageKind::List,
                    8,
                    300 + i as u64,
                ))
            })
            .collect()
    }

    #[test]
    fn table1_rows_cover_every_source() {
        let sources = small_sources();
        let rows = table1(&sources);
        assert_eq!(rows.len(), sources.len());
        let text = render_table1(&rows);
        assert!(text.contains("Concerts"));
        assert!(text.contains("Cars"));
    }

    #[test]
    fn domain_precision_excludes_discarded() {
        let a = SourceReport {
            name: "a".into(),
            optional_present: true,
            discarded: false,
            attrs: vec![],
            no: 10,
            oc: 10,
            op: 0,
            oi: 0,
        };
        let b = SourceReport {
            name: "b".into(),
            discarded: true,
            ..a.clone()
        };
        let (pc, pp) = domain_precision(&[&a, &b]);
        assert!((pc - 1.0).abs() < 1e-12);
        assert!((pp - 1.0).abs() < 1e-12);
    }

    #[test]
    fn render_table2_formats_percentages() {
        let rows = vec![Table2Row {
            domain: Domain::Cars,
            sod_pc: 0.7579,
            sod_pp: 1.0,
            random_pc: 0.7579,
            random_pp: 1.0,
        }];
        let text = render_table2(&rows);
        assert!(text.contains("75.79"));
        assert!(text.contains("100.00"));
    }
}
