//! E10/E12 — template-drift sweep: how much redesign can a stored
//! wrapper absorb, when does the serving layer notice, and how much
//! precision do its two recovery paths — tree-diff *repair* and full
//! re-induction — get back?
//!
//! For three domains, a wrapper is induced on the clean template, then
//! the *same objects* are re-rendered through drift strengths 0–1
//! (`webgen::generate_drifted`). At each strength we report the mean
//! per-page drift score, which staleness trigger fires (`drift` —
//! mean score past 0.5 — or `silent` — most pages extract zero
//! objects while scoring clean, the detector's former blind spot),
//! the cached wrapper's precision on the drifted pages, the precision
//! of the tree-diff-repaired wrapper (or `declined` when the patch
//! refuses the tier), and the precision after full re-induction.
//! A trailing `BLIND` marker calls out any row the serving layer
//! would still sit on silently: zero cached precision with no
//! trigger firing.
//!
//! Usage: `cargo run --release -p objectrunner-eval --bin drift_sweep [--stats-json]`

use objectrunner_core::matching::drift_score;
use objectrunner_core::pipeline::{extract_only, Pipeline, PipelineConfig};
use objectrunner_core::sample::SampleConfig;
use objectrunner_core::wrapper::{repair_wrapper, RepairConfig};
use objectrunner_eval::classify::{classify_source, ExtractedObject};
use objectrunner_eval::runners::instance_to_object;
use objectrunner_sod::Instance;
use objectrunner_webgen::{generate_drifted, generate_site, knowledge, Domain, PageKind, SiteSpec};

const STRENGTHS: [f64; 6] = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];
const THRESHOLD: f64 = 0.5;
/// Mirror of `ServeConfig::empty_page_threshold`: the silent-miss
/// trigger fires when this fraction of pages extracts nothing.
const EMPTY_PAGE_THRESHOLD: f64 = 0.8;

fn pipeline_for(domain: Domain) -> Pipeline {
    let config = PipelineConfig {
        sample: SampleConfig {
            sample_size: 12,
            ..SampleConfig::default()
        },
        ..PipelineConfig::default()
    };
    Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2)).with_config(config)
}

fn to_objects(per_page: &[Vec<Instance>], domain: Domain) -> Vec<Vec<ExtractedObject>> {
    let sod = domain.sod();
    per_page
        .iter()
        .map(|page| page.iter().map(|i| instance_to_object(i, &sod)).collect())
        .collect()
}

fn main() {
    objectrunner_eval::parse_stats_json_flag(std::env::args().skip(1).collect());
    println!(
        "E10/E12 — TEMPLATE-DRIFT SWEEP (drift threshold {THRESHOLD}, \
         silent-miss threshold {EMPTY_PAGE_THRESHOLD})"
    );
    println!(
        "{:<14} {:>9} {:>7} {:>8} {:>10} {:>12} {:>13}",
        "Domain", "strength", "drift", "trigger", "Pc cached", "Pc repaired", "Pc reinduced"
    );

    for (i, domain) in [Domain::Concerts, Domain::Books, Domain::Cars]
        .into_iter()
        .enumerate()
    {
        let mut spec = SiteSpec::clean(
            &format!("drift-{}", domain.name().to_lowercase()),
            domain,
            PageKind::List,
            15,
            17_100 + i as u64,
        );
        spec.style = 0;
        let clean_source = generate_site(&spec);
        let pipeline = pipeline_for(domain);
        let outcome = pipeline
            .run_on_html(&clean_source.pages)
            .expect("clean source must induce");
        if objectrunner_eval::stats_json_enabled() {
            println!(
                "{}",
                objectrunner_obs::export::stats_json_line(
                    &spec.name,
                    "OR",
                    &outcome.stats.snapshot()
                )
            );
        }
        let wrapper = outcome.wrapper;
        let main_block = outcome.main_block;
        let clean_opts = PipelineConfig::default().clean;

        for strength in STRENGTHS {
            let drifted = generate_drifted(&spec, strength);
            let cached = extract_only(
                &wrapper,
                main_block.as_ref(),
                &clean_opts,
                &drifted.pages,
                None,
            );
            let mean_drift = cached
                .docs
                .iter()
                .map(|d| drift_score(&wrapper.template, &wrapper.mapping, d).score())
                .sum::<f64>()
                / cached.docs.len() as f64;
            let empty_fraction = cached.per_page.iter().filter(|p| p.is_empty()).count() as f64
                / cached.per_page.len() as f64;
            let drift_stale = mean_drift >= THRESHOLD;
            let silent_stale = !drift_stale && empty_fraction >= EMPTY_PAGE_THRESHOLD;
            let stale = drift_stale || silent_stale;
            let trigger = if drift_stale {
                "drift"
            } else if silent_stale {
                "silent"
            } else {
                "no"
            };
            if objectrunner_eval::stats_json_enabled() {
                println!(
                    "{}",
                    objectrunner_obs::export::stats_json_line(
                        &format!("{}@{strength}", spec.name),
                        "OR",
                        &cached.stats.snapshot()
                    )
                );
            }

            let cached_pc =
                classify_source(&drifted, &to_objects(&cached.per_page, domain), false).pc();

            // The serving layer's cheap recovery: tree-diff repair of
            // the stored wrapper against the drifted template.
            let repaired_pc = if stale {
                match repair_wrapper(
                    &wrapper,
                    &domain.sod(),
                    &cached.docs,
                    &RepairConfig::default(),
                ) {
                    Ok(outcome) => {
                        let per_page = extract_only(
                            &outcome.wrapper,
                            main_block.as_ref(),
                            &clean_opts,
                            &drifted.pages,
                            None,
                        )
                        .per_page;
                        format!(
                            "{:>12.2}",
                            classify_source(&drifted, &to_objects(&per_page, domain), false).pc()
                                * 100.0
                        )
                    }
                    Err(_) => format!("{:>12}", "declined"),
                }
            } else {
                format!("{:>12}", "—")
            };

            // The expensive fallback: re-induce from the drifted
            // pages themselves (only meaningful once flagged stale).
            let reinduced_pc = if stale {
                let repaired = pipeline_for(domain)
                    .run_on_html(&drifted.pages)
                    .expect("drifted source must re-induce");
                let per_page = extract_only(
                    &repaired.wrapper,
                    repaired.main_block.as_ref(),
                    &clean_opts,
                    &drifted.pages,
                    None,
                )
                .per_page;
                format!(
                    "{:>12.2}",
                    classify_source(&drifted, &to_objects(&per_page, domain), false).pc() * 100.0
                )
            } else {
                format!("{:>12}", "—")
            };

            // A blind-spot row: the serving layer would keep serving
            // this wrapper (no trigger) while it extracts nothing.
            let blind = if !stale && cached_pc == 0.0 && strength > 0.0 {
                "  BLIND"
            } else {
                ""
            };
            println!(
                "{:<14} {:>9.2} {:>7.2} {:>8} {:>10.2} {repaired_pc} {reinduced_pc}{blind}",
                domain.name(),
                strength,
                mean_drift,
                trigger,
                cached_pc * 100.0,
            );
        }
    }
}
