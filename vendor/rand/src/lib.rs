//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in an environment with no registry access, so
//! the handful of `rand 0.8` APIs the generators use are reimplemented
//! here from scratch: `StdRng` (a xoshiro256\*\* generator seeded via
//! splitmix64), the `Rng`/`SeedableRng` traits, and the `SliceRandom`
//! helpers. The streams differ from upstream `rand`, but every in-repo
//! consumer seeds deterministically, so fixtures stay reproducible.

/// Core random-source trait: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding trait; only the `seed_from_u64` entry point is used here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator standing in for rand's
    /// `StdRng`. Not cryptographic; plenty for corpus generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Types that can be drawn uniformly from a range.
pub trait UniformSample: Copy + PartialOrd {
    fn sample_inclusive(rng: &mut impl RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_inclusive(rng: &mut impl RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty sample range");
                let span = (high as i128 - low as i128) as u128 + 1;
                // Multiply-shift bounded sampling; the bias over a u64
                // draw is < 2^-64 per call, irrelevant for fixtures.
                let draw = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing generator methods.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open (`a..b`) or inclusive (`a..=b`)
    /// integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: UniformSample + RangeEnd,
        R: IntoSampleBounds<T>,
    {
        let (low, high) = range.into_sample_bounds();
        T::sample_inclusive(self, low, high)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        // 53 bits of mantissa worth of uniformity.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Integer helper: step `end` down by one for half-open ranges.
pub trait RangeEnd: Sized {
    fn pred(self) -> Self;
}

macro_rules! impl_range_end {
    ($($t:ty),*) => {$(
        impl RangeEnd for $t {
            fn pred(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_range_end!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Normalizes both range flavors to inclusive bounds.
pub trait IntoSampleBounds<T> {
    fn into_sample_bounds(self) -> (T, T);
}

impl<T: UniformSample + RangeEnd> IntoSampleBounds<T> for std::ops::Range<T> {
    fn into_sample_bounds(self) -> (T, T) {
        (self.start, self.end.pred())
    }
}

impl<T: UniformSample> IntoSampleBounds<T> for std::ops::RangeInclusive<T> {
    fn into_sample_bounds(self) -> (T, T) {
        self.into_inner()
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
        }
        // Every value in a small range appears.
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
    }
}
