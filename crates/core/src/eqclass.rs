//! Equivalence classes over dtokens (paper §III-C).
//!
//! "An equivalence class denotes a set of tokens having the same
//! frequency of occurrences in each input page and a role that is
//! deemed unique among tokens. … Consecutive iterations refine the
//! equivalence classes until a fix-point is reached, while at each
//! step the invalid classes are discarded (following the guideline
//! that information, i.e. classes, should be properly ordered or
//! nested)."
//!
//! A class is **ordered** when, on every page, the occurrences of its
//! roles factor into `c` consecutive instances of one fixed role
//! permutation; two classes are **consistent** when their instance
//! spans are pairwise nested or disjoint.

use crate::tokens::{RoleId, SourceTokens};
use objectrunner_html::{FxHashMap, FxHashSet};

/// Parameters of the class analysis.
#[derive(Debug, Clone)]
pub struct EqConfig {
    /// Minimum number of pages a role must occur in to join a class
    /// (the paper varies this "support" between 3 and 5).
    pub min_support: usize,
    /// Minimum class size in roles.
    pub min_roles: usize,
    /// ObjectRunner mode: word occurrences carrying SOD annotations
    /// never join template classes ("relevant data … may be considered
    /// 'too regular', hence part of the page's template, by techniques
    /// that are oblivious to semantics").
    pub annotations_guard: bool,
}

impl Default for EqConfig {
    fn default() -> Self {
        EqConfig {
            min_support: 3,
            min_roles: 2,
            annotations_guard: true,
        }
    }
}

/// One instance span: inclusive occurrence-index range on a page.
pub type Span = (usize, usize);

/// A valid equivalence class.
#[derive(Debug, Clone)]
pub struct EqClass {
    /// Index into [`EqAnalysis::classes`].
    pub id: usize,
    /// Member roles (unordered).
    pub roles: Vec<RoleId>,
    /// Occurrences per page (shared by all member roles).
    pub vector: Vec<u32>,
    /// Per-instance role order.
    pub permutation: Vec<RoleId>,
    /// `spans[page]` = instance spans on that page, in order.
    pub spans: Vec<Vec<Span>>,
}

impl EqClass {
    /// Total instance count across pages.
    pub fn instance_count(&self) -> usize {
        self.spans.iter().map(Vec::len).sum()
    }

    /// Number of pages on which the class occurs.
    pub fn support(&self) -> usize {
        self.vector.iter().filter(|&&c| c > 0).count()
    }

    /// Is this the page-skeleton class (exactly once per page)?
    pub fn is_skeleton(&self) -> bool {
        self.vector.iter().all(|&c| c == 1)
    }
}

/// The outcome of one class-finding round.
#[derive(Debug, Clone, Default)]
pub struct EqAnalysis {
    /// Valid classes (invalid ones were repaired or discarded).
    pub classes: Vec<EqClass>,
    /// `parent[class]` = tightest enclosing class, if any.
    pub parent: Vec<Option<usize>>,
    /// Role → owning class.
    pub role_class: FxHashMap<RoleId, usize>,
    /// Roles evicted while repairing invalid classes.
    pub evicted: Vec<RoleId>,
    /// Classes discarded for nesting violations (diagnostic count).
    pub discarded_classes: usize,
}

impl EqAnalysis {
    /// The tightest class instance span containing occurrence `pos` on
    /// `page`, as `(class, instance_index)`.
    pub fn enclosing_instance(&self, page: usize, pos: usize) -> Option<(usize, usize)> {
        self.enclosing_instance_excluding(page, pos, None)
    }

    /// Like [`Self::enclosing_instance`], ignoring one class (used
    /// when asking for the context *around* a class's own tokens).
    pub fn enclosing_instance_excluding(
        &self,
        page: usize,
        pos: usize,
        exclude: Option<usize>,
    ) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize, usize)> = None; // (class, inst, width)
        for class in &self.classes {
            if Some(class.id) == exclude {
                continue;
            }
            for (i, &(s, e)) in class.spans[page].iter().enumerate() {
                if s <= pos && pos <= e {
                    let width = e - s;
                    if best.map(|(_, _, w)| width < w).unwrap_or(true) {
                        best = Some((class.id, i, width));
                    }
                }
            }
        }
        best.map(|(c, i, _)| (c, i))
    }

    /// Direct children of a class in the nesting hierarchy.
    pub fn children_of(&self, class: Option<usize>) -> Vec<usize> {
        self.parent
            .iter()
            .enumerate()
            .filter(|&(_, p)| *p == class)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Find equivalence classes over the current roles of `src`.
pub fn find_classes(src: &SourceTokens, cfg: &EqConfig) -> EqAnalysis {
    let vectors = src.occurrence_vectors();
    let page_count = src.pages.len();

    // Candidate roles: frequent enough, and in OR mode not
    // annotation-bearing data words.
    let mut annotated_word_roles: FxHashMap<RoleId, bool> = FxHashMap::default();
    let mut tag_roles: FxHashMap<RoleId, bool> = FxHashMap::default();
    for page in &src.pages {
        for occ in &page.occs {
            let is_tag = occ.is_tag();
            *tag_roles.entry(occ.role).or_insert(is_tag) &= is_tag;
            if !is_tag && occ.annotation.is_some() {
                annotated_word_roles.insert(occ.role, true);
            }
        }
    }

    let mut groups: FxHashMap<Vec<u32>, Vec<RoleId>> = FxHashMap::default();
    for (r, vector) in vectors.iter().enumerate() {
        let role = RoleId(r as u32);
        let support = vector.iter().filter(|&&c| c > 0).count();
        if support < cfg.min_support.min(page_count) {
            continue;
        }
        if cfg.annotations_guard
            && !tag_roles.get(&role).copied().unwrap_or(false)
            && annotated_word_roles.get(&role).copied().unwrap_or(false)
        {
            continue;
        }
        groups.entry(vector.clone()).or_default().push(role);
    }

    // Deterministic order: by vector (desc total, then lexicographic).
    let mut grouped: Vec<(Vec<u32>, Vec<RoleId>)> = groups.into_iter().collect();
    grouped.sort_by(|a, b| {
        let ta: u32 = a.0.iter().sum();
        let tb: u32 = b.0.iter().sum();
        ta.cmp(&tb).then_with(|| a.0.cmp(&b.0))
    });

    let mut analysis = EqAnalysis::default();
    for (vector, mut roles) in grouped {
        roles.sort_unstable();
        if roles.len() < cfg.min_roles {
            continue;
        }
        // Template structure is tag-delimited: a class made solely of
        // words is a co-occurring data phrase ("A Study of …"), not
        // template. Label words still join classes alongside tags.
        if !roles
            .iter()
            .any(|&r| tag_roles.get(&r).copied().unwrap_or(false))
        {
            continue;
        }
        if let Some((roles, permutation, spans)) =
            validate_ordered(src, &vector, roles, &mut analysis.evicted, cfg.min_roles)
        {
            let id = analysis.classes.len();
            analysis.classes.push(EqClass {
                id,
                roles,
                vector: vector.clone(),
                permutation,
                spans,
            });
        }
    }

    enforce_nesting(&mut analysis);
    build_hierarchy(&mut analysis);
    for class in &analysis.classes {
        for &r in &class.roles {
            analysis.role_class.insert(r, class.id);
        }
    }
    analysis
}

/// A validated class body: `(roles, permutation, spans)`.
type OrderedClass = (Vec<RoleId>, Vec<RoleId>, Vec<Vec<Span>>);

/// Ordered-class validation with violating-role eviction.
///
/// Returns `(roles, permutation, spans)` when a consistent repetition
/// structure exists (possibly after evicting roles), `None` otherwise.
fn validate_ordered(
    src: &SourceTokens,
    vector: &[u32],
    mut roles: Vec<RoleId>,
    evicted: &mut Vec<RoleId>,
    min_roles: usize,
) -> Option<OrderedClass> {
    loop {
        if roles.len() < min_roles {
            return None;
        }
        match try_factor(src, vector, &roles) {
            Ok((permutation, spans)) => return Some((roles, permutation, spans)),
            Err(worst) => {
                evicted.push(worst);
                roles.retain(|&r| r != worst);
            }
        }
    }
}

/// Try to factor the roles' merged occurrence sequence into repeated
/// permutations. On failure, report the role with the most order
/// violations.
fn try_factor(
    src: &SourceTokens,
    vector: &[u32],
    roles: &[RoleId],
) -> Result<(Vec<RoleId>, Vec<Vec<Span>>), RoleId> {
    let role_set: FxHashSet<RoleId> = roles.iter().copied().collect();
    let k = roles.len();
    let mut permutation: Option<Vec<RoleId>> = None;
    let mut spans: Vec<Vec<Span>> = Vec::with_capacity(src.pages.len());
    let mut violations: FxHashMap<RoleId, usize> = FxHashMap::default();
    let mut ok = true;

    for (p, page) in src.pages.iter().enumerate() {
        let c = vector[p] as usize;
        let mut page_spans = Vec::with_capacity(c);
        if c == 0 {
            spans.push(page_spans);
            continue;
        }
        let seq: Vec<(usize, RoleId)> = page
            .occs
            .iter()
            .enumerate()
            .filter(|(_, o)| role_set.contains(&o.role))
            .map(|(i, o)| (i, o.role))
            .collect();
        debug_assert_eq!(seq.len(), c * k, "vector equality guarantees counts");
        for inst in 0..c {
            let window = &seq[inst * k..(inst + 1) * k];
            let inst_roles: Vec<RoleId> = window.iter().map(|&(_, r)| r).collect();
            // Each instance must contain each role exactly once.
            let mut sorted = inst_roles.clone();
            sorted.sort_unstable();
            let mut expect = roles.to_vec();
            expect.sort_unstable();
            if sorted != expect {
                // Blame roles that repeat within the window.
                let mut seen = FxHashSet::default();
                for &r in &inst_roles {
                    if !seen.insert(r) {
                        *violations.entry(r).or_insert(0) += 1;
                    }
                }
                ok = false;
                continue;
            }
            match &permutation {
                None => permutation = Some(inst_roles),
                Some(perm) => {
                    if *perm != inst_roles {
                        for (expected, &got) in perm.iter().zip(inst_roles.iter()) {
                            if *expected != got {
                                *violations.entry(got).or_insert(0) += 1;
                            }
                        }
                        ok = false;
                    }
                }
            }
            page_spans.push((window[0].0, window[k - 1].0));
        }
        spans.push(page_spans);
    }

    if ok {
        Ok((permutation.expect("c>0 somewhere"), spans))
    } else {
        let worst = violations
            .into_iter()
            .max_by_key(|&(r, v)| (v, r))
            .map(|(r, _)| r)
            .unwrap_or(roles[0]);
        Err(worst)
    }
}

/// Discard classes whose instance spans overlap other classes'
/// spans without containment (paper: classes must be "properly ordered
/// or nested").
fn enforce_nesting(analysis: &mut EqAnalysis) {
    loop {
        let mut to_discard: Option<usize> = None;
        'outer: for a in 0..analysis.classes.len() {
            for b in (a + 1)..analysis.classes.len() {
                if classes_conflict(&analysis.classes[a], &analysis.classes[b]) {
                    // Discard the less-established class: lower
                    // support, then fewer instances, then later id.
                    let ca = &analysis.classes[a];
                    let cb = &analysis.classes[b];
                    let key_a = (ca.support(), ca.instance_count());
                    let key_b = (cb.support(), cb.instance_count());
                    to_discard = Some(if key_a < key_b { a } else { b });
                    break 'outer;
                }
            }
        }
        match to_discard {
            Some(idx) => {
                analysis.classes.remove(idx);
                analysis.discarded_classes += 1;
                for (i, class) in analysis.classes.iter_mut().enumerate() {
                    class.id = i;
                }
            }
            None => break,
        }
    }
}

fn classes_conflict(a: &EqClass, b: &EqClass) -> bool {
    for (sa, sb) in a.spans.iter().zip(b.spans.iter()) {
        for &(s1, e1) in sa {
            for &(s2, e2) in sb {
                let disjoint = e1 < s2 || e2 < s1;
                let a_in_b = s2 <= s1 && e1 <= e2;
                let b_in_a = s1 <= s2 && e2 <= e1;
                if !(disjoint || a_in_b || b_in_a) {
                    return true;
                }
            }
        }
    }
    false
}

/// Parent = tightest class whose instances contain every instance of
/// the child.
fn build_hierarchy(analysis: &mut EqAnalysis) {
    let n = analysis.classes.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for (child, slot) in parent.iter_mut().enumerate() {
        let mut best: Option<(usize, usize)> = None; // (class, total width)
        for cand in 0..n {
            if cand == child {
                continue;
            }
            if contains_all(&analysis.classes[cand], &analysis.classes[child]) {
                let width: usize = analysis.classes[cand]
                    .spans
                    .iter()
                    .flatten()
                    .map(|&(s, e)| e - s)
                    .sum();
                if best.map(|(_, w)| width < w).unwrap_or(true) {
                    best = Some((cand, width));
                }
            }
        }
        *slot = best.map(|(c, _)| c);
    }
    analysis.parent = parent;
}

/// Does every instance of `inner` lie within some instance of `outer`?
fn contains_all(outer: &EqClass, inner: &EqClass) -> bool {
    for (so, si) in outer.spans.iter().zip(inner.spans.iter()) {
        for &(s, e) in si {
            let contained = so.iter().any(|&(os, oe)| os <= s && e <= oe);
            if !contained {
                return false;
            }
        }
    }
    // Identical span sets would contain each other; break the tie by
    // id so the hierarchy stays acyclic.
    !(outer.spans == inner.spans && outer.id > inner.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::AnnotatedPage;
    use crate::tokens::SourceTokens;
    use objectrunner_html::parse;
    use std::collections::HashMap as Map;

    fn plain(html: &str) -> AnnotatedPage {
        AnnotatedPage {
            doc: parse(html),
            annotations: Map::new(),
        }
    }

    /// Three list pages in the style of the paper's running example.
    fn list_pages(counts: &[usize]) -> Vec<AnnotatedPage> {
        counts
            .iter()
            .map(|&n| {
                let recs: String = (0..n)
                    .map(|i| {
                        format!(
                            "<li><div>artist{i}</div><div>date{i} words</div>\
                             <div><span>venue{i}</span><span>addr{i}</span></div></li>"
                        )
                    })
                    .collect();
                plain(&format!("<html><body><ul>{recs}</ul></body></html>"))
            })
            .collect()
    }

    fn cfg() -> EqConfig {
        EqConfig {
            min_support: 3,
            min_roles: 2,
            annotations_guard: true,
        }
    }

    #[test]
    fn finds_skeleton_and_record_classes() {
        let pages = list_pages(&[1, 1, 2, 3]);
        let src = SourceTokens::from_pages(&pages);
        let analysis = find_classes(&src, &cfg());
        let skeleton = analysis
            .classes
            .iter()
            .find(|c| c.is_skeleton())
            .expect("skeleton class");
        // html/body/ul open+close = 6 roles.
        assert!(skeleton.roles.len() >= 6);
        let record = analysis
            .classes
            .iter()
            .find(|c| c.vector == vec![1, 1, 2, 3])
            .expect("record class");
        // Before role differentiation the three <div>s share ONE role
        // (same value, same path) with vector 3n — the paper's point.
        // The record class holds only the once-per-record roles.
        assert!(record.roles.len() >= 2, "got {}", record.roles.len());
        let divs = analysis
            .classes
            .iter()
            .find(|c| c.vector == vec![3, 3, 6, 9])
            .expect("undifferentiated div class");
        assert!(divs
            .roles
            .iter()
            .any(|&r| src.roles.info(r).token.render() == "<div>"));
    }

    #[test]
    fn record_class_nests_in_skeleton() {
        let pages = list_pages(&[1, 2, 2, 4]);
        let src = SourceTokens::from_pages(&pages);
        let analysis = find_classes(&src, &cfg());
        let skeleton = analysis
            .classes
            .iter()
            .position(|c| c.is_skeleton())
            .expect("skeleton");
        let record = analysis
            .classes
            .iter()
            .position(|c| c.vector == vec![1, 2, 2, 4])
            .expect("record");
        assert_eq!(analysis.parent[record], Some(skeleton));
        assert_eq!(analysis.parent[skeleton], None);
    }

    #[test]
    fn permutation_reflects_template_order() {
        let pages = list_pages(&[2, 2, 3]);
        let src = SourceTokens::from_pages(&pages);
        let analysis = find_classes(&src, &cfg());
        let record = analysis
            .classes
            .iter()
            .find(|c| c.vector == vec![2, 2, 3])
            .expect("record");
        // First role of the record permutation is the <li> open tag.
        let first = src.roles.info(record.permutation[0]);
        assert_eq!(first.token.render(), "<li>");
        let last = src
            .roles
            .info(*record.permutation.last().expect("non-empty"));
        assert_eq!(last.token.render(), "</li>");
    }

    #[test]
    fn spans_cover_each_record() {
        let pages = list_pages(&[2, 2, 2]);
        let src = SourceTokens::from_pages(&pages);
        let analysis = find_classes(&src, &cfg());
        let record = analysis
            .classes
            .iter()
            .find(|c| c.vector == vec![2, 2, 2])
            .expect("record");
        for page_spans in &record.spans {
            assert_eq!(page_spans.len(), 2);
            assert!(page_spans[0].1 < page_spans[1].0, "records don't overlap");
        }
    }

    #[test]
    fn low_support_roles_are_excluded() {
        // A tag appearing on a single page must not join any class.
        let mut pages = list_pages(&[1, 1, 1, 1]);
        pages.push(plain(
            "<html><body><ul><li><div>a</div><div>b c</div>\
             <div><span>v</span><span>w</span></div></li><em>rare</em></ul></body></html>",
        ));
        let src = SourceTokens::from_pages(&pages);
        let analysis = find_classes(&src, &cfg());
        for class in &analysis.classes {
            for &r in &class.roles {
                assert_ne!(src.roles.info(r).token.render(), "<em>");
            }
        }
    }

    #[test]
    fn annotated_words_never_join_template_classes() {
        // "New York" decoy: a word at the same position on every page
        // with an address annotation must stay out of classes.
        let mut pages = list_pages(&[1, 1, 1]);
        for page in pages.iter_mut() {
            // Annotate every word occurrence "artist0" as artist.
            let ids: Vec<_> = page
                .doc
                .descendants(page.doc.root())
                .filter(|&id| {
                    matches!(&page.doc.node(id).kind,
                             objectrunner_html::NodeKind::Text(t) if t.starts_with("artist"))
                })
                .collect();
            for id in ids {
                page.annotations
                    .entry(id)
                    .or_default()
                    .push(crate::annotate::Annotation {
                        type_name: "artist".to_owned(),
                        confidence: 0.9,
                    });
            }
        }
        let src = SourceTokens::from_pages(&pages);
        let with_guard = find_classes(&src, &cfg());
        for class in &with_guard.classes {
            for &r in &class.roles {
                assert!(
                    !src.roles.info(r).token.render().starts_with("artist"),
                    "annotated word joined a class"
                );
            }
        }
        // Without the guard (ExAlg-style), the constant word may join.
        let no_guard = find_classes(
            &src,
            &EqConfig {
                annotations_guard: false,
                ..cfg()
            },
        );
        let joined = no_guard.classes.iter().any(|c| {
            c.roles
                .iter()
                .any(|&r| src.roles.info(r).token.render() == "artist0")
        });
        assert!(
            joined,
            "constant word should look like template without the guard"
        );
    }

    #[test]
    fn unordered_roles_are_evicted() {
        // Two tags alternate order across pages: <b> then <i> on one,
        // <i> then <b> on the other two — cannot share a class.
        let htmls = [
            "<div><b>x</b><i>y</i></div>",
            "<div><i>y</i><b>x</b></div>",
            "<div><i>y</i><b>x</b></div>",
        ];
        let pages: Vec<AnnotatedPage> = htmls.iter().map(|h| plain(h)).collect();
        let src = SourceTokens::from_pages(&pages);
        let analysis = find_classes(&src, &cfg());
        // No surviving class contains both <b> and <i>.
        for class in &analysis.classes {
            let tags: Vec<String> = class
                .roles
                .iter()
                .map(|&r| src.roles.info(r).token.render())
                .collect();
            assert!(
                !(tags.contains(&"<b>".to_owned()) && tags.contains(&"<i>".to_owned())),
                "inconsistent order must split the class: {tags:?}"
            );
        }
        assert!(!analysis.evicted.is_empty());
    }

    #[test]
    fn optional_region_forms_its_own_class() {
        // The <em>date</em> is present in only some records.
        let htmls = [
            "<ul><li><b>a</b><em>d</em></li><li><b>a</b></li></ul>",
            "<ul><li><b>a</b><em>d</em></li><li><b>a</b><em>d</em></li></ul>",
            "<ul><li><b>a</b></li><li><b>a</b><em>d</em></li></ul>",
        ];
        let pages: Vec<AnnotatedPage> = htmls.iter().map(|h| plain(h)).collect();
        let src = SourceTokens::from_pages(&pages);
        let analysis = find_classes(&src, &cfg());
        let em_class = analysis
            .classes
            .iter()
            .find(|c| {
                c.roles
                    .iter()
                    .any(|&r| src.roles.info(r).token.render() == "<em>")
            })
            .expect("em class exists");
        assert_eq!(em_class.vector, vec![1, 2, 1]);
        let li_class = analysis
            .classes
            .iter()
            .find(|c| {
                c.roles
                    .iter()
                    .any(|&r| src.roles.info(r).token.render() == "<li>")
            })
            .expect("li class");
        assert_eq!(li_class.vector, vec![2, 2, 2]);
        // The optional class nests inside the record class.
        assert_eq!(analysis.parent[em_class.id], Some(li_class.id));
    }

    #[test]
    fn enclosing_instance_finds_tightest_span() {
        let pages = list_pages(&[2, 2, 2]);
        let src = SourceTokens::from_pages(&pages);
        let analysis = find_classes(&src, &cfg());
        let record = analysis
            .classes
            .iter()
            .find(|c| c.vector == vec![2, 2, 2])
            .expect("record");
        // The <li> open position itself belongs to the record span but
        // to no narrower class span.
        let (s0, _) = record.spans[0][0];
        let (class, inst) = analysis.enclosing_instance(0, s0).expect("enclosed");
        assert_eq!(class, record.id);
        assert_eq!(inst, 0);
        // Positions inside the first <div> resolve to a tighter class.
        let (inner_class, _) = analysis.enclosing_instance(0, s0 + 1).expect("enclosed");
        assert_ne!(inner_class, record.id);
    }
}
