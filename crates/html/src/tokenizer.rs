//! A tolerant HTML tokenizer.
//!
//! Produces a flat stream of [`Token`]s from raw HTML text. The
//! tokenizer never fails; any byte sequence yields *some* token stream.
//! Tag and attribute names are lower-cased, attribute values are
//! entity-decoded, and the contents of raw-text elements
//! (`<script>`, `<style>`, `<textarea>`, `<title>`) are captured as a
//! single text token without interpreting embedded `<`.

use crate::entities;
use crate::intern::Symbol;

/// One HTML token. Tag and attribute identities are interned
/// [`Symbol`]s, so downstream passes compare tags with a `u32`
/// comparison instead of string equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v">`; `self_closing` records a trailing `/>`.
    StartTag {
        name: Symbol,
        attrs: Vec<(Symbol, Symbol)>,
        self_closing: bool,
    },
    /// `</name>`
    EndTag { name: Symbol },
    /// Character data between tags, entity-decoded, whitespace preserved.
    Text(String),
    /// `<!-- ... -->`
    Comment(String),
    /// `<!DOCTYPE ...>`
    Doctype(String),
}

impl Token {
    /// Convenience constructor for tests and generators.
    pub fn start(name: &str) -> Self {
        Token::StartTag {
            name: Symbol::intern(name),
            attrs: Vec::new(),
            self_closing: false,
        }
    }

    /// Convenience constructor for tests and generators.
    pub fn end(name: &str) -> Self {
        Token::EndTag {
            name: Symbol::intern(name),
        }
    }

    /// Convenience constructor for tests and generators.
    pub fn text(t: &str) -> Self {
        Token::Text(t.to_owned())
    }
}

/// Elements whose content is raw text (no markup interpretation).
pub(crate) const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style", "textarea", "title"];

/// Tokenize `input` into a stream of [`Token`]s.
///
/// ```
/// use objectrunner_html::tokenizer::{tokenize, Token};
/// let toks = tokenize("<p class=\"x\">hi</p>");
/// assert_eq!(toks.len(), 3);
/// assert!(matches!(&toks[1], Token::Text(t) if t == "hi"));
/// ```
pub fn tokenize(input: &str) -> Vec<Token> {
    Tokenizer::new(input).run()
}

struct Tokenizer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<Token>,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            out: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'<' {
                self.consume_markup();
            } else {
                self.consume_text();
            }
        }
        self.out
    }

    fn consume_text(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        if !raw.is_empty() {
            self.out.push(Token::Text(entities::decode(raw)));
        }
    }

    fn consume_markup(&mut self) {
        debug_assert_eq!(self.bytes[self.pos], b'<');
        let rest = &self.bytes[self.pos..];
        if rest.len() < 2 {
            // Lone '<' at EOF: literal text.
            self.out.push(Token::Text("<".to_owned()));
            self.pos += 1;
            return;
        }
        match rest[1] {
            b'!' => self.consume_declaration(),
            b'/' => self.consume_end_tag(),
            b'?' => self.consume_processing_instruction(),
            c if c.is_ascii_alphabetic() => self.consume_start_tag(),
            _ => {
                // '<' followed by junk: literal text.
                self.out.push(Token::Text("<".to_owned()));
                self.pos += 1;
            }
        }
    }

    fn consume_declaration(&mut self) {
        if self.input[self.pos..].starts_with("<!--") {
            let body_start = self.pos + 4;
            match self.input[body_start..].find("-->") {
                Some(off) => {
                    let body = &self.input[body_start..body_start + off];
                    self.out.push(Token::Comment(body.to_owned()));
                    self.pos = body_start + off + 3;
                }
                None => {
                    // Unterminated comment: swallow to EOF.
                    let body = &self.input[body_start..];
                    self.out.push(Token::Comment(body.to_owned()));
                    self.pos = self.bytes.len();
                }
            }
            return;
        }
        // <!DOCTYPE ...> or other declarations: up to next '>'.
        let body_start = self.pos + 2;
        let end = self.find_byte(body_start, b'>').unwrap_or(self.bytes.len());
        let mut body = self.input[body_start..end].trim();
        // Strip the leading DOCTYPE keyword, keeping only its subject.
        if body.len() >= 7 && body[..7].eq_ignore_ascii_case("doctype") {
            body = body[7..].trim_start();
        }
        self.out.push(Token::Doctype(body.to_owned()));
        self.pos = (end + 1).min(self.bytes.len());
    }

    fn consume_processing_instruction(&mut self) {
        // Treated as a comment-like construct; skipped by the DOM builder.
        let end = self
            .find_byte(self.pos + 2, b'>')
            .unwrap_or(self.bytes.len());
        let body = self.input[self.pos + 2..end].to_owned();
        self.out.push(Token::Comment(body));
        self.pos = (end + 1).min(self.bytes.len());
    }

    fn consume_end_tag(&mut self) {
        let name_start = self.pos + 2;
        let mut i = name_start;
        while i < self.bytes.len() && is_name_byte(self.bytes[i]) {
            i += 1;
        }
        let raw = &self.input[name_start..i];
        let end = self.find_byte(i, b'>').unwrap_or(self.bytes.len());
        self.pos = (end + 1).min(self.bytes.len());
        if !raw.is_empty() {
            self.out.push(Token::EndTag {
                name: Symbol::intern_lower(raw),
            });
        }
    }

    fn consume_start_tag(&mut self) {
        let name_start = self.pos + 1;
        let mut i = name_start;
        while i < self.bytes.len() && is_name_byte(self.bytes[i]) {
            i += 1;
        }
        let name = Symbol::intern_lower(&self.input[name_start..i]);
        let (attrs, self_closing, after) = self.consume_attributes(i);
        self.pos = after;
        let is_raw = RAW_TEXT_ELEMENTS.contains(&name.as_str());
        self.out.push(Token::StartTag {
            name,
            attrs,
            self_closing,
        });
        if is_raw && !self_closing {
            self.consume_raw_text(name.as_str());
        }
    }

    /// Parse attributes starting at byte offset `i`; returns
    /// (attrs, self_closing, position after the closing '>').
    fn consume_attributes(&mut self, mut i: usize) -> (Vec<(Symbol, Symbol)>, bool, usize) {
        let mut attrs = Vec::new();
        let mut self_closing = false;
        loop {
            while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= self.bytes.len() {
                return (attrs, self_closing, i);
            }
            match self.bytes[i] {
                b'>' => return (attrs, self_closing, i + 1),
                b'/' => {
                    self_closing = true;
                    i += 1;
                }
                _ => {
                    let name_start = i;
                    while i < self.bytes.len()
                        && !self.bytes[i].is_ascii_whitespace()
                        && !matches!(self.bytes[i], b'=' | b'>' | b'/')
                    {
                        i += 1;
                    }
                    let name = &self.input[name_start..i];
                    while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    let value = if i < self.bytes.len() && self.bytes[i] == b'=' {
                        i += 1;
                        while i < self.bytes.len() && self.bytes[i].is_ascii_whitespace() {
                            i += 1;
                        }
                        let (v, next) = self.consume_attr_value(i);
                        i = next;
                        v
                    } else {
                        String::new()
                    };
                    if !name.is_empty() {
                        attrs.push((
                            Symbol::intern_lower(name),
                            Symbol::intern(&entities::decode(&value)),
                        ));
                    } else if i < self.bytes.len() && !matches!(self.bytes[i], b'>' | b'/') {
                        // Junk byte that is neither name nor terminator:
                        // skip it to guarantee progress.
                        i += 1;
                    }
                }
            }
        }
    }

    fn consume_attr_value(&self, i: usize) -> (String, usize) {
        if i >= self.bytes.len() {
            return (String::new(), i);
        }
        match self.bytes[i] {
            q @ (b'"' | b'\'') => {
                let start = i + 1;
                let end = self.find_byte(start, q).unwrap_or(self.bytes.len());
                (
                    self.input[start..end].to_owned(),
                    (end + 1).min(self.bytes.len()),
                )
            }
            _ => {
                let start = i;
                let mut j = i;
                while j < self.bytes.len()
                    && !self.bytes[j].is_ascii_whitespace()
                    && self.bytes[j] != b'>'
                {
                    j += 1;
                }
                (self.input[start..j].to_owned(), j)
            }
        }
    }

    fn consume_raw_text(&mut self, name: &str) {
        let close = format!("</{name}");
        let hay = &self.input[self.pos..];
        let lower = hay.to_ascii_lowercase();
        match lower.find(&close) {
            Some(off) => {
                if off > 0 {
                    self.out.push(Token::Text(hay[..off].to_owned()));
                }
                // Let consume_end_tag handle the close tag itself.
                self.pos += off;
            }
            None => {
                if !hay.is_empty() {
                    self.out.push(Token::Text(hay.to_owned()));
                }
                self.pos = self.bytes.len();
            }
        }
    }

    fn find_byte(&self, from: usize, byte: u8) -> Option<usize> {
        self.bytes[from.min(self.bytes.len())..]
            .iter()
            .position(|&b| b == byte)
            .map(|off| from + off)
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b':'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_with_attrs(
        toks: &[Token],
        idx: usize,
    ) -> (&'static str, Vec<(&'static str, &'static str)>) {
        match &toks[idx] {
            Token::StartTag { name, attrs, .. } => (
                name.as_str(),
                attrs
                    .iter()
                    .map(|(a, v)| (a.as_str(), v.as_str()))
                    .collect(),
            ),
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn tokenizes_simple_markup() {
        let toks = tokenize("<div><p>hello</p></div>");
        assert_eq!(
            toks,
            vec![
                Token::start("div"),
                Token::start("p"),
                Token::text("hello"),
                Token::end("p"),
                Token::end("div"),
            ]
        );
    }

    #[test]
    fn lowercases_tag_and_attr_names() {
        let toks = tokenize("<DIV CLASS=\"Main\">x</DIV>");
        let (name, attrs) = start_with_attrs(&toks, 0);
        assert_eq!(name, "div");
        assert_eq!(attrs, vec![("class", "Main")]);
        assert_eq!(toks[2], Token::end("div"));
    }

    #[test]
    fn parses_attribute_styles() {
        let toks = tokenize("<input type=text checked value='a b' data-x=\"1&amp;2\">");
        let (_, attrs) = start_with_attrs(&toks, 0);
        assert_eq!(
            attrs,
            vec![
                ("type", "text"),
                ("checked", ""),
                ("value", "a b"),
                ("data-x", "1&2"),
            ]
        );
    }

    #[test]
    fn handles_self_closing() {
        let toks = tokenize("<br/><img src=x />");
        assert!(matches!(
            &toks[0],
            Token::StartTag { self_closing: true, name, .. } if name.as_str() == "br"
        ));
        assert!(matches!(
            &toks[1],
            Token::StartTag { self_closing: true, name, .. } if name.as_str() == "img"
        ));
    }

    #[test]
    fn captures_script_as_raw_text() {
        let toks = tokenize("<script>if (a<b) { x(); }</script><p>t</p>");
        assert_eq!(toks[0], Token::start("script"));
        assert_eq!(toks[1], Token::text("if (a<b) { x(); }"));
        assert_eq!(toks[2], Token::end("script"));
        assert_eq!(toks[3], Token::start("p"));
    }

    #[test]
    fn raw_text_close_tag_is_case_insensitive() {
        let toks = tokenize("<style>.a{}</STYLE>after");
        assert_eq!(toks[1], Token::text(".a{}"));
        assert_eq!(toks[2], Token::end("style"));
        assert_eq!(toks[3], Token::text("after"));
    }

    #[test]
    fn unterminated_script_swallows_to_eof() {
        let toks = tokenize("<script>var x = 1;");
        assert_eq!(toks[1], Token::text("var x = 1;"));
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn parses_comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- note --><p>x</p>");
        assert_eq!(toks[0], Token::Doctype("html".to_owned()));
        assert_eq!(toks[1], Token::Comment(" note ".to_owned()));
    }

    #[test]
    fn unterminated_comment_swallows_to_eof() {
        let toks = tokenize("a<!-- no end");
        assert_eq!(toks[0], Token::text("a"));
        assert_eq!(toks[1], Token::Comment(" no end".to_owned()));
    }

    #[test]
    fn decodes_entities_in_text() {
        let toks = tokenize("<p>Simon &amp; Garfunkel</p>");
        assert_eq!(toks[1], Token::text("Simon & Garfunkel"));
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokenize("a < b");
        assert_eq!(
            toks,
            vec![Token::text("a "), Token::text("<"), Token::text(" b")]
        );
    }

    #[test]
    fn lone_lt_at_eof() {
        assert_eq!(tokenize("x<"), vec![Token::text("x"), Token::text("<")]);
    }

    #[test]
    fn end_tag_with_junk_attrs() {
        let toks = tokenize("</p class=\"x\">");
        assert_eq!(toks, vec![Token::end("p")]);
    }

    #[test]
    fn processing_instruction_becomes_comment() {
        let toks = tokenize("<?xml version=\"1.0\"?><p>x</p>");
        assert!(matches!(&toks[0], Token::Comment(_)));
        assert_eq!(toks[1], Token::start("p"));
    }

    #[test]
    fn never_panics_on_garbage() {
        for garbage in [
            "<",
            "<<>><",
            "<a href=",
            "<a href='x",
            "</",
            "<!",
            "<!-",
            "<p <q>",
        ] {
            let _ = tokenize(garbage);
        }
    }

    #[test]
    fn unquoted_attr_stops_at_gt() {
        let toks = tokenize("<a href=http://x.com/y>link</a>");
        let (_, attrs) = start_with_attrs(&toks, 0);
        assert_eq!(attrs[0].1, "http://x.com/y");
        assert_eq!(toks[1], Token::text("link"));
    }
}
