//! Serialization back to HTML text and the flat *page token stream*
//! consumed by the wrapper-induction algorithms.
//!
//! Both ObjectRunner's equivalence-class analysis and the ExAlg /
//! RoadRunner baselines operate on a sequence of tokens where a token
//! is an HTML tag or a text *word* (paper §III-C: "occurrence vectors
//! for page tokens (words or HTML tags)").

use crate::dom::{is_void, Document, NodeId, NodeKind};
use crate::entities::encode_text;
use crate::intern::Symbol;
use std::cmp::Ordering;
use std::fmt;

/// One token of the flattened page, as used by wrapper induction.
/// `Copy` — 8 bytes of interned handles, so token streams clone and
/// compare without touching strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageToken {
    /// An opening tag `<name>` (attributes intentionally omitted; they
    /// are part of the template's fixed structure, not of the data).
    Open(Symbol),
    /// A closing tag `</name>`.
    Close(Symbol),
    /// One word of text content.
    Word(Symbol),
}

impl PageToken {
    /// True for `Open`/`Close`.
    pub fn is_tag(&self) -> bool {
        !matches!(self, PageToken::Word(_))
    }

    /// The token's text form, used in separator strings.
    pub fn render(&self) -> String {
        match self {
            PageToken::Open(t) => format!("<{t}>"),
            PageToken::Close(t) => format!("</{t}>"),
            PageToken::Word(w) => w.as_str().to_owned(),
        }
    }

    fn order_key(&self) -> (u8, &'static str) {
        match self {
            PageToken::Open(t) => (0, t.as_str()),
            PageToken::Close(t) => (1, t.as_str()),
            PageToken::Word(w) => (2, w.as_str()),
        }
    }
}

// Ordered by resolved string, not by symbol index: interning order
// depends on thread interleaving, so index order would make any
// sorted-by-token output nondeterministic across runs.
impl PartialOrd for PageToken {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PageToken {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order_key().cmp(&other.order_key())
    }
}

impl fmt::Display for PageToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Flatten the subtree at `start` into a token stream. Each token is
/// paired with the id of the DOM node it came from, so annotations on
/// DOM nodes can be transferred onto tokens.
pub fn token_stream(doc: &Document, start: NodeId) -> Vec<(PageToken, NodeId)> {
    let mut out = Vec::new();
    flatten(doc, start, &mut out);
    out
}

fn flatten(doc: &Document, id: NodeId, out: &mut Vec<(PageToken, NodeId)>) {
    match &doc.node(id).kind {
        NodeKind::Document => {
            for &c in doc.children(id) {
                flatten(doc, c, out);
            }
        }
        NodeKind::Element { name, .. } => {
            out.push((PageToken::Open(*name), id));
            for &c in doc.children(id) {
                flatten(doc, c, out);
            }
            if !is_void(*name) {
                out.push((PageToken::Close(*name), id));
            }
        }
        NodeKind::Text(t) => {
            for w in t.split_whitespace() {
                out.push((PageToken::Word(Symbol::intern(w)), id));
            }
        }
        NodeKind::Comment(_) => {}
    }
}

/// Serialize the subtree at `start` back to HTML text.
pub fn to_html(doc: &Document, start: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, start, &mut out);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).kind {
        NodeKind::Document => {
            for &c in doc.children(id) {
                write_node(doc, c, out);
            }
        }
        NodeKind::Element { name, attrs } => {
            out.push('<');
            out.push_str(name.as_str());
            for (a, v) in attrs {
                out.push(' ');
                out.push_str(a.as_str());
                let v = v.as_str();
                if !v.is_empty() {
                    out.push_str("=\"");
                    out.push_str(&v.replace('"', "&quot;"));
                    out.push('"');
                }
            }
            out.push('>');
            if !is_void(*name) {
                for &c in doc.children(id) {
                    write_node(doc, c, out);
                }
                out.push_str("</");
                out.push_str(name.as_str());
                out.push('>');
            }
        }
        NodeKind::Text(t) => out.push_str(&encode_text(t)),
        NodeKind::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn token_stream_interleaves_tags_and_words() {
        let doc = parse("<div><p>two words</p></div>");
        let toks: Vec<PageToken> = token_stream(&doc, doc.root())
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(
            toks,
            vec![
                PageToken::Open("div".into()),
                PageToken::Open("p".into()),
                PageToken::Word("two".into()),
                PageToken::Word("words".into()),
                PageToken::Close("p".into()),
                PageToken::Close("div".into()),
            ]
        );
    }

    #[test]
    fn words_carry_their_text_node_id() {
        let doc = parse("<p>a b</p>");
        let stream = token_stream(&doc, doc.root());
        let word_nodes: Vec<NodeId> = stream
            .iter()
            .filter(|(t, _)| !t.is_tag())
            .map(|&(_, id)| id)
            .collect();
        assert_eq!(word_nodes.len(), 2);
        assert_eq!(word_nodes[0], word_nodes[1]);
    }

    #[test]
    fn void_elements_have_no_close_token() {
        let doc = parse("<p>a<br>b</p>");
        let toks: Vec<PageToken> = token_stream(&doc, doc.root())
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert!(toks.contains(&PageToken::Open("br".into())));
        assert!(!toks.contains(&PageToken::Close("br".into())));
    }

    #[test]
    fn serialize_round_trips_structure() {
        let src = "<div id=\"m\"><p>hello world</p><br></div>";
        let doc = parse(src);
        let html = to_html(&doc, doc.root());
        assert_eq!(html, src);
        // Re-parsing the output yields identical text content.
        let doc2 = parse(&html);
        assert_eq!(doc.text_content(doc.root()), doc2.text_content(doc2.root()));
    }

    #[test]
    fn serialize_escapes_text() {
        let doc = parse("<p>a &lt; b</p>");
        let html = to_html(&doc, doc.root());
        assert_eq!(html, "<p>a &lt; b</p>");
    }

    #[test]
    fn boolean_attr_serializes_bare() {
        let doc = parse("<input type=\"hidden\" checked>");
        let html = to_html(&doc, doc.root());
        assert_eq!(html, "<input type=\"hidden\" checked>");
    }

    #[test]
    fn render_forms() {
        assert_eq!(PageToken::Open("div".into()).render(), "<div>");
        assert_eq!(PageToken::Close("div".into()).render(), "</div>");
        assert_eq!(PageToken::Word("x".into()).render(), "x");
    }
}
