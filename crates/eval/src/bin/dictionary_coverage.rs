//! Appendix A: precision at 20% vs 10% dictionary coverage.

use objectrunner_eval::tables::{corpus_sources, coverage_sweep, render_coverage};

fn main() {
    objectrunner_eval::parse_stats_json_flag(std::env::args().skip(1).collect());
    eprintln!("generating corpus…");
    let sources = corpus_sources();
    eprintln!("sweeping dictionary coverage (20%, 10%, 5%, 2%)…");
    let rows = coverage_sweep(&sources, &[0.2, 0.1, 0.05, 0.02]);
    print!("{}", render_coverage(&rows));
}
