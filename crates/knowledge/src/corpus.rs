//! A synthetic Web-text corpus (the ClueWeb substitution).
//!
//! The paper's second way of populating a dictionary is "to look for
//! instances of a given type (specified by its name) directly on the
//! Web … applying Hearst patterns on a corpus of Web pages that is
//! pre-processed for this purpose."
//!
//! [`CorpusBuilder`] fabricates such a corpus deterministically: given
//! `(instance, type)` pairs, it embeds them into Hearst-pattern
//! sentences with controlled redundancy, interleaved with distractor
//! sentences and *misleading* pattern sentences (so harvesting has real
//! noise to overcome).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A corpus: a flat list of sentences (one "document" per sentence is
/// enough for hit counting).
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    sentences: Vec<String>,
}

impl Corpus {
    /// All sentences.
    pub fn sentences(&self) -> &[String] {
        &self.sentences
    }

    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// True when the corpus has no sentences.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// Add one sentence.
    pub fn push(&mut self, sentence: String) {
        self.sentences.push(sentence);
    }

    /// Count sentences containing `needle` (case-insensitive substring
    /// on word boundaries). This is the `count(i)` of Eq. 1.
    pub fn hit_count(&self, needle: &str) -> usize {
        let needle = needle.to_lowercase();
        self.sentences
            .iter()
            .filter(|s| contains_phrase(&s.to_lowercase(), &needle))
            .count()
    }
}

/// Word-boundary-aware substring check.
pub(crate) fn contains_phrase(haystack: &str, phrase: &str) -> bool {
    if phrase.is_empty() {
        return false;
    }
    let mut from = 0;
    while let Some(off) = haystack[from..].find(phrase) {
        let start = from + off;
        let end = start + phrase.len();
        let left_ok = start == 0
            || !haystack[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric());
        let right_ok = end == haystack.len()
            || !haystack[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric());
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Deterministic corpus fabrication.
pub struct CorpusBuilder {
    rng: StdRng,
    corpus: Corpus,
}

/// Templates used to *support* a (instance, type) pair — these are the
/// Hearst patterns the harvester knows about.
pub const SUPPORT_TEMPLATES: &[&str] = &[
    "{type}s such as {instance} are widely known .",
    "{instance} is a {type} from the city .",
    "{instance} is an {type} of note .",
    "many {type}s , including {instance} , appeared .",
    "{type}s like {instance} draw huge crowds .",
    "{instance} and other {type}s were mentioned .",
];

/// Distractor sentence stock (no pattern, no instances).
const DISTRACTORS: &[&str] = &[
    "the weather tomorrow looks mild with light winds .",
    "traffic on the main bridge was heavy this morning .",
    "a new bakery opened near the old station last week .",
    "local residents discussed the budget at the town hall .",
    "the museum extended its opening hours for the summer .",
    "several roads will be closed for maintenance on sunday .",
];

impl CorpusBuilder {
    /// A builder with a fixed seed (fully deterministic output).
    pub fn new(seed: u64) -> Self {
        CorpusBuilder {
            rng: StdRng::seed_from_u64(seed),
            corpus: Corpus::default(),
        }
    }

    /// Embed `(instance, type)` with `redundancy` supporting sentences
    /// (more redundancy ⇒ higher Eq. 1 score).
    pub fn support(&mut self, instance: &str, type_name: &str, redundancy: usize) -> &mut Self {
        for _ in 0..redundancy {
            let template = SUPPORT_TEMPLATES
                .choose(&mut self.rng)
                .expect("non-empty template stock");
            let sentence = template
                .replace("{type}", &type_name.to_lowercase())
                .replace("{instance}", instance);
            self.corpus.push(sentence);
        }
        self
    }

    /// Mention `instance` *without* any pattern (raises `count(i)`,
    /// lowering its normalized score — background frequency).
    pub fn mention(&mut self, instance: &str, times: usize) -> &mut Self {
        for _ in 0..times {
            let filler = DISTRACTORS.choose(&mut self.rng).expect("non-empty stock");
            self.corpus
                .push(format!("people talked about {instance} while {filler}"));
        }
        self
    }

    /// Add a *false* pattern sentence pairing `instance` with a wrong
    /// type (noise the scorer must down-weight via redundancy).
    pub fn mislead(&mut self, instance: &str, wrong_type: &str) -> &mut Self {
        self.support(instance, wrong_type, 1)
    }

    /// Add `n` distractor sentences.
    pub fn distractors(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            let base = DISTRACTORS.choose(&mut self.rng).expect("non-empty stock");
            // Slight perturbation so sentences are not all identical.
            let num: u32 = self.rng.gen_range(0..1000);
            self.corpus.push(format!("{base} ( ref {num} )"));
        }
        self
    }

    /// Finish and return the corpus.
    pub fn build(&mut self) -> Corpus {
        std::mem::take(&mut self.corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_deterministic() {
        let mk = || {
            CorpusBuilder::new(7)
                .support("Metallica", "Artist", 5)
                .mention("Metallica", 3)
                .distractors(10)
                .build()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.sentences(), b.sentences());
    }

    #[test]
    fn support_sentences_contain_both_parts() {
        let c = CorpusBuilder::new(1)
            .support("Coldplay", "Artist", 4)
            .build();
        assert_eq!(c.len(), 4);
        for s in c.sentences() {
            assert!(contains_phrase(&s.to_lowercase(), "coldplay"), "{s}");
            assert!(s.to_lowercase().contains("artist"), "{s}");
        }
    }

    #[test]
    fn hit_count_counts_sentences_not_occurrences() {
        let mut c = Corpus::default();
        c.push("Metallica Metallica Metallica".to_owned());
        c.push("no mention here".to_owned());
        c.push("metallica played".to_owned());
        assert_eq!(c.hit_count("Metallica"), 2);
    }

    #[test]
    fn hit_count_respects_word_boundaries() {
        let mut c = Corpus::default();
        c.push("the cars drove by".to_owned());
        assert_eq!(c.hit_count("car"), 0);
        assert_eq!(c.hit_count("cars"), 1);
    }

    #[test]
    fn phrase_check_handles_multiword() {
        assert!(contains_phrase("saw the town hall yesterday", "town hall"));
        assert!(!contains_phrase("townhall", "town hall"));
        assert!(!contains_phrase("x", ""));
    }

    #[test]
    fn mentions_do_not_use_patterns() {
        let c = CorpusBuilder::new(3).mention("Muse", 5).build();
        for s in c.sentences() {
            assert!(!s.contains("such as"));
            assert!(!s.contains("is a "));
        }
    }
}
