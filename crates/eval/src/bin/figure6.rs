//! Regenerate Figure 6: (a) object classification rates and
//! (b) incompletely managed sources, per system per domain.

use objectrunner_eval::figures::{figure6a, figure6b, render_figure6a, render_figure6b};
use objectrunner_eval::tables::{corpus_sources, table3};

fn main() {
    objectrunner_eval::parse_stats_json_flag(std::env::args().skip(1).collect());
    eprintln!("generating corpus…");
    let sources = corpus_sources();
    eprintln!("running all three systems…");
    let cmp = table3(&sources);
    print!("{}", render_figure6a(&figure6a(&cmp)));
    println!();
    print!("{}", render_figure6b(&figure6b(&cmp)));
}
