//! Serving-core trajectory point (`BENCH_serve.json`).
//!
//! Drives the daemon's TCP front door the way a crawler fleet does:
//! `--conns` concurrent connections, each pipelining `--requests`
//! cached extracts in bursts of `--burst` lines, against two in-process
//! servers over the same seeded wrapper store:
//!
//! * **pooled** — the real serving core (`serve_tcp`): sharded
//!   lock-free wrapper reads, a bounded worker pool, request batching
//!   and buffered writes;
//! * **baseline** — the pre-pool architecture, reconstructed here for
//!   comparison: one global `Mutex<Service>`, a thread per connection,
//!   one unbuffered write per response.
//!
//! The document records throughput (requests/sec over the wall time of
//! the full run) and client-observed latency quantiles (burst send →
//! response arrival) for both servers, the pooled server's own extract
//! histogram quantiles, and the sanity gates `ci.sh` checks: every
//! pooled response must normalize byte-identical to a serial
//! `handle_line` reference, and a correctly budgeted run must shed
//! nothing. `host_cpus` is recorded because the spread between the two
//! servers is hardware-honest: on a single hardware thread the pooled
//! win comes from batching amortization and buffered writes, not
//! parallelism.
//!
//! Output is one JSON document on stdout; a recorded run is committed
//! as `BENCH_serve.json` at the repository root.

use objectrunner_obs::LATENCY_BUCKETS_MICROS;
use objectrunner_serve::{serve_tcp, PoolConfig, ServeConfig, Service, REQUEST_LATENCY};
use objectrunner_store::Json;
use objectrunner_webgen::{generate_site, Domain, PageKind, SiteSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const SOURCE: &str = "bench-books";

fn service(store_dir: PathBuf) -> Service {
    Service::new(ServeConfig {
        store_dir,
        threads: Some(1),
        ..ServeConfig::default()
    })
}

/// Induce and persist the wrapper both servers will serve, and return
/// the extract request line every client sends.
fn seed_wrapper(store_dir: &Path, pages: usize) -> String {
    let site = generate_site(&SiteSpec::clean(
        SOURCE,
        Domain::Books,
        PageKind::List,
        pages.max(2),
        17_031,
    ));
    let page_json = Json::Arr(site.pages.iter().take(pages).map(Json::str).collect());
    let induce = Json::Obj(vec![
        ("cmd".into(), Json::str("induce")),
        ("source".into(), Json::str(SOURCE)),
        ("domain".into(), Json::str("Books")),
        (
            "pages".into(),
            Json::Arr(site.pages.iter().map(Json::str).collect()),
        ),
    ])
    .render();
    let seeder = service(store_dir.to_path_buf());
    let response = seeder.handle_line(&induce);
    assert!(
        response.contains("\"ok\":true"),
        "seed induction failed: {response}"
    );
    Json::Obj(vec![
        ("cmd".into(), Json::str("extract")),
        ("source".into(), Json::str(SOURCE)),
        ("pages".into(), page_json),
    ])
    .render()
}

/// Strip the fields that legitimately differ between runs: the
/// per-request `trace` id and the wall-clock `stats` timings.
fn normalize(raw: &str) -> String {
    match Json::parse(raw).expect("valid response") {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| k != "trace" && k != "stats")
                .collect(),
        )
        .render(),
        other => other.render(),
    }
}

/// The pre-pool serving loop, kept here as the regression baseline:
/// accept, spawn a thread, take the one global service lock per line,
/// write each response unbuffered. The acceptor thread is leaked; the
/// bench process exits when done.
fn serve_baseline(listener: TcpListener, service: Arc<Mutex<Service>>) {
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut stream = stream;
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    let response = service.lock().expect("service lock").handle_line(&line);
                    if writeln!(stream, "{response}").is_err() {
                        break;
                    }
                }
            });
        }
    });
}

struct LoadResult {
    wall_micros: u128,
    /// Client-observed burst-send → response-arrival times, micros.
    latencies: Vec<u64>,
    mismatches: usize,
}

/// Fire `conns` connections, each sending `requests` extract lines in
/// pipelined bursts of `burst`, and compare every response against the
/// normalized serial reference.
fn run_load(
    addr: SocketAddr,
    conns: usize,
    requests: usize,
    burst: usize,
    extract: &str,
    expected: &str,
) -> LoadResult {
    // Warm the wrapper from disk outside the timed window, so both
    // servers are measured in cached steady state.
    let mut warm = TcpStream::connect(addr).expect("warm connect");
    writeln!(warm, "{extract}").expect("warm send");
    let mut line = String::new();
    BufReader::new(&warm)
        .read_line(&mut line)
        .expect("warm response");
    assert!(line.contains("\"ok\":true"), "warmup failed: {line}");
    drop(warm);

    let t0 = Instant::now();
    let per_conn: Vec<(Vec<u64>, usize)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|_| {
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let mut latencies = Vec::with_capacity(requests);
                    let mut mismatches = 0usize;
                    let mut sent = 0usize;
                    while sent < requests {
                        let n = burst.min(requests - sent);
                        let mut lines = String::new();
                        for _ in 0..n {
                            lines.push_str(extract);
                            lines.push('\n');
                        }
                        let burst_t0 = Instant::now();
                        (&stream).write_all(lines.as_bytes()).expect("send burst");
                        for _ in 0..n {
                            let mut response = String::new();
                            reader.read_line(&mut response).expect("read response");
                            latencies.push(burst_t0.elapsed().as_micros() as u64);
                            if normalize(response.trim_end()) != expected {
                                mismatches += 1;
                            }
                        }
                        sent += n;
                    }
                    (latencies, mismatches)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let wall_micros = t0.elapsed().as_micros();

    let mut latencies = Vec::with_capacity(conns * requests);
    let mut mismatches = 0;
    for (lat, mis) in per_conn {
        latencies.extend(lat);
        mismatches += mis;
    }
    latencies.sort_unstable();
    LoadResult {
        wall_micros,
        latencies,
        mismatches,
    }
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn rps(total: usize, wall_micros: u128) -> f64 {
    total as f64 / (wall_micros as f64 / 1e6)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = |name: &str, default: usize| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let conns = arg("--conns", 64);
    let requests = arg("--requests", 16);
    let burst = arg("--burst", 8).max(1);
    let pages = arg("--pages", 3).max(1);
    let workers = arg("--workers", 0); // 0 = pool default
    let total = conns * requests;
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let dir: PathBuf =
        std::env::temp_dir().join(format!("objectrunner-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let extract = seed_wrapper(&dir, pages);

    // The serial reference every response is held against.
    let serial = service(dir.clone());
    let expected = normalize(&serial.handle_line(&extract));
    assert!(expected.contains("\"ok\":true"), "serial reference failed");
    drop(serial);

    // Baseline: global mutex, thread per connection.
    let baseline_service = Arc::new(Mutex::new(service(dir.clone())));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind baseline");
    let baseline_addr = listener.local_addr().expect("baseline addr");
    serve_baseline(listener, baseline_service);
    let baseline = run_load(baseline_addr, conns, requests, burst, &extract, &expected);

    // Pooled: the real serving core, budgeted so nothing sheds.
    let pooled_service = Arc::new(service(dir.clone()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind pooled");
    let mut pool = PoolConfig {
        max_conns: conns + 8,
        inflight: (conns * burst).max(64),
        ..PoolConfig::default()
    };
    if workers > 0 {
        pool.workers = workers;
    }
    let pool_workers = pool.workers;
    let handle = serve_tcp(listener, Arc::clone(&pooled_service), pool);
    let pooled = run_load(handle.addr(), conns, requests, burst, &extract, &expected);

    let snap = pooled_service.obs().snapshot();
    let batched = snap.counter("objectrunner.serve.serving.batched_requests");
    let batches = snap.counter("objectrunner.serve.serving.batches");
    let shed_requests = snap.counter("objectrunner.serve.serving.shed_requests");
    let shed_conns = snap.counter("objectrunner.serve.serving.shed_conns");
    // Per-domain key (lowercased domain name); resolve by prefix so
    // the bench doesn't bake in the serving core's casing.
    let server_hist = snap
        .histograms
        .iter()
        .find(|(k, _)| k.starts_with("objectrunner.serve.extract.latency_micros."))
        .map(|(_, h)| h.clone())
        .unwrap_or_default();
    let (server_p50, server_p99) = (server_hist.quantile(0.5), server_hist.quantile(0.99));

    // The live-telemetry view of the same traffic: the 60 s sliding
    // window over the request-latency histogram holds every sample of
    // a sub-minute run, so its quantiles must agree with the
    // cumulative histogram's to within one bucket — the window is
    // just a different read over the identical records.
    let now = pooled_service
        .obs()
        .clock()
        .map_or(0, |c| c.monotonic_micros());
    let windowed = pooled_service
        .obs()
        .windows()
        .and_then(|w| w.get(REQUEST_LATENCY))
        .map(|w| w.snapshot(now, 60_000_000))
        .unwrap_or_default();
    let cumulative = snap
        .histograms
        .iter()
        .find(|(k, _)| k.as_str() == REQUEST_LATENCY)
        .map(|(_, h)| h.clone())
        .unwrap_or_default();
    let bucket = |v: u64| {
        LATENCY_BUCKETS_MICROS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(LATENCY_BUCKETS_MICROS.len())
    };
    let window_agrees = [0.5, 0.99, 0.999]
        .iter()
        .all(|&q| bucket(windowed.quantile(q)).abs_diff(bucket(cumulative.quantile(q))) <= 1);
    assert!(
        window_agrees,
        "windowed quantiles diverge from cumulative histogram: \
         window p50/p99/p999 = {}/{}/{}, histogram = {}/{}/{}",
        windowed.quantile(0.5),
        windowed.quantile(0.99),
        windowed.quantile(0.999),
        cumulative.quantile(0.5),
        cumulative.quantile(0.99),
        cumulative.quantile(0.999),
    );
    handle.shutdown();

    let baseline_rps = rps(total, baseline.wall_micros);
    let pooled_rps = rps(total, pooled.wall_micros);
    let pooled_equals_serial = pooled.mismatches == 0 && baseline.mismatches == 0;

    let _ = std::fs::remove_dir_all(&dir);

    println!("{{");
    println!("  \"bench\": \"serve\",");
    println!("  \"host_cpus\": {host_cpus},");
    println!("  \"conns\": {conns},");
    println!("  \"requests_per_conn\": {requests},");
    println!("  \"burst\": {burst},");
    println!("  \"pages_per_request\": {pages},");
    println!("  \"total_requests\": {total},");
    println!("  \"pool_workers\": {pool_workers},");
    println!("  \"baseline_wall_micros\": {},", baseline.wall_micros);
    println!("  \"baseline_rps\": {baseline_rps:.1},");
    println!(
        "  \"baseline_p50_micros\": {},",
        quantile(&baseline.latencies, 0.5)
    );
    println!(
        "  \"baseline_p99_micros\": {},",
        quantile(&baseline.latencies, 0.99)
    );
    println!(
        "  \"baseline_p999_micros\": {},",
        quantile(&baseline.latencies, 0.999)
    );
    println!("  \"pooled_wall_micros\": {},", pooled.wall_micros);
    println!("  \"pooled_rps\": {pooled_rps:.1},");
    println!(
        "  \"pooled_p50_micros\": {},",
        quantile(&pooled.latencies, 0.5)
    );
    println!(
        "  \"pooled_p99_micros\": {},",
        quantile(&pooled.latencies, 0.99)
    );
    println!(
        "  \"pooled_p999_micros\": {},",
        quantile(&pooled.latencies, 0.999)
    );
    println!("  \"pooled_server_p50_micros\": {server_p50},");
    println!("  \"pooled_server_p99_micros\": {server_p99},");
    println!(
        "  \"pooled_window_p50_micros\": {},",
        windowed.quantile(0.5)
    );
    println!(
        "  \"pooled_window_p99_micros\": {},",
        windowed.quantile(0.99)
    );
    println!(
        "  \"pooled_window_p999_micros\": {},",
        windowed.quantile(0.999)
    );
    println!("  \"window_agrees_with_histogram\": {window_agrees},");
    println!(
        "  \"speedup_vs_baseline\": {:.2},",
        pooled_rps / baseline_rps
    );
    println!("  \"batches\": {batches},");
    println!("  \"batched_requests\": {batched},");
    println!("  \"shed_requests\": {shed_requests},");
    println!("  \"shed_conns\": {shed_conns},");
    println!("  \"pooled_equals_serial\": {pooled_equals_serial}");
    println!("}}");
}
