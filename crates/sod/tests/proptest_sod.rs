//! Property-based tests for the SOD type algebra.

use objectrunner_sod::{canonicalize, Multiplicity, Sod, SodNode};
use proptest::prelude::*;

fn arb_multiplicity() -> impl Strategy<Value = Multiplicity> {
    prop_oneof![
        Just(Multiplicity::One),
        Just(Multiplicity::Optional),
        Just(Multiplicity::Star),
        Just(Multiplicity::Plus),
        (1u32..4, 0u32..4).prop_map(|(n, extra)| Multiplicity::Range(n, n + extra)),
    ]
}

fn arb_node(depth: u32) -> impl Strategy<Value = SodNode> {
    let leaf =
        ("[a-z]{2,8}", arb_multiplicity()).prop_map(|(type_name, multiplicity)| SodNode::Entity {
            type_name,
            multiplicity,
        });
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            ("[a-z]{2,6}", prop::collection::vec(inner.clone(), 1..4))
                .prop_map(|(name, children)| SodNode::Tuple { name, children }),
            (inner.clone(), arb_multiplicity()).prop_map(|(child, multiplicity)| {
                SodNode::Set {
                    child: Box::new(child),
                    multiplicity,
                }
            }),
            (inner.clone(), inner)
                .prop_map(|(a, b)| SodNode::Disjunction(Box::new(a), Box::new(b))),
        ]
    })
}

fn arb_sod() -> impl Strategy<Value = Sod> {
    ("[a-z]{2,6}", prop::collection::vec(arb_node(3), 1..4))
        .prop_map(|(name, children)| Sod::new(SodNode::Tuple { name, children }))
}

proptest! {
    /// Canonicalization is idempotent (Fig. 4 is a normal form).
    #[test]
    fn canonicalize_is_idempotent(sod in arb_sod()) {
        let once = canonicalize(&sod);
        let twice = canonicalize(&once);
        prop_assert_eq!(once, twice);
    }

    /// Canonicalization preserves the multiset of entity types.
    #[test]
    fn canonicalize_preserves_entity_types(sod in arb_sod()) {
        let mut before: Vec<String> =
            sod.entity_types().into_iter().map(str::to_owned).collect();
        let canon = canonicalize(&sod);
        let mut after: Vec<String> =
            canon.entity_types().into_iter().map(str::to_owned).collect();
        before.sort();
        after.sort();
        prop_assert_eq!(before, after);
    }

    /// In canonical form, no tuple has a direct tuple child.
    #[test]
    fn canonical_tuples_never_nest_directly(sod in arb_sod()) {
        fn check(node: &SodNode) -> bool {
            match node {
                SodNode::Tuple { children, .. } => children.iter().all(|c| {
                    !matches!(c, SodNode::Tuple { .. }) && check(c)
                }),
                SodNode::Set { child, .. } => check(child),
                SodNode::Disjunction(a, b) => check(a) && check(b),
                SodNode::Entity { .. } => true,
            }
        }
        prop_assert!(check(canonicalize(&sod).root()));
    }

    /// Multiplicity bounds are consistent with acceptance.
    #[test]
    fn multiplicity_bounds_match_accepts(m in arb_multiplicity(), count in 0usize..12) {
        let within = count as u32 >= m.min()
            && m.max().map(|x| count as u32 <= x).unwrap_or(true);
        prop_assert_eq!(m.accepts(count), within);
    }

    /// `is_optional` ⇔ zero is accepted; `is_repeating` ⇔ two is
    /// accepted or the bound exceeds one.
    #[test]
    fn multiplicity_flags_are_consistent(m in arb_multiplicity()) {
        prop_assert_eq!(m.is_optional(), m.accepts(0));
        let can_repeat = m.max().map(|x| x > 1).unwrap_or(true);
        prop_assert_eq!(m.is_repeating(), can_repeat);
    }

    /// Display output is parse-stable enough to be non-empty and to
    /// contain every entity type name.
    #[test]
    fn display_mentions_every_entity_type(sod in arb_sod()) {
        let text = sod.to_string();
        for t in sod.entity_types() {
            prop_assert!(text.contains(t), "{text} missing {t}");
        }
    }

    /// Set-entity types are a subset of all entity types.
    #[test]
    fn set_types_are_a_subset(sod in arb_sod()) {
        let all = sod.entity_types();
        for t in sod.set_entity_types() {
            prop_assert!(all.contains(&t));
        }
    }
}
