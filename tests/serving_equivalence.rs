//! Acceptance guard for the serving fast path: on the golden corpus,
//! a *cached* extraction — stored wrapper, `extract_only`, no
//! induction stages — must be byte-identical to the fresh single-shot
//! pipeline run that induced the wrapper, and its stage timings must
//! prove induction was skipped.

use objectrunner::core::pipeline::{extract_only, Pipeline, PipelineConfig};
use objectrunner::core::sample::SampleConfig;
use objectrunner::core::stage::Stage;
use objectrunner::store::{load, save, StoredWrapper};
use objectrunner::webgen::{generate_site, knowledge, Domain, PageKind, SiteSpec};

/// Same corpus as `golden_equivalence.rs`.
fn corpus(domain: Domain, index: usize) -> Vec<String> {
    let spec = SiteSpec::clean(
        &format!("golden-{}", domain.name()),
        domain,
        PageKind::List,
        15,
        17_000 + index as u64,
    );
    generate_site(&spec).pages
}

fn config() -> PipelineConfig {
    PipelineConfig {
        sample: SampleConfig {
            sample_size: 12,
            ..SampleConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn cached_extraction_is_byte_identical_to_the_pipeline_and_skips_induction() {
    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        let pages = corpus(domain, i);
        let cfg = config();
        let clean = cfg.clean.clone();
        let pipeline =
            Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2)).with_config(cfg);
        let outcome = pipeline
            .run_on_html(&pages)
            .unwrap_or_else(|e| panic!("{} failed to wrap: {e}", domain.name()));
        let fresh: Vec<String> = outcome.objects.iter().map(|o| o.to_string()).collect();

        // Round-trip through the store, as the serving layer does.
        let stored = StoredWrapper {
            source: format!("golden-{}", domain.name()),
            domain: domain.name().to_lowercase(),
            revision: 1,
            sod: domain.sod(),
            wrapper: outcome.wrapper,
            main_block: outcome.main_block,
            clean,
            repair: None,
        };
        let reloaded = load(&save(&stored)).expect("stored wrapper must load");

        let cached = extract_only(
            &reloaded.wrapper,
            reloaded.main_block.as_ref(),
            &reloaded.clean,
            &pages,
            None,
        );
        let served: Vec<String> = cached.objects().iter().map(|o| o.to_string()).collect();
        assert_eq!(
            fresh,
            served,
            "{}: cached extraction diverged from the pipeline",
            domain.name()
        );

        // The fast path must not have run any induction stage.
        for stage in [Stage::Annotate, Stage::Sample, Stage::Wrap] {
            assert!(
                cached.stats.stage(stage).is_none(),
                "{}: {} ran on the cached path",
                domain.name(),
                stage.name()
            );
        }
        for stage in [Stage::Parse, Stage::Clean, Stage::Extract] {
            assert!(
                cached.stats.stage(stage).is_some(),
                "{}: {} missing from the cached path",
                domain.name(),
                stage.name()
            );
        }
    }
}
