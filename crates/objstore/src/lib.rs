//! Durable object store for harvested extractions.
//!
//! The extraction pipeline turns pages into [`Instance`] trees and the
//! serving layer streams them out — but nothing so far *keeps* them.
//! This crate is the persistence tier downstream of de-duplication
//! (paper Fig. 1's final stage): a directory of append-only segment
//! files plus a checksummed manifest, holding one live version per
//! real-world object with **per-attribute provenance** — which source
//! page produced each attribute value, under which wrapper revision
//! (including repair lineage), at what time and confidence.
//!
//! Layout of a store directory:
//!
//! ```text
//! MANIFEST                 ORMAN frame: generation, counters, segment list
//! seg-g00001-00000.seg     ORSEG v1 header + checksummed record frames
//! seg-g00001-00001.seg     …
//! ```
//!
//! Guarantees, mirroring the wrapper store (`crates/store`):
//!
//! * **crash-safe append** — records are fsynced before the manifest
//!   commits (write `MANIFEST.tmp`, rename); a torn tail past the
//!   committed length is truncated away on open, never half-parsed;
//! * **fail-loud** — truncation or bit rot inside the committed prefix
//!   is a typed [`ObjStoreError`], never a partial object;
//! * **deterministic bytes** — ingest stages records per identity key
//!   and appends in key order, so equal inputs produce equal segment
//!   bytes regardless of extraction thread count;
//! * **compaction** — [`store::ObjectStore::compact`] rewrites live
//!   records into a fresh generation and drops superseded versions;
//!   query results are byte-identical across a compaction.
//!
//! Object identity comes from `core::dedup`: ingest keys instances
//! with [`objectrunner_core::dedup::object_key_checked`] and fuses new
//! sightings into the stored version with
//! [`objectrunner_core::dedup::fuse`], carrying the contributing
//! page's provenance over for exactly the attributes it added.

use objectrunner_sod::Instance;
use std::fmt;

pub mod manifest;
pub mod query;
pub mod record;
pub mod segment;
pub mod store;

pub use manifest::{Manifest, SegmentMeta, MANIFEST_FILE, MANIFEST_VERSION};
pub use query::{Filter, FilterOp, Query, QueryResult, DEFAULT_LIMIT, MAX_LIMIT};
pub use record::{instance_from_json, instance_json, record_json, AttrProvenance, ObjectRecord};
pub use store::{
    CompactReport, IngestContext, IngestObject, IngestReport, ObjectStore, StoreStatus,
};

/// Failures of the object store. Everything is loud and typed; no
/// operation ever yields a partially-decoded object.
#[derive(Debug)]
pub enum ObjStoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A manifest or segment file is malformed before its payload can
    /// be trusted (bad magic/header, frame structure).
    BadHeader { file: String, detail: String },
    /// The format version is outside this build's supported window.
    UnsupportedVersion(u32),
    /// A checksum or declared length does not match the bytes on disk
    /// (truncation inside the committed prefix, bit rot).
    Corrupt { file: String, detail: String },
    /// Bytes decoded fine but the payload violates the record/manifest
    /// schema (missing field, provenance misaligned with attributes).
    Malformed { file: String, detail: String },
}

impl fmt::Display for ObjStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjStoreError::Io(e) => write!(f, "io error: {e}"),
            ObjStoreError::BadHeader { file, detail } => {
                write!(f, "bad header in {file}: {detail}")
            }
            ObjStoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported object store format version {v}")
            }
            ObjStoreError::Corrupt { file, detail } => write!(f, "corrupt {file}: {detail}"),
            ObjStoreError::Malformed { file, detail } => write!(f, "malformed {file}: {detail}"),
        }
    }
}

impl std::error::Error for ObjStoreError {}

impl From<std::io::Error> for ObjStoreError {
    fn from(e: std::io::Error) -> ObjStoreError {
        ObjStoreError::Io(e)
    }
}

/// Count the atomic values a fused tuple field contributes to
/// [`Instance::flatten`] — the unit provenance is tracked in.
pub(crate) fn atom_count(instance: &Instance) -> usize {
    match instance {
        Instance::Atomic { .. } => 1,
        Instance::Tuple { fields, .. } => fields.iter().map(atom_count).sum(),
        Instance::Set(items) => items.iter().map(atom_count).sum(),
    }
}
