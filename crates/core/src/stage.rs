//! The explicit stage graph of the ObjectRunner pipeline.
//!
//! The monolithic `run_on_documents` is decomposed into named stages
//! with a fixed dependency order:
//!
//! ```text
//!   Parse ─▶ Clean ─▶ Segment ─▶ Annotate/Sample ─▶ Wrap ─▶ Extract
//!   per-page  per-page  per-page+vote   per-page rounds   per-support  per-page
//! ```
//!
//! * **Per-page stages** (Parse, Clean, Segment scoring, Annotate
//!   rounds, Extract) fan out across the [`Executor`]'s workers; their
//!   reductions run in page-index order, so the fan-out is invisible in
//!   the output.
//! * **Whole-source stages** (the Segment vote, Sample shrinking, Wrap)
//!   are sequential folds over per-page results — they are the points
//!   where cross-page state is combined, and keeping them sequential is
//!   what makes `threads = N` byte-identical to `threads = 1`.
//! * **Wrap** additionally fans out across the §IV self-validation
//!   loop's candidate support values (3..=5 by default); the winner is
//!   chosen by replaying the serial loop's (quality, support-order)
//!   rule over the precomputed results.
//!
//! Each stage reports wall-clock and summed-worker CPU time through
//! [`StageTiming`], surfaced in `PipelineStats::stage_timings`.

use crate::exec::Executor;
use crate::wrapper::Wrapper;
use objectrunner_html::{clean_document, parse, CleanOptions, Document};
use objectrunner_segment::{
    score_page, simplify_to_main_block, vote_main_block, LayoutOptions, MainBlockChoice,
};
use objectrunner_sod::Instance;
use std::time::{Duration, Instant};

/// The pipeline's stages, in dependency order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// HTML → DOM, per page.
    Parse,
    /// JTidy-style cleaning, per page.
    Clean,
    /// Layout + main-block scoring per page, cross-page vote,
    /// per-page simplification.
    Segment,
    /// Recognizer annotation rounds, per page (runs inside Sample).
    Annotate,
    /// Algorithm 1 sample selection (whole-source; includes Annotate).
    Sample,
    /// Speculative §IV self-validation work that a serial run would
    /// also have paid but whose wrappers lost (or tied) the support
    /// vote. Kept distinct from Wrap so per-stage CPU totals sum to
    /// pipeline wall time instead of double-counting rerun work.
    SampleRerun,
    /// Algorithm 2 wrapper generation across candidate supports
    /// (whole-source, fanned out per support value).
    Wrap,
    /// Template application to every page.
    Extract,
}

impl Stage {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Clean => "clean",
            Stage::Segment => "segment",
            Stage::Annotate => "annotate",
            Stage::Sample => "sample",
            Stage::SampleRerun => "sample.rerun",
            Stage::Wrap => "wrap",
            Stage::Extract => "extract",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall/CPU accounting for one executed stage.
///
/// `cpu_micros` is the summed busy time of the workers that ran the
/// stage's items; at `threads = 1` it tracks `wall_micros`, and the
/// ratio `cpu / wall` approximates the stage's effective parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    pub stage: Stage,
    pub wall_micros: u128,
    pub cpu_micros: u128,
}

impl StageTiming {
    /// Record a stage that started at `start` and kept workers busy for
    /// `busy` in total.
    pub fn record(stage: Stage, start: Instant, busy: Duration) -> StageTiming {
        StageTiming {
            stage,
            wall_micros: start.elapsed().as_micros(),
            cpu_micros: busy.as_micros(),
        }
    }
}

/// Parse stage: raw HTML batch → documents, fanned out per page.
pub fn parse_stage(exec: &Executor, pages: &[&str]) -> (Vec<Document>, StageTiming) {
    let start = Instant::now();
    let (docs, busy) = exec.map_timed(pages, |_, html| parse(html));
    (docs, StageTiming::record(Stage::Parse, start, busy))
}

/// Clean stage: in-place JTidy-style cleaning, fanned out per page.
pub fn clean_stage(exec: &Executor, docs: &mut [Document], opts: &CleanOptions) -> StageTiming {
    let start = Instant::now();
    let busy = exec.for_each_mut(docs, |_, doc| clean_document(doc, opts));
    StageTiming::record(Stage::Clean, start, busy)
}

/// Segment stage: score candidate main blocks per page concurrently,
/// vote across pages in page order, then simplify every page to the
/// winning block. Returns the choice (None when no page yields a
/// candidate block — pages are then left untouched).
pub fn segment_stage(
    exec: &Executor,
    docs: &mut [Document],
    opts: &LayoutOptions,
) -> (Option<MainBlockChoice>, StageTiming) {
    let start = Instant::now();
    let (scores, mut busy) = exec.map_timed(docs, |_, doc| score_page(doc, opts));
    let choice = vote_main_block(scores);
    if let Some(choice) = &choice {
        busy += exec.for_each_mut(docs, |_, doc| {
            let _ = simplify_to_main_block(doc, choice);
        });
    }
    (choice, StageTiming::record(Stage::Segment, start, busy))
}

/// Segment stage, replay half: apply a previously voted (persisted)
/// main-block choice to every page without re-scoring or re-voting.
/// This is the serving-layer fast path — a cached wrapper carries the
/// choice it was induced with, so new pages of the same source simplify
/// to the identical block.
pub fn apply_block_stage(
    exec: &Executor,
    docs: &mut [Document],
    choice: &MainBlockChoice,
) -> StageTiming {
    let start = Instant::now();
    let busy = exec.for_each_mut(docs, |_, doc| {
        let _ = simplify_to_main_block(doc, choice);
    });
    StageTiming::record(Stage::Segment, start, busy)
}

/// Extract stage: apply a wrapper to every page, fanned out per page.
/// Returns per-page instances (page boundaries preserved) so callers
/// can keep extraction paired with its page.
pub fn extract_stage(
    exec: &Executor,
    wrapper: &Wrapper,
    docs: &[Document],
) -> (Vec<Vec<Instance>>, StageTiming) {
    let start = Instant::now();
    let (per_page, busy) = exec.map_timed(docs, |_, doc| wrapper.extract_document(doc));
    (per_page, StageTiming::record(Stage::Extract, start, busy))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(records: usize) -> String {
        let recs: String = (0..records)
            .map(|i| format!("<li>record {i} with a fairly descriptive body text</li>"))
            .collect();
        format!(
            "<html><body>\
             <div class=\"nav\">home products about contact</div>\
             <div class=\"content\"><ul>{recs}</ul></div>\
             <div class=\"footer\">copyright fine print terms privacy</div>\
             </body></html>"
        )
    }

    fn run_stages(threads: usize) -> Vec<String> {
        let exec = Executor::new(threads);
        let pages: Vec<String> = (0..9).map(|i| page(3 + i)).collect();
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        let (mut docs, parse_t) = parse_stage(&exec, &refs);
        assert_eq!(parse_t.stage, Stage::Parse);
        assert_eq!(docs.len(), 9);
        let clean_t = clean_stage(&exec, &mut docs, &CleanOptions::default());
        assert_eq!(clean_t.stage, Stage::Clean);
        let (choice, segment_t) = segment_stage(&exec, &mut docs, &LayoutOptions::default());
        assert_eq!(segment_t.stage, Stage::Segment);
        assert!(choice.is_some(), "content block found");
        docs.iter()
            .map(|d| objectrunner_html::to_html(d, d.root()))
            .collect()
    }

    #[test]
    fn staged_output_is_thread_count_invariant() {
        let seq = run_stages(1);
        let par = run_stages(8);
        assert_eq!(seq, par, "threads=8 diverged from threads=1");
        // The nav/footer noise is gone after segmentation.
        for html in &seq {
            assert!(!html.contains("copyright"));
            assert!(html.contains("record 0"));
        }
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = [
            Stage::Parse,
            Stage::Clean,
            Stage::Segment,
            Stage::Annotate,
            Stage::Sample,
            Stage::SampleRerun,
            Stage::Wrap,
            Stage::Extract,
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        assert_eq!(
            names,
            vec![
                "parse",
                "clean",
                "segment",
                "annotate",
                "sample",
                "sample.rerun",
                "wrap",
                "extract"
            ]
        );
    }
}
