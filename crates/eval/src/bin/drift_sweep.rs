//! E10 — template-drift sweep: how much redesign can a stored wrapper
//! absorb, when does the drift detector fire, and does re-induction
//! recover full precision?
//!
//! For three domains, a wrapper is induced on the clean template, then
//! the *same objects* are re-rendered through drift strengths 0–1
//! (`webgen::generate_drifted`). At each strength we report the mean
//! per-page drift score, whether the serving layer would flag the
//! wrapper stale (threshold 0.5), the cached wrapper's precision on
//! the drifted pages, and the precision after re-inducing from them.
//!
//! Usage: `cargo run --release -p objectrunner-eval --bin drift_sweep [--stats-json]`

use objectrunner_core::matching::drift_score;
use objectrunner_core::pipeline::{extract_only, Pipeline, PipelineConfig};
use objectrunner_core::sample::SampleConfig;
use objectrunner_eval::classify::{classify_source, ExtractedObject};
use objectrunner_eval::runners::instance_to_object;
use objectrunner_sod::Instance;
use objectrunner_webgen::{generate_drifted, generate_site, knowledge, Domain, PageKind, SiteSpec};

const STRENGTHS: [f64; 6] = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0];
const THRESHOLD: f64 = 0.5;

fn pipeline_for(domain: Domain) -> Pipeline {
    let config = PipelineConfig {
        sample: SampleConfig {
            sample_size: 12,
            ..SampleConfig::default()
        },
        ..PipelineConfig::default()
    };
    Pipeline::new(domain.sod(), knowledge::recognizers_for(domain, 0.2)).with_config(config)
}

fn to_objects(per_page: &[Vec<Instance>], domain: Domain) -> Vec<Vec<ExtractedObject>> {
    let sod = domain.sod();
    per_page
        .iter()
        .map(|page| page.iter().map(|i| instance_to_object(i, &sod)).collect())
        .collect()
}

fn main() {
    objectrunner_eval::parse_stats_json_flag(std::env::args().skip(1).collect());
    println!("E10 — TEMPLATE-DRIFT SWEEP (threshold {THRESHOLD})");
    println!(
        "{:<14} {:>9} {:>7} {:>7} {:>10} {:>12}",
        "Domain", "strength", "drift", "stale", "Pc cached", "Pc reinduced"
    );

    for (i, domain) in [Domain::Concerts, Domain::Books, Domain::Cars]
        .into_iter()
        .enumerate()
    {
        let mut spec = SiteSpec::clean(
            &format!("drift-{}", domain.name().to_lowercase()),
            domain,
            PageKind::List,
            15,
            17_100 + i as u64,
        );
        spec.style = 0;
        let clean_source = generate_site(&spec);
        let pipeline = pipeline_for(domain);
        let outcome = pipeline
            .run_on_html(&clean_source.pages)
            .expect("clean source must induce");
        if objectrunner_eval::stats_json_enabled() {
            println!(
                "{}",
                objectrunner_obs::export::stats_json_line(
                    &spec.name,
                    "OR",
                    &outcome.stats.snapshot()
                )
            );
        }
        let wrapper = outcome.wrapper;
        let main_block = outcome.main_block;
        let clean_opts = PipelineConfig::default().clean;

        for strength in STRENGTHS {
            let drifted = generate_drifted(&spec, strength);
            let cached = extract_only(
                &wrapper,
                main_block.as_ref(),
                &clean_opts,
                &drifted.pages,
                None,
            );
            let mean_drift = cached
                .docs
                .iter()
                .map(|d| drift_score(&wrapper.template, &wrapper.mapping, d).score())
                .sum::<f64>()
                / cached.docs.len() as f64;
            let stale = mean_drift >= THRESHOLD;
            if objectrunner_eval::stats_json_enabled() {
                println!(
                    "{}",
                    objectrunner_obs::export::stats_json_line(
                        &format!("{}@{strength}", spec.name),
                        "OR",
                        &cached.stats.snapshot()
                    )
                );
            }

            let cached_pc =
                classify_source(&drifted, &to_objects(&cached.per_page, domain), false).pc();

            // The serving layer's repair: re-induce from the drifted
            // pages themselves (only meaningful once flagged stale).
            let reinduced_pc = if stale {
                let repaired = pipeline_for(domain)
                    .run_on_html(&drifted.pages)
                    .expect("drifted source must re-induce");
                let per_page = extract_only(
                    &repaired.wrapper,
                    repaired.main_block.as_ref(),
                    &clean_opts,
                    &drifted.pages,
                    None,
                )
                .per_page;
                format!(
                    "{:>12.2}",
                    classify_source(&drifted, &to_objects(&per_page, domain), false).pc() * 100.0
                )
            } else {
                format!("{:>12}", "—")
            };

            println!(
                "{:<14} {:>9.2} {:>7.2} {:>7} {:>10.2} {reinduced_pc}",
                domain.name(),
                strength,
                mean_drift,
                if stale { "yes" } else { "no" },
                cached_pc * 100.0,
            );
        }
    }
}
