//! A tolerant HTML tokenizer.
//!
//! Produces a flat stream of [`Token`]s from raw HTML text. The
//! tokenizer never fails; any byte sequence yields *some* token stream.
//! Tag and attribute names are lower-cased, attribute values are
//! entity-decoded, and the contents of raw-text elements
//! (`<script>`, `<style>`, `<textarea>`, `<title>`) are captured as a
//! single text token without interpreting embedded `<`.

use crate::intern::Symbol;

/// One HTML token. Tag and attribute identities are interned
/// [`Symbol`]s, so downstream passes compare tags with a `u32`
/// comparison instead of string equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v">`; `self_closing` records a trailing `/>`.
    StartTag {
        name: Symbol,
        attrs: Vec<(Symbol, Symbol)>,
        self_closing: bool,
    },
    /// `</name>`
    EndTag { name: Symbol },
    /// Character data between tags, entity-decoded, whitespace preserved.
    Text(String),
    /// `<!-- ... -->`
    Comment(String),
    /// `<!DOCTYPE ...>`
    Doctype(String),
}

impl Token {
    /// Convenience constructor for tests and generators.
    pub fn start(name: &str) -> Self {
        Token::StartTag {
            name: Symbol::intern(name),
            attrs: Vec::new(),
            self_closing: false,
        }
    }

    /// Convenience constructor for tests and generators.
    pub fn end(name: &str) -> Self {
        Token::EndTag {
            name: Symbol::intern(name),
        }
    }

    /// Convenience constructor for tests and generators.
    pub fn text(t: &str) -> Self {
        Token::Text(t.to_owned())
    }
}

/// Elements whose content is raw text (no markup interpretation).
pub(crate) const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style", "textarea", "title"];

/// Tokenize `input` into a stream of [`Token`]s.
///
/// ```
/// use objectrunner_html::tokenizer::{tokenize, Token};
/// let toks = tokenize("<p class=\"x\">hi</p>");
/// assert_eq!(toks.len(), 3);
/// assert!(matches!(&toks[1], Token::Text(t) if t == "hi"));
/// ```
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut tokenizer = crate::stream::EventTokenizer::new(input);
    let mut out = Vec::new();
    while let Some(event) = tokenizer.next_event() {
        out.push(event.into_token());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_with_attrs(
        toks: &[Token],
        idx: usize,
    ) -> (&'static str, Vec<(&'static str, &'static str)>) {
        match &toks[idx] {
            Token::StartTag { name, attrs, .. } => (
                name.as_str(),
                attrs
                    .iter()
                    .map(|(a, v)| (a.as_str(), v.as_str()))
                    .collect(),
            ),
            other => panic!("expected start tag, got {other:?}"),
        }
    }

    #[test]
    fn tokenizes_simple_markup() {
        let toks = tokenize("<div><p>hello</p></div>");
        assert_eq!(
            toks,
            vec![
                Token::start("div"),
                Token::start("p"),
                Token::text("hello"),
                Token::end("p"),
                Token::end("div"),
            ]
        );
    }

    #[test]
    fn lowercases_tag_and_attr_names() {
        let toks = tokenize("<DIV CLASS=\"Main\">x</DIV>");
        let (name, attrs) = start_with_attrs(&toks, 0);
        assert_eq!(name, "div");
        assert_eq!(attrs, vec![("class", "Main")]);
        assert_eq!(toks[2], Token::end("div"));
    }

    #[test]
    fn parses_attribute_styles() {
        let toks = tokenize("<input type=text checked value='a b' data-x=\"1&amp;2\">");
        let (_, attrs) = start_with_attrs(&toks, 0);
        assert_eq!(
            attrs,
            vec![
                ("type", "text"),
                ("checked", ""),
                ("value", "a b"),
                ("data-x", "1&2"),
            ]
        );
    }

    #[test]
    fn handles_self_closing() {
        let toks = tokenize("<br/><img src=x />");
        assert!(matches!(
            &toks[0],
            Token::StartTag { self_closing: true, name, .. } if name.as_str() == "br"
        ));
        assert!(matches!(
            &toks[1],
            Token::StartTag { self_closing: true, name, .. } if name.as_str() == "img"
        ));
    }

    #[test]
    fn captures_script_as_raw_text() {
        let toks = tokenize("<script>if (a<b) { x(); }</script><p>t</p>");
        assert_eq!(toks[0], Token::start("script"));
        assert_eq!(toks[1], Token::text("if (a<b) { x(); }"));
        assert_eq!(toks[2], Token::end("script"));
        assert_eq!(toks[3], Token::start("p"));
    }

    #[test]
    fn raw_text_close_tag_is_case_insensitive() {
        let toks = tokenize("<style>.a{}</STYLE>after");
        assert_eq!(toks[1], Token::text(".a{}"));
        assert_eq!(toks[2], Token::end("style"));
        assert_eq!(toks[3], Token::text("after"));
    }

    #[test]
    fn unterminated_script_swallows_to_eof() {
        let toks = tokenize("<script>var x = 1;");
        assert_eq!(toks[1], Token::text("var x = 1;"));
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn parses_comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- note --><p>x</p>");
        assert_eq!(toks[0], Token::Doctype("html".to_owned()));
        assert_eq!(toks[1], Token::Comment(" note ".to_owned()));
    }

    #[test]
    fn unterminated_comment_swallows_to_eof() {
        let toks = tokenize("a<!-- no end");
        assert_eq!(toks[0], Token::text("a"));
        assert_eq!(toks[1], Token::Comment(" no end".to_owned()));
    }

    #[test]
    fn decodes_entities_in_text() {
        let toks = tokenize("<p>Simon &amp; Garfunkel</p>");
        assert_eq!(toks[1], Token::text("Simon & Garfunkel"));
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokenize("a < b");
        assert_eq!(
            toks,
            vec![Token::text("a "), Token::text("<"), Token::text(" b")]
        );
    }

    #[test]
    fn lone_lt_at_eof() {
        assert_eq!(tokenize("x<"), vec![Token::text("x"), Token::text("<")]);
    }

    #[test]
    fn end_tag_with_junk_attrs() {
        let toks = tokenize("</p class=\"x\">");
        assert_eq!(toks, vec![Token::end("p")]);
    }

    #[test]
    fn processing_instruction_becomes_comment() {
        let toks = tokenize("<?xml version=\"1.0\"?><p>x</p>");
        assert!(matches!(&toks[0], Token::Comment(_)));
        assert_eq!(toks[1], Token::start("p"));
    }

    #[test]
    fn never_panics_on_garbage() {
        for garbage in [
            "<",
            "<<>><",
            "<a href=",
            "<a href='x",
            "</",
            "<!",
            "<!-",
            "<p <q>",
        ] {
            let _ = tokenize(garbage);
        }
    }

    #[test]
    fn unquoted_attr_stops_at_gt() {
        let toks = tokenize("<a href=http://x.com/y>link</a>");
        let (_, attrs) = start_with_attrs(&toks, 0);
        assert_eq!(attrs[0].1, "http://x.com/y");
        assert_eq!(toks[1], Token::text("link"));
    }
}
