//! De-duplication and cross-source object integration (the
//! "De-duplication" stage of the ObjectRunner architecture, Fig. 1).
//!
//! "As Web data tends to be very redundant, the concerts one can find
//! in the yellowpages.com site are precisely the ones from zvents.com"
//! (§IV-B2) — the system-level bet is that objects lost on one source
//! reappear on another, so integrating extractions across sources both
//! removes duplicates and fills gaps.

use objectrunner_sod::Instance;
use std::collections::HashMap;

/// Normalization used to compare attribute values across sources.
pub fn normalize_value(v: &str) -> String {
    v.split_whitespace()
        .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric()))
        .filter(|w| !w.is_empty())
        .collect::<Vec<_>>()
        .join(" ")
        .to_lowercase()
}

/// The identity key of an object: its normalized `(type, value)` pairs
/// restricted to the given key attributes (or all attributes when the
/// list is empty), order-insensitive.
pub fn object_key(instance: &Instance, key_attrs: &[&str]) -> String {
    let mut pairs: Vec<String> = instance
        .flatten()
        .into_iter()
        .filter(|(t, _)| key_attrs.is_empty() || key_attrs.contains(t))
        .map(|(t, v)| format!("{t}={}", normalize_value(v)))
        .collect();
    pairs.sort();
    pairs.join("|")
}

/// Statistics of one integration run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DedupReport {
    /// Objects seen across all inputs.
    pub input_objects: usize,
    /// Distinct objects after de-duplication.
    pub distinct_objects: usize,
    /// Duplicates removed.
    pub duplicates: usize,
    /// Objects whose surviving representative gained attributes from a
    /// duplicate (gap filling).
    pub fused: usize,
}

/// De-duplicate objects across sources.
///
/// Objects sharing the same [`object_key`] over `key_attrs` are
/// merged: the representative keeps the union of attribute fields
/// (preferring the more complete instance), so a source that misses an
/// optional attribute is completed by one that has it.
pub fn deduplicate(objects: Vec<Instance>, key_attrs: &[&str]) -> (Vec<Instance>, DedupReport) {
    let mut report = DedupReport {
        input_objects: objects.len(),
        ..DedupReport::default()
    };
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut out: Vec<Instance> = Vec::new();
    for object in objects {
        let key = object_key(&object, key_attrs);
        match index.get(&key) {
            None => {
                index.insert(key, out.len());
                out.push(object);
            }
            Some(&i) => {
                report.duplicates += 1;
                if let Some(fused) = fuse(&out[i], &object) {
                    out[i] = fused;
                    report.fused += 1;
                }
            }
        }
    }
    report.distinct_objects = out.len();
    (out, report)
}

/// Merge `b` into `a` when `b` carries attribute fields `a` lacks.
/// Returns the fused instance, or `None` when `a` already subsumes `b`.
fn fuse(a: &Instance, b: &Instance) -> Option<Instance> {
    let (Instance::Tuple { name, fields: fa }, Instance::Tuple { fields: fb, .. }) = (a, b) else {
        return None;
    };
    let have: Vec<&str> = fa.iter().filter_map(field_type).collect();
    let extra: Vec<Instance> = fb
        .iter()
        .filter(|f| field_type(f).map(|t| !have.contains(&t)).unwrap_or(false))
        .cloned()
        .collect();
    if extra.is_empty() {
        return None;
    }
    let mut fields = fa.clone();
    fields.extend(extra);
    Some(Instance::Tuple {
        name: name.clone(),
        fields,
    })
}

/// The entity type a tuple field carries (first atomic type found).
fn field_type(field: &Instance) -> Option<&str> {
    match field {
        Instance::Atomic { type_name, .. } => Some(type_name),
        Instance::Set(items) => items.first().and_then(field_type),
        Instance::Tuple { fields, .. } => fields.first().and_then(field_type),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn concert(artist: &str, date: &str, venue: Option<&str>) -> Instance {
        let mut fields = vec![
            Instance::atomic("artist", artist),
            Instance::atomic("date", date),
        ];
        if let Some(v) = venue {
            fields.push(Instance::atomic("venue", v));
        }
        Instance::Tuple {
            name: "concert".to_owned(),
            fields,
        }
    }

    #[test]
    fn exact_duplicates_collapse() {
        let objects = vec![
            concert("Metallica", "May 11, 2010", Some("MSG")),
            concert("Metallica", "May 11, 2010", Some("MSG")),
            concert("Muse", "May 12, 2010", Some("MSG")),
        ];
        let (distinct, report) = deduplicate(objects, &[]);
        assert_eq!(distinct.len(), 2);
        assert_eq!(report.duplicates, 1);
        assert_eq!(report.fused, 0);
    }

    #[test]
    fn normalization_bridges_formatting_differences() {
        let objects = vec![
            concert("Metallica", "May 11, 2010", None),
            concert("METALLICA", "may 11 2010", None),
        ];
        let (distinct, report) = deduplicate(objects, &[]);
        assert_eq!(distinct.len(), 1);
        assert_eq!(report.duplicates, 1);
    }

    #[test]
    fn key_attributes_restrict_identity() {
        // Same artist+date from two sources, one with venue, one
        // without: keyed on (artist, date) they are the same concert.
        let objects = vec![
            concert("Metallica", "May 11, 2010", None),
            concert("Metallica", "May 11, 2010", Some("Madison Square Garden")),
        ];
        let (distinct, report) = deduplicate(objects, &["artist", "date"]);
        assert_eq!(distinct.len(), 1);
        assert_eq!(report.fused, 1, "venue must be fused in");
        let mut venues = Vec::new();
        distinct[0].values_of_type("venue", &mut venues);
        assert_eq!(venues, vec!["Madison Square Garden"]);
    }

    #[test]
    fn different_objects_are_kept() {
        let objects = vec![
            concert("Metallica", "May 11, 2010", None),
            concert("Metallica", "May 12, 2010", None),
        ];
        let (distinct, _) = deduplicate(objects, &["artist", "date"]);
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn report_counts_are_consistent() {
        let objects = vec![
            concert("A", "d1", None),
            concert("A", "d1", None),
            concert("A", "d1", Some("v")),
            concert("B", "d2", None),
        ];
        let (distinct, report) = deduplicate(objects, &["artist", "date"]);
        assert_eq!(report.input_objects, 4);
        assert_eq!(report.distinct_objects, distinct.len());
        assert_eq!(
            report.input_objects,
            report.distinct_objects + report.duplicates
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let (distinct, report) = deduplicate(Vec::new(), &[]);
        assert!(distinct.is_empty());
        assert_eq!(report, DedupReport::default());
    }
}
