//! From-scratch Aho–Corasick automaton over `char`s.
//!
//! One automaton holds the normalized entries of *every* dictionary
//! type, so a single left-to-right scan of a text node reports every
//! dictionary hit for every type at once — this is the engine behind
//! [`crate::compiled::CompiledRecognizerSet`], replacing the per-type,
//! per-window n-gram probing of the naive annotator.
//!
//! Classic construction: a trie of goto transitions, breadth-first
//! failure links, and output lists merged along the failure chain so
//! every pattern ending at a position is reported (overlaps included).
//! States are `u32`s; transitions are flattened into one sorted edge
//! array per state (binary search on lookup, no per-state hashing).

use std::collections::VecDeque;

/// Incremental trie builder; call [`AhoCorasickBuilder::build`] once
/// all patterns are inserted.
#[derive(Debug, Default)]
pub struct AhoCorasickBuilder {
    /// Per state: sorted `(char, target)` edges.
    nodes: Vec<Vec<(char, u32)>>,
    /// Per state: pattern ids terminating exactly here.
    out: Vec<Vec<u32>>,
    /// Per pattern: length in chars.
    pat_lens: Vec<u32>,
}

impl AhoCorasickBuilder {
    pub fn new() -> AhoCorasickBuilder {
        AhoCorasickBuilder {
            nodes: vec![Vec::new()],
            out: vec![Vec::new()],
            pat_lens: Vec::new(),
        }
    }

    /// Insert a pattern; returns its id (dense, insertion-ordered).
    /// Duplicate patterns get distinct ids sharing one terminal state.
    pub fn insert(&mut self, pattern: &str) -> u32 {
        let id = self.pat_lens.len() as u32;
        let mut state = 0u32;
        let mut len = 0u32;
        for c in pattern.chars() {
            len += 1;
            state = match self.nodes[state as usize].binary_search_by_key(&c, |e| e.0) {
                Ok(i) => self.nodes[state as usize][i].1,
                Err(i) => {
                    let next = self.nodes.len() as u32;
                    self.nodes[state as usize].insert(i, (c, next));
                    self.nodes.push(Vec::new());
                    self.out.push(Vec::new());
                    next
                }
            };
        }
        self.out[state as usize].push(id);
        self.pat_lens.push(len);
        id
    }

    /// Compute failure links and flatten into the scan-time form.
    pub fn build(self) -> AhoCorasick {
        let AhoCorasickBuilder {
            nodes,
            mut out,
            pat_lens,
        } = self;
        let n = nodes.len();
        let mut fail = vec![0u32; n];
        let mut queue = VecDeque::new();
        for &(_, s) in &nodes[0] {
            queue.push_back(s);
        }
        // BFS: a state's failure target is strictly shallower, so its
        // merged output list is final by the time children reach it.
        while let Some(s) = queue.pop_front() {
            for &(c, t) in &nodes[s as usize] {
                let mut f = fail[s as usize];
                fail[t as usize] = loop {
                    if let Ok(i) = nodes[f as usize].binary_search_by_key(&c, |e| e.0) {
                        break nodes[f as usize][i].1;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = fail[f as usize];
                };
                let inherited = out[fail[t as usize] as usize].clone();
                out[t as usize].extend(inherited);
                queue.push_back(t);
            }
        }
        // Flatten edges and outputs into slice-per-state arrays.
        let mut edge_start = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        let mut out_start = Vec::with_capacity(n + 1);
        let mut flat_out = Vec::new();
        for i in 0..n {
            edge_start.push(edges.len() as u32);
            edges.extend_from_slice(&nodes[i]);
            out_start.push(flat_out.len() as u32);
            flat_out.extend_from_slice(&out[i]);
        }
        edge_start.push(edges.len() as u32);
        out_start.push(flat_out.len() as u32);
        // Dense root transitions for ASCII — the state most scan steps
        // sit in (missing chars map to 0, i.e. stay at the root).
        let mut root_dense = vec![0u32; 128];
        for &(c, t) in &nodes[0] {
            if (c as u32) < 128 {
                root_dense[c as usize] = t;
            }
        }
        AhoCorasick {
            edge_start,
            edges,
            fail,
            out_start,
            out: flat_out,
            pat_lens,
            root_dense,
        }
    }
}

/// The frozen automaton ([`AhoCorasickBuilder::build`]).
#[derive(Debug, Clone, Default)]
pub struct AhoCorasick {
    edge_start: Vec<u32>,
    edges: Vec<(char, u32)>,
    fail: Vec<u32>,
    out_start: Vec<u32>,
    out: Vec<u32>,
    pat_lens: Vec<u32>,
    /// Root-state transition per ASCII char (0 = stay at root).
    root_dense: Vec<u32>,
}

impl AhoCorasick {
    /// Number of patterns.
    pub fn pattern_count(&self) -> usize {
        self.pat_lens.len()
    }

    /// Length in chars of pattern `id`.
    pub fn pattern_len(&self, id: u32) -> u32 {
        self.pat_lens[id as usize]
    }

    #[inline]
    fn step(&self, mut s: u32, c: char) -> u32 {
        loop {
            if s == 0 && (c as u32) < 128 {
                // `get` keeps a `Default`-built (table-less) automaton safe.
                return self.root_dense.get(c as usize).copied().unwrap_or(0);
            }
            let lo = self.edge_start[s as usize] as usize;
            let hi = self.edge_start[s as usize + 1] as usize;
            if let Ok(i) = self.edges[lo..hi].binary_search_by_key(&c, |e| e.0) {
                return self.edges[lo + i].1;
            }
            if s == 0 {
                return 0;
            }
            s = self.fail[s as usize];
        }
    }

    /// Scan `chars`, invoking `on_hit(pattern_id, end_char_exclusive)`
    /// for every occurrence of every pattern, overlaps included. The
    /// start position is `end - pattern_len(pattern_id)`.
    pub fn scan<I>(&self, chars: I, mut on_hit: impl FnMut(u32, u32))
    where
        I: Iterator<Item = char>,
    {
        let mut state = 0u32;
        for (i, c) in chars.enumerate() {
            state = self.step(state, c);
            let lo = self.out_start[state as usize] as usize;
            let hi = self.out_start[state as usize + 1] as usize;
            for &p in &self.out[lo..hi] {
                on_hit(p, i as u32 + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(ac: &AhoCorasick, text: &str) -> Vec<(u32, u32, u32)> {
        let mut v = Vec::new();
        ac.scan(text.chars(), |p, end| {
            v.push((p, end - ac.pattern_len(p), end));
        });
        v
    }

    #[test]
    fn classic_overlapping_patterns() {
        let mut b = AhoCorasickBuilder::new();
        for p in ["he", "she", "his", "hers"] {
            b.insert(p);
        }
        let ac = b.build();
        // "ushers": she@1..4, he@2..4, hers@2..6
        let got = hits(&ac, "ushers");
        assert_eq!(got, vec![(1, 1, 4), (0, 2, 4), (3, 2, 6)]);
    }

    #[test]
    fn duplicate_patterns_both_reported() {
        let mut b = AhoCorasickBuilder::new();
        let a = b.insert("abc");
        let c = b.insert("abc");
        let ac = b.build();
        let got = hits(&ac, "xabcx");
        assert_eq!(got.len(), 2);
        assert!(got.contains(&(a, 1, 4)) && got.contains(&(c, 1, 4)));
    }

    #[test]
    fn suffix_pattern_found_inside_longer_match_path() {
        let mut b = AhoCorasickBuilder::new();
        let long = b.insert("new york");
        let short = b.insert("york");
        let ac = b.build();
        let got = hits(&ac, "in new york today");
        assert!(got.contains(&(long, 3, 11)));
        assert!(got.contains(&(short, 7, 11)));
    }

    #[test]
    fn positions_are_char_based() {
        let mut b = AhoCorasickBuilder::new();
        let p = b.insert("caf\u{e9}");
        let ac = b.build();
        let got = hits(&ac, "le caf\u{e9} noir");
        assert_eq!(got, vec![(p, 3, 7)]);
    }

    #[test]
    fn empty_automaton_matches_nothing() {
        let ac = AhoCorasickBuilder::new().build();
        assert_eq!(ac.pattern_count(), 0);
        assert!(hits(&ac, "anything at all").is_empty());
    }

    #[test]
    fn repeated_and_adjacent_occurrences() {
        let mut b = AhoCorasickBuilder::new();
        let p = b.insert("aa");
        let ac = b.build();
        // Overlapping occurrences all reported: ends at 2, 3, 4.
        assert_eq!(hits(&ac, "aaaa"), vec![(p, 0, 2), (p, 1, 3), (p, 2, 4)]);
    }
}
