//! DOM paths and structural node signatures.
//!
//! The paper identifies "the best candidate block ... by its tag name,
//! its path in the DOM tree and its attribute names and values" so the
//! same block can be found across all pages of a source. This module
//! provides those identifiers.

use crate::dom::{Document, NodeId, NodeKind};

/// Tag path from the root to `id`, e.g. `html/body/div/span`.
///
/// Text nodes contribute the pseudo-tag `#text`. Positions (sibling
/// indices) are deliberately *not* included: tokens at the same tag
/// path start out with the same role (paper §III-C, Algorithm 2 line 1)
/// and are differentiated later by equivalence-class analysis.
pub fn node_path(doc: &Document, id: NodeId) -> String {
    let mut parts = Vec::new();
    let mut cur = Some(id);
    while let Some(n) = cur {
        match &doc.node(n).kind {
            NodeKind::Document => {}
            NodeKind::Element { name, .. } => parts.push(name.clone()),
            NodeKind::Text(_) => parts.push("#text".to_owned()),
            NodeKind::Comment(_) => parts.push("#comment".to_owned()),
        }
        cur = doc.parent(n);
    }
    parts.reverse();
    parts.join("/")
}

/// Structural identity of a node: tag, DOM path, and identifying
/// attributes. Two nodes on different pages with equal signatures are
/// treated as "the same block".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeSignature {
    pub tag: String,
    pub path: String,
    /// `id` and `class` attribute values (the stable identifiers that
    /// survive cleaning).
    pub attrs: Vec<(String, String)>,
}

impl NodeSignature {
    /// Compute the signature of an element node; `None` for
    /// non-elements.
    pub fn of(doc: &Document, id: NodeId) -> Option<NodeSignature> {
        let NodeKind::Element { name, attrs } = &doc.node(id).kind else {
            return None;
        };
        let keep: Vec<(String, String)> = attrs
            .iter()
            .filter(|(a, _)| a == "id" || a == "class")
            .cloned()
            .collect();
        Some(NodeSignature {
            tag: name.clone(),
            path: node_path(doc, id),
            attrs: keep,
        })
    }

    /// Find all nodes in `doc` matching this signature.
    pub fn find_in(&self, doc: &Document) -> Vec<NodeId> {
        doc.descendants(doc.root())
            .filter(|&id| NodeSignature::of(doc, id).as_ref() == Some(self))
            .collect()
    }
}

/// Depth of a node (root has depth 0).
pub fn depth(doc: &Document, id: NodeId) -> usize {
    let mut d = 0;
    let mut cur = doc.parent(id);
    while let Some(n) = cur {
        d += 1;
        cur = doc.parent(n);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn paths_follow_tag_chain() {
        let doc = parse("<html><body><div><span>x</span></div></body></html>");
        let span = doc.elements_by_tag(doc.root(), "span")[0];
        assert_eq!(node_path(&doc, span), "html/body/div/span");
        let text = doc.children(span)[0];
        assert_eq!(node_path(&doc, text), "html/body/div/span/#text");
    }

    #[test]
    fn signature_matches_same_structure_across_pages() {
        let p1 = parse("<body><div class=\"main\"><p>a</p></div></body>");
        let p2 = parse("<body><div class=\"main\"><p>bbb</p></div></body>");
        let d1 = p1.elements_by_tag(p1.root(), "div")[0];
        let sig = NodeSignature::of(&p1, d1).expect("element");
        let found = sig.find_in(&p2);
        assert_eq!(found.len(), 1);
        assert_eq!(p2.text_content(found[0]), "bbb");
    }

    #[test]
    fn signature_distinguishes_classes() {
        let p = parse("<body><div class=\"a\">1</div><div class=\"b\">2</div></body>");
        let divs = p.elements_by_tag(p.root(), "div");
        let sig_a = NodeSignature::of(&p, divs[0]).expect("element");
        assert_eq!(sig_a.find_in(&p).len(), 1);
    }

    #[test]
    fn signature_ignores_non_identifying_attrs() {
        let p1 = parse("<div class=\"m\" href=\"1\">x</div>");
        let p2 = parse("<div class=\"m\" href=\"2\">y</div>");
        let d1 = p1.elements_by_tag(p1.root(), "div")[0];
        let sig = NodeSignature::of(&p1, d1).expect("element");
        assert_eq!(sig.find_in(&p2).len(), 1);
    }

    #[test]
    fn depth_counts_ancestors() {
        let doc = parse("<a><b><c>x</c></b></a>");
        let c = doc.elements_by_tag(doc.root(), "c")[0];
        assert_eq!(depth(&doc, c), 3);
        assert_eq!(depth(&doc, doc.root()), 0);
    }
}
