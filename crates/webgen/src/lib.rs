//! # objectrunner-webgen
//!
//! A deterministic synthetic structured-Web generator — the
//! substitution for the paper's 49 real sources (chosen by Mechanical
//! Turk workers) across five domains: concerts, albums, books,
//! publications and cars (§IV-A).
//!
//! Each generated **site** is a formatting template over a domain
//! database, exactly the generative model the paper assumes for
//! schematized pages. Per-site *quirks* reproduce the phenomena the
//! paper's evaluation hinges on:
//!
//! | Quirk | Paper phenomenon |
//! |-------|------------------|
//! | `Clean` | well-behaved template |
//! | `SharedTextNode` | two attributes in one text unit → partially-correct |
//! | `FixedRecordCount` | "too regular" lists that break RoadRunner |
//! | `VaryingAuthorMarkup` | the amazon.com `<a>`-vs-plain author case |
//! | `DecoyRepeatedValue` | "New York" as pseudo-template text |
//! | `NoiseBlocks` | navigation/ads/footers around the data region |
//! | `GroupedColumns` | column-major layout (invalid equivalence classes) |
//! | `Unstructured` | a non-template source that must be discarded |
//!
//! Every page comes with its **golden standard** objects, so the
//! evaluation never relies on hand labelling.

pub mod corpus;
pub mod data;
pub mod domain;
pub mod knowledge;
pub mod mmapfile;
pub mod outdir;
pub mod site;

pub use corpus::{paper_corpus, CorpusSpec};
pub use domain::{Domain, GoldObject};
pub use mmapfile::{MappedFile, MappedText};
pub use outdir::{page_file_name, write_corpus, CorpusDir, CorpusWriteStats};
pub use site::{
    generate_drifted, generate_site, generate_site_with, site_pages, Drift, PageKind, Quirk,
    SitePages, SiteSpec, Source,
};
