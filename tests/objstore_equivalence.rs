//! Determinism guard for the object store behind the daemon: the
//! persisted store bytes and every protocol response must be
//! byte-identical whether extraction runs on one thread or eight.
//! Thread count may only change wall-clock, never what is stored —
//! ingest stages offers per identity key and appends in key order, so
//! the on-disk history is a pure function of the request sequence.

use objectrunner::obs::{Clock, Obs, DEFAULT_SPAN_CAPACITY};
use objectrunner::serve::{ServeConfig, Service};
use objectrunner::store::Json;
use objectrunner::webgen::{generate_site, Domain, PageKind, SiteSpec};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "objectrunner-objstore-equiv-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Every file of a store directory, name → bytes.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .expect("store dir")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect()
}

fn request(cmd: &str, source: &str, domain: Option<&str>, pages: &[String]) -> String {
    let mut fields = vec![
        ("cmd".to_owned(), Json::str(cmd)),
        ("source".to_owned(), Json::str(source)),
    ];
    if let Some(d) = domain {
        fields.push(("domain".to_owned(), Json::str(d)));
    }
    fields.push((
        "pages".to_owned(),
        Json::Arr(pages.iter().map(Json::str).collect()),
    ));
    Json::Obj(fields).render()
}

/// Drive one daemon (with a pinned fake clock, so timestamps cannot
/// differ between runs) through the same session and return every raw
/// response plus the final store bytes.
fn run_session(tag: &str, threads: usize) -> (Vec<String>, BTreeMap<String, Vec<u8>>) {
    let dir = scratch_dir(tag);
    let (clock, fake) = Clock::fake();
    fake.set_wall_unix_micros(1_700_000_000_000_000);
    let obs = Obs::with_clock_and_capacity(clock.clone(), DEFAULT_SPAN_CAPACITY);
    let mut service = Service::with_observability(
        ServeConfig {
            store_dir: dir.join("wrappers"),
            object_store: Some(dir.join("objects")),
            threads: Some(threads),
            ..ServeConfig::default()
        },
        obs,
        clock,
    );

    let pages = generate_site(&SiteSpec::clean(
        "equiv-books",
        Domain::Books,
        PageKind::List,
        12,
        17_003,
    ))
    .pages;

    let mut responses = Vec::new();
    let mut push = |service: &mut Service, line: &str| {
        let raw = service.handle_line(line);
        let json = Json::parse(&raw).expect("valid response");
        // Induction/extraction responses embed wall-clock stage
        // timings and the configured thread count — legitimately
        // run-dependent. Compare their object payload and store
        // outcome; everything else must match byte-for-byte.
        let comparable = match json.get("cmd").and_then(Json::as_str) {
            Some("induce" | "extract") => Json::Obj(
                ["cmd", "count", "objects", "store"]
                    .iter()
                    .filter_map(|k| json.get(k).map(|v| ((*k).to_owned(), v.clone())))
                    .collect(),
            )
            .render(),
            _ => raw,
        };
        responses.push(comparable);
        json
    };
    push(
        &mut service,
        &request("induce", "equiv-books", Some("Books"), &pages),
    );
    push(
        &mut service,
        &request("extract", "equiv-books", None, &pages),
    );
    // Walk two query pages through the cursor, then inspect and
    // compact — every response participates in the byte comparison.
    let page1 = push(
        &mut service,
        r#"{"cmd":"query","domain":"Books","limit":7}"#,
    );
    let cursor = page1
        .get("next_cursor")
        .and_then(Json::as_str)
        .expect("a second page exists")
        .to_owned();
    push(
        &mut service,
        &format!(r#"{{"cmd":"query","domain":"Books","limit":7,"cursor":"{cursor}"}}"#),
    );
    push(&mut service, r#"{"cmd":"store-status"}"#);
    push(&mut service, r#"{"cmd":"compact"}"#);
    push(
        &mut service,
        r#"{"cmd":"query","domain":"Books","limit":7}"#,
    );
    push(&mut service, r#"{"cmd":"store-status"}"#);
    drop(service);

    let bytes = dir_bytes(&dir.join("objects"));
    let _ = std::fs::remove_dir_all(&dir);
    (responses, bytes)
}

#[test]
fn store_bytes_and_responses_are_identical_across_thread_counts() {
    let (responses_1, bytes_1) = run_session("t1", 1);
    let (responses_8, bytes_8) = run_session("t8", 8);

    assert_eq!(
        responses_1, responses_8,
        "protocol responses must not depend on thread count"
    );
    assert_eq!(
        bytes_1.keys().collect::<Vec<_>>(),
        bytes_8.keys().collect::<Vec<_>>(),
        "same store files"
    );
    for (name, bytes) in &bytes_1 {
        assert_eq!(
            bytes, &bytes_8[name],
            "store file {name} differs between 1 and 8 threads"
        );
    }
}
