//! # objectrunner-sod
//!
//! The **Structured Object Description** typing formalism (paper
//! §II-A): a user describes the targeted data as a complex type built
//! from entity (atomic) types with *set* constructors carrying
//! multiplicity constraints, unordered *tuple* constructors, and
//! *disjunction* types.
//!
//! * [`types`] — the type algebra ([`SodNode`], [`Multiplicity`],
//!   [`Sod`]) and the fluent [`SodBuilder`].
//! * [`canonical`] — the canonical-form transformation of Fig. 4
//!   (atomic types reachable through tuple nodes only are grouped into
//!   one tuple).
//! * [`instance`] — instance trees of an SOD and validation.
//!
//! ```
//! use objectrunner_sod::{Multiplicity, SodBuilder};
//!
//! // The paper's concert SOD: tuple(artist, date,
//! //                               location = tuple(theater, address?)).
//! let sod = SodBuilder::tuple("concert")
//!     .entity("artist", Multiplicity::One)
//!     .entity("date", Multiplicity::One)
//!     .nested(
//!         SodBuilder::tuple("location")
//!             .entity("theater", Multiplicity::One)
//!             .entity("address", Multiplicity::Optional),
//!     )
//!     .build();
//! assert_eq!(sod.entity_types(), vec!["artist", "date", "theater", "address"]);
//! ```

pub mod canonical;
pub mod instance;
pub mod types;

pub use canonical::canonicalize;
pub use instance::{Instance, ValidationError};
pub use types::{Multiplicity, Sod, SodBuilder, SodNode};
