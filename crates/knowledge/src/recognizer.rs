//! Entity-type recognizers (paper §II-A, §III-A).
//!
//! "We distinguish three kinds of recognizers: (i) user-defined regular
//! expressions, (ii) system predefined ones (e.g., addresses, dates,
//! phone numbers, etc), and (iii) open, dictionary-based ones (called
//! hereafter isInstanceOf recognizers)."
//!
//! Recognizers are *best effort*: "type recognizers are never assumed
//! to be entirely precise nor complete by our algorithm." A match
//! reports a confidence, and the downstream wrapper generation treats
//! annotations as evidence, not ground truth.

use crate::gazetteer::Gazetteer;
use crate::regex::Regex;
use std::collections::HashMap;

/// A successful recognition.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeMatch {
    /// Confidence in `(0, 1]`.
    pub confidence: f64,
    /// Fraction of the examined text covered by the match.
    pub coverage: f64,
}

/// The predefined recognizer kinds shipped with the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredefinedKind {
    Date,
    Price,
    Address,
    Phone,
    Year,
    Isbn,
}

/// One entity-type recognizer.
#[derive(Debug, Clone)]
pub enum Recognizer {
    /// User-defined regular expression; a string is an instance iff the
    /// whole string matches. Boxed: a compiled [`Regex`] carries its
    /// frozen closure/spawn tables, far bigger than the other variants.
    UserRegex { regex: Box<Regex>, confidence: f64 },
    /// System predefined recognizer.
    Predefined {
        kind: PredefinedKind,
        patterns: Vec<Regex>,
        confidence: f64,
    },
    /// Open dictionary recognizer (`isInstanceOf`).
    Dictionary(Gazetteer),
}

impl Recognizer {
    /// A user regular-expression recognizer. Errors surface at
    /// construction, not at matching time.
    pub fn user_regex(
        pattern: &str,
        confidence: f64,
    ) -> Result<Recognizer, crate::regex::RegexError> {
        Ok(Recognizer::UserRegex {
            regex: Box::new(Regex::new(pattern)?),
            confidence: confidence.clamp(0.0, 1.0),
        })
    }

    /// Dictionary recognizer over a gazetteer.
    pub fn dictionary(gazetteer: Gazetteer) -> Recognizer {
        Recognizer::Dictionary(gazetteer)
    }

    /// Predefined date recognizer ("Saturday May 29 7:00p",
    /// "Monday May 11, 8:00pm", "August 8, 2010", "2010-08-12", …).
    pub fn predefined_date() -> Recognizer {
        const MONTH: &str = "(January|February|March|April|May|June|July|August|September|October|November|December)";
        const DAY: &str = "(Monday|Tuesday|Wednesday|Thursday|Friday|Saturday|Sunday)";
        let time = r"\d{1,2}:\d{2}(pm|am|p|a)?";
        let pats = vec![
            // "Saturday August 8, 2010 8:00pm" / "Saturday May 29 7:00p"
            format!(r"{DAY} {MONTH} \d{{1,2}},? ?(\d{{4}})? ?({time})?"),
            // "August 8, 2010" / "May 29"
            format!(r"{MONTH} \d{{1,2}}(, \d{{4}})?"),
            // ISO and slashed numeric dates
            r"\d{4}-\d{2}-\d{2}".to_owned(),
            r"\d{1,2}/\d{1,2}/\d{4}".to_owned(),
            // "May 2010"
            format!(r"{MONTH} \d{{4}}"),
        ];
        Recognizer::predefined(PredefinedKind::Date, &pats, 0.9)
    }

    /// Predefined price recognizer ("$12.99", "USD 45", "12.99 EUR").
    pub fn predefined_price() -> Recognizer {
        let pats = vec![
            r"(\$|€|£)\d{1,6}(\.\d{2})?".to_owned(),
            r"(USD|EUR|GBP) ?\d{1,6}(\.\d{2})?".to_owned(),
            r"\d{1,6}\.\d{2} ?(USD|EUR|GBP|dollars)".to_owned(),
        ];
        Recognizer::predefined(PredefinedKind::Price, &pats, 0.85)
    }

    /// Predefined street-address recognizer ("237 West 42nd street",
    /// "4 Penn Plaza", zip codes).
    pub fn predefined_address() -> Recognizer {
        const SUFFIX: &str =
            "([Ss]treet|[Ss]t|[Aa]venue|[Aa]ve|[Pp]laza|[Bb]oulevard|[Bb]lvd|[Rr]oad|[Rr]d|[Dd]rive|[Dd]r|[Ll]ane|[Ww]ay)";
        let word = r"[A-Z0-9][a-zA-Z0-9]*";
        let pats = vec![
            // "237 West 42nd street", "4 Penn Plaza"
            format!(r"\d{{1,5}} ({word} ){{1,4}}{SUFFIX}\.?"),
            // Bare US zip code
            r"\d{5}(-\d{4})?".to_owned(),
        ];
        Recognizer::predefined(PredefinedKind::Address, &pats, 0.8)
    }

    /// Predefined phone-number recognizer.
    pub fn predefined_phone() -> Recognizer {
        let pats = vec![
            r"\(\d{3}\) ?\d{3}[-. ]\d{4}".to_owned(),
            r"\d{3}[-. ]\d{3}[-. ]\d{4}".to_owned(),
            r"\+\d{1,3} ?\d{6,12}".to_owned(),
        ];
        Recognizer::predefined(PredefinedKind::Phone, &pats, 0.9)
    }

    /// Predefined year recognizer (1900–2099).
    pub fn predefined_year() -> Recognizer {
        Recognizer::predefined(PredefinedKind::Year, &[r"(19|20)\d{2}".to_owned()], 0.7)
    }

    /// Predefined ISBN recognizer.
    pub fn predefined_isbn() -> Recognizer {
        let pats = vec![
            r"\d{3}-\d{10}".to_owned(),
            r"\d{1,5}-\d{1,7}-\d{1,7}-[\dX]".to_owned(),
            r"\d{13}".to_owned(),
            r"\d{9}[\dX]".to_owned(),
        ];
        Recognizer::predefined(PredefinedKind::Isbn, &pats, 0.9)
    }

    fn predefined<S: AsRef<str>>(kind: PredefinedKind, pats: &[S], confidence: f64) -> Recognizer {
        let patterns = pats
            .iter()
            .map(|p| Regex::new(p.as_ref()).expect("predefined patterns are well-formed"))
            .collect();
        Recognizer::Predefined {
            kind,
            patterns,
            confidence,
        }
    }

    /// Recognize `text` as an instance of this type.
    ///
    /// The paper annotates "the DOM node *containing* the text that
    /// matched the given type": dictionary recognizers therefore also
    /// match an instance embedded in a larger text unit ("Emma by Jane
    /// Austen"), reporting the covered fraction. Pattern recognizers
    /// likewise accept a match covering a substantial part of the text
    /// (dates are routinely embedded in phrasing like "Doors open:
    /// May 29"); `coverage` lets callers impose stricter rules.
    pub fn recognize(&self, text: &str) -> Option<TypeMatch> {
        let trimmed = text.trim();
        if trimmed.is_empty() {
            return None;
        }
        match self {
            Recognizer::Dictionary(g) => {
                if let Some(e) = g.get(trimmed) {
                    return Some(TypeMatch {
                        confidence: e.confidence,
                        coverage: 1.0,
                    });
                }
                dictionary_phrase_match(g, trimmed)
            }
            Recognizer::UserRegex { regex, confidence } => {
                if regex.is_full_match(trimmed) {
                    Some(TypeMatch {
                        confidence: *confidence,
                        coverage: 1.0,
                    })
                } else {
                    None
                }
            }
            Recognizer::Predefined {
                patterns,
                confidence,
                ..
            } => {
                let mut best: Option<TypeMatch> = None;
                for p in patterns {
                    if let Some((s, e)) = p.find(trimmed) {
                        let coverage = (e - s) as f64 / trimmed.len() as f64;
                        let cand = TypeMatch {
                            confidence: *confidence,
                            coverage,
                        };
                        if best
                            .as_ref()
                            .map(|b| cand.coverage > b.coverage)
                            .unwrap_or(true)
                        {
                            best = Some(cand);
                        }
                    }
                }
                best.filter(|m| m.coverage >= 0.4)
            }
        }
    }

    /// Selectivity estimate of the type (Eq. 2 for dictionaries; a
    /// fixed low value for pattern types, which the paper processes
    /// after the `isInstanceOf` ones).
    pub fn selectivity(&self) -> f64 {
        match self {
            Recognizer::Dictionary(g) => g.selectivity(),
            _ => 0.0,
        }
    }

    /// Is this an `isInstanceOf` (dictionary) recognizer?
    pub fn is_dictionary(&self) -> bool {
        matches!(self, Recognizer::Dictionary(_))
    }

    /// Access the backing gazetteer of a dictionary recognizer.
    pub fn gazetteer(&self) -> Option<&Gazetteer> {
        match self {
            Recognizer::Dictionary(g) => Some(g),
            _ => None,
        }
    }

    /// Mutable access to the backing gazetteer (used by enrichment).
    pub fn gazetteer_mut(&mut self) -> Option<&mut Gazetteer> {
        match self {
            Recognizer::Dictionary(g) => Some(g),
            _ => None,
        }
    }
}

/// Longest dictionary phrase to look for inside a text unit (shared
/// with the compiled engine, which must reproduce it exactly).
pub const MAX_PHRASE_WORDS: usize = 6;

/// Minimum fraction of the text a dictionary phrase must cover to
/// annotate the node (shared with the compiled engine).
pub const MIN_DICT_COVERAGE: f64 = 0.2;

/// Find the best dictionary instance embedded in `text` (word n-gram
/// scan, longest match preferred).
fn dictionary_phrase_match(g: &Gazetteer, text: &str) -> Option<TypeMatch> {
    let words: Vec<&str> = text.split_whitespace().collect();
    if words.len() < 2 {
        return None; // single words were already tried exactly
    }
    let mut best: Option<TypeMatch> = None;
    for n in (1..=MAX_PHRASE_WORDS.min(words.len() - 1)).rev() {
        for start in 0..=(words.len() - n) {
            let phrase = words[start..start + n].join(" ");
            // Tolerate trailing punctuation on the phrase boundary.
            let phrase = phrase.trim_matches(|c: char| !c.is_alphanumeric());
            if let Some(e) = g.get(phrase) {
                let coverage = n as f64 / words.len() as f64;
                if coverage >= MIN_DICT_COVERAGE
                    && best.as_ref().map(|b| coverage > b.coverage).unwrap_or(true)
                {
                    best = Some(TypeMatch {
                        confidence: e.confidence,
                        coverage,
                    });
                }
            }
        }
        if best.is_some() {
            break; // longest n wins
        }
    }
    best
}

/// The recognizers for all entity types of an SOD, keyed by type name.
///
/// `RecognizerSet` is `Send + Sync`: recognition is a pure read
/// (gazetteer lookups and regex matching hold no interior mutability),
/// so one set can be shared by reference across the pipeline's
/// annotation workers without cloning or locking.
#[derive(Debug, Clone, Default)]
pub struct RecognizerSet {
    by_type: HashMap<String, Recognizer>,
}

impl RecognizerSet {
    /// Empty set.
    pub fn new() -> Self {
        RecognizerSet::default()
    }

    /// Register the recognizer for an entity type.
    pub fn insert(&mut self, type_name: &str, recognizer: Recognizer) {
        objectrunner_obs::global_count("objectrunner.knowledge.recognizers.registered", 1);
        self.by_type.insert(type_name.to_owned(), recognizer);
    }

    /// Recognizer for a type.
    pub fn get(&self, type_name: &str) -> Option<&Recognizer> {
        self.by_type.get(type_name)
    }

    /// Mutable access (used by enrichment).
    pub fn get_mut(&mut self, type_name: &str) -> Option<&mut Recognizer> {
        self.by_type.get_mut(type_name)
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.by_type.len()
    }

    /// True when no recognizers are registered.
    pub fn is_empty(&self) -> bool {
        self.by_type.is_empty()
    }

    /// Registered type names.
    pub fn type_names(&self) -> impl Iterator<Item = &str> {
        self.by_type.keys().map(String::as_str)
    }

    /// The annotation order of Algorithm 1: `isInstanceOf` types by
    /// decreasing selectivity estimate first, then pattern-based types
    /// (stable by name for determinism).
    pub fn annotation_order(&self) -> Vec<&str> {
        let mut dict: Vec<(&str, f64)> = Vec::new();
        let mut other: Vec<&str> = Vec::new();
        for (name, rec) in &self.by_type {
            if rec.is_dictionary() {
                dict.push((name, rec.selectivity()));
            } else {
                other.push(name);
            }
        }
        dict.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        other.sort_unstable();
        dict.into_iter().map(|(n, _)| n).chain(other).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time guarantee backing the pipeline's shared-reference
    /// annotation fan-out.
    #[test]
    fn recognizer_set_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RecognizerSet>();
        assert_send_sync::<Recognizer>();
    }

    #[test]
    fn date_recognizer_accepts_paper_formats() {
        let r = Recognizer::predefined_date();
        for s in [
            "Saturday August 8, 2010 8:00pm",
            "Saturday May 29 7:00p",
            "Monday May 11, 8:00pm",
            "Friday June 19 7:00p",
            "August 8, 2010",
            "2010-08-12",
            "5/29/2010",
            "May 2010",
        ] {
            assert!(r.recognize(s).is_some(), "should match: {s}");
        }
    }

    #[test]
    fn date_recognizer_rejects_non_dates() {
        let r = Recognizer::predefined_date();
        for s in ["Metallica", "Madison Square Garden", "price: low", ""] {
            assert!(r.recognize(s).is_none(), "should not match: {s}");
        }
    }

    #[test]
    fn price_recognizer() {
        let r = Recognizer::predefined_price();
        assert!(r.recognize("$12.99").is_some());
        assert!(r.recognize("USD 45").is_some());
        assert!(r.recognize("12.99 EUR").is_some());
        assert!(r.recognize("twelve dollars-ish maybe later").is_none());
    }

    #[test]
    fn address_recognizer_accepts_paper_addresses() {
        let r = Recognizer::predefined_address();
        for s in [
            "237 West 42nd street",
            "4 Penn Plaza",
            "131 W 55th St",
            "10019",
        ] {
            assert!(r.recognize(s).is_some(), "should match: {s}");
        }
        assert!(r.recognize("Metallica").is_none());
    }

    #[test]
    fn phone_recognizer() {
        let r = Recognizer::predefined_phone();
        assert!(r.recognize("(212) 555-0142").is_some());
        assert!(r.recognize("212-555-0142").is_some());
        assert!(r.recognize("+33 612345678").is_some());
        assert!(r.recognize("555").is_none());
    }

    #[test]
    fn isbn_recognizer() {
        let r = Recognizer::predefined_isbn();
        assert!(r.recognize("978-0141439518").is_some());
        assert!(r.recognize("0-19-853453-1").is_some());
        assert!(r.recognize("not an isbn").is_none());
    }

    #[test]
    fn user_regex_requires_full_match() {
        let r = Recognizer::user_regex(r"[A-Z]{2}\d{4}", 0.9).expect("compiles");
        assert!(r.recognize("AB1234").is_some());
        assert!(r.recognize("xxAB1234").is_none());
    }

    #[test]
    fn user_regex_surfaces_compile_errors() {
        assert!(Recognizer::user_regex("(unclosed", 0.9).is_err());
    }

    #[test]
    fn dictionary_recognizer_matches_exact_and_embedded() {
        let mut g = Gazetteer::new();
        g.insert("Metallica", 0.95, 5.0);
        let r = Recognizer::dictionary(g);
        let m = r.recognize("metallica").expect("exact match");
        assert!((m.confidence - 0.95).abs() < 1e-12);
        assert!((m.coverage - 1.0).abs() < 1e-12);
        // Embedded instance (the paper's "node containing the text
        // that matched"): lower coverage is reported.
        let e = r.recognize("Metallica concert tickets").expect("embedded");
        assert!(e.coverage < 1.0 && e.coverage >= 0.2);
        // Instances buried in very long text stay below the coverage
        // floor and do not annotate the node.
        let long = format!("Metallica {}", "word ".repeat(30));
        assert!(r.recognize(&long).is_none());
    }

    #[test]
    fn dictionary_phrase_match_prefers_longest() {
        let mut g = Gazetteer::new();
        g.insert("Iron", 0.5, 5.0);
        g.insert("The Iron Echoes", 0.9, 5.0);
        let r = Recognizer::dictionary(g);
        let m = r.recognize("Emma by The Iron Echoes").expect("match");
        assert!((m.coverage - 3.0 / 5.0).abs() < 1e-9);
        assert!((m.confidence - 0.9).abs() < 1e-12);
    }

    #[test]
    fn embedded_date_coverage_reported() {
        let r = Recognizer::predefined_date();
        let m = r.recognize("Doors: Saturday May 29 7:00p").expect("match");
        assert!(m.coverage < 1.0);
        assert!(m.coverage > 0.4);
    }

    #[test]
    fn low_coverage_matches_rejected() {
        let r = Recognizer::predefined_year();
        // A year inside a long title should not type the whole node.
        assert!(r
            .recognize("the long and winding chronicle of the 1984 committee with appendices")
            .is_none());
    }

    #[test]
    fn annotation_order_puts_selective_dictionaries_first() {
        let mut rare = Gazetteer::new();
        rare.insert("very rare thing", 0.9, 1.0);
        rare.insert("another rare one", 0.9, 1.0);
        let mut common = Gazetteer::new();
        common.insert("new york", 0.9, 1000.0);

        let mut set = RecognizerSet::new();
        set.insert("date", Recognizer::predefined_date());
        set.insert("venue", Recognizer::dictionary(rare));
        set.insert("city", Recognizer::dictionary(common));
        let order = set.annotation_order();
        assert_eq!(order, vec!["venue", "city", "date"]);
    }

    #[test]
    fn empty_text_never_matches() {
        for r in [
            Recognizer::predefined_date(),
            Recognizer::predefined_price(),
            Recognizer::dictionary(Gazetteer::new()),
        ] {
            assert!(r.recognize("   ").is_none());
        }
    }
}
