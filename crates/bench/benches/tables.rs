//! Per-source end-to-end timing for each compared system — the
//! workload behind Tables I and III (one clean source per system).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use objectrunner_bench::bench_source;
use objectrunner_core::sample::SampleStrategy;
use objectrunner_eval::runners::{run_exalg, run_objectrunner, run_roadrunner};
use objectrunner_webgen::Domain;
use std::hint::black_box;

fn systems(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_source_system");
    group.sample_size(10);
    let source = bench_source(Domain::Cars, 30);
    group.bench_function(BenchmarkId::new("system", "objectrunner"), |b| {
        b.iter(|| black_box(run_objectrunner(&source, SampleStrategy::SodBased)))
    });
    group.bench_function(BenchmarkId::new("system", "exalg"), |b| {
        b.iter(|| black_box(run_exalg(&source)))
    });
    group.bench_function(BenchmarkId::new("system", "roadrunner"), |b| {
        b.iter(|| black_box(run_roadrunner(&source)))
    });
    group.finish();
}

criterion_group!(benches, systems);
criterion_main!(benches);
