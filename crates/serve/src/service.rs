//! The serving core: wrapper cache, drift detection, re-induction.
//!
//! A [`Service`] owns a set of sources, each with a persisted wrapper
//! (see `objectrunner-store`). The protocol is line-delimited JSON —
//! one request object in, one response object out:
//!
//! * `{"cmd":"induce","source":S,"domain":D,"pages":[..]}` — run the
//!   full Parse→Wrap pipeline, persist the wrapper, respond with the
//!   extracted objects and stage timings (Wrap included);
//! * `{"cmd":"extract","source":S,"pages":[..]}` — the cached fast
//!   path: load the stored wrapper, skip induction entirely
//!   (Parse/Clean/Segment/Extract only), score template drift per
//!   page, and — past the threshold — flag the wrapper stale and
//!   re-induce from the buffered drifted pages;
//! * `{"cmd":"status"}` — daemon uptime, per-source counters,
//!   lifecycle state, last-activity timestamps, the transition log,
//!   a `serving` section (worker pool, in-flight requests, queue
//!   depth, shed and connection counters), and a `metrics` section
//!   (per-domain extract-latency and drift-score histograms, revision
//!   counts, annotation-memo hit rate);
//! * `{"cmd":"trace","limit":N}` — the span trees of the last `N`
//!   requests, from the observability buffer.
//!
//! Every response carries a `"trace"` field: the span-tree id of the
//! request that produced it, joinable against the `trace` command and
//! the JSONL/Chrome exporters.
//!
//! Page input is either inline (`"pages": [html, ..]`) or a directory
//! of `*.html` files (`"dir": "path"`, lexicographic order).
//!
//! ## Concurrency shape
//!
//! The service is `&self` end to end and shared across the daemon's
//! worker pool behind one `Arc`. Sources live in per-source
//! [`SourceShard`](crate::shard::SourceShard)s reached through
//! version-stamped [`Slot`](crate::slot::Slot)s: a cached `extract`
//! reads the registry and its wrapper snapshot with two atomic loads
//! (through a per-worker [`ReaderCache`]) and takes no lock until —
//! and unless — drift bookkeeping needs the shard's mutation lane.
//! Two sources never contend; two requests against the *same* source
//! serialize only their bookkeeping tails. [`Service::handle_batch`]
//! is the pooled entry point: consecutive `extract` requests against
//! one source amortize a single staged pipeline run (see
//! `shard::extract_batch`), while every other command handles
//! line-at-a-time exactly as [`Service::handle_line`] does.
//!
//! ## The drift lifecycle
//!
//! Every cached extraction computes the fraction of wrapper slots
//! (the separator matchers the SOD mapping reads) that fail to align
//! on each page (`core::matching::drift_score`). Pages at or above
//! [`ServeConfig::drift_threshold`] enter a bounded buffer. A wrapper
//! goes **stale** on either of two signals:
//!
//! * the batch's mean drift crosses the threshold, or
//! * the *silent miss*: at least
//!   [`ServeConfig::empty_page_threshold`] of the batch's pages
//!   extract zero objects while drift stays low — record-level markup
//!   changed without touching the separator slots the score watches.
//!
//! Once the buffer holds [`ServeConfig::min_reinduce_pages`] suspect
//! pages, the service tries the cheap path first: **tree-diff repair**
//! (`core::repair_wrapper`) patches the stored wrapper's matcher
//! paths, gap roles and annotation histograms through a GumTree-style
//! node mapping against the drifted template — no induction stages
//! run. A successful repair bumps the revision, records its
//! [`objectrunner_store::RepairProvenance`], persists, and flips the
//! state to **repaired**. When the repair is declined (container
//! redesign, lost gap, extraction coverage under
//! [`ServeConfig::repair_floor`]) the service falls back loudly to
//! full re-induction *from the buffered pages only* — mixing clean
//! and drifted pages would hand the sampler two templates at once —
//! and flips to **reinduced**. Either way the current batch is
//! replayed through the new wrapper.

use crate::shard::{self, ReaderCache, SourceMap};
use crate::slot::Slot;
use crate::telemetry::{AccessLog, TraceKind, TraceSampler, DEFAULT_RETAINED_PER_KIND};
use objectrunner_core::annotate::Annotator;
use objectrunner_core::pipeline::{Pipeline, PipelineConfig};
use objectrunner_core::sample::SampleConfig;
use objectrunner_objstore::{record_json, ObjectStore, Query, StoreStatus};
use objectrunner_obs::{
    export, Clock, HistogramSnapshot, Obs, Span, SpanRecord, WindowConfig, DEFAULT_SPAN_CAPACITY,
    LATENCY_BUCKETS_MICROS,
};
use objectrunner_sod::Instance;
use objectrunner_store::{save_file, Json, StoredWrapper};
use objectrunner_webgen::knowledge::recognizers_for;
use objectrunner_webgen::Domain;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

pub use crate::shard::WrapperState;

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding the persisted `<source>.orw` wrapper files.
    pub store_dir: PathBuf,
    /// Mean per-page drift at or above which a wrapper is stale.
    pub drift_threshold: f64,
    /// Capacity of the per-source drifted-page buffer.
    pub buffer_pages: usize,
    /// Drifted pages required before re-induction fires.
    pub min_reinduce_pages: usize,
    /// Minimum fraction of the buffered pages a *repaired* wrapper
    /// must extract on; below it the repair is rejected and the
    /// service falls back to full re-induction.
    pub repair_floor: f64,
    /// Fraction of a batch's pages extracting *zero* objects at or
    /// above which the wrapper is flagged stale even though drift
    /// stayed under the threshold (the silent-miss trigger: record
    /// markup can change without touching the separator slots the
    /// drift score watches).
    pub empty_page_threshold: f64,
    /// Recognizer coverage for (re-)induction.
    pub coverage: f64,
    /// Sample size k for (re-)induction.
    pub sample_size: usize,
    /// Worker threads (None = `OBJECTRUNNER_THREADS` / machine).
    pub threads: Option<usize>,
    /// Directory of the durable object store (`--object-store`).
    /// `None` disables the sink and the query commands.
    pub object_store: Option<PathBuf>,
    /// Explicit floor (micros of *service* time) above which a request
    /// is retained as a slow trace. Combined with the adaptive
    /// windowed-p99 threshold: the effective threshold is the max of
    /// both (see [`ServiceShared::slow_threshold`]). `None` leaves
    /// retention purely adaptive.
    pub slow_trace_micros: Option<u64>,
    /// JSONL access log path (`--access-log`); `None` disables it.
    pub access_log: Option<PathBuf>,
    /// Size cap before the access log rotates to `<path>.1`.
    pub access_log_max_bytes: u64,
    /// Default tick interval for the `watch` streaming command.
    pub watch_interval_micros: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            store_dir: PathBuf::from("wrappers"),
            drift_threshold: 0.5,
            buffer_pages: 32,
            min_reinduce_pages: 6,
            repair_floor: 0.5,
            empty_page_threshold: 0.8,
            coverage: 0.2,
            sample_size: 12,
            threads: None,
            object_store: None,
            slow_trace_micros: None,
            access_log: None,
            access_log_max_bytes: 64 << 20,
            watch_interval_micros: 1_000_000,
        }
    }
}

/// Static shape of the daemon's connection pool, published into the
/// `status` response's `serving` section by `conn::serve_tcp`. The
/// *live* numbers (in-flight, queue depth, sheds) come from the
/// metrics registry.
#[derive(Debug, Clone)]
pub struct PoolInfo {
    pub workers: usize,
    pub max_conns: usize,
    pub inflight_budget: usize,
    pub batch_max: usize,
}

pub(crate) fn err(msg: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::str(msg)),
    ])
}

/// Canonical JSON form of an extracted instance; fixed key order, so
/// equal instances render byte-identically (the round-trip tests and
/// the `extract-file` cold-process check compare these strings). The
/// codec lives in `objectrunner-objstore` now — the object store
/// persists the very same shape — and is re-exported here for the
/// protocol's historical import path.
pub use objectrunner_objstore::instance_json;

/// Everything the serving core shares across workers: configuration,
/// the source registry, the annotation-engine cache, the durable
/// sink, and the observability handle. `&self` throughout — the
/// per-source locking discipline lives in `shard.rs`.
pub(crate) struct ServiceShared {
    pub(crate) config: ServeConfig,
    /// Request spans and the serving metrics registry. Enabled by
    /// default in the daemon; [`Service::with_observability`] lets
    /// tests inject a fake-clock handle or a disabled one.
    pub(crate) obs: Obs,
    /// Time source shared with `obs` — uptime, request latency and
    /// last-activity all read through it so tests can advance time by
    /// hand.
    pub(crate) clock: Clock,
    /// `clock.monotonic_micros()` at construction; uptime base.
    pub(crate) start_mono: u64,
    /// Source name → shard, behind a version-stamped slot: readers
    /// snapshot the whole map lock-free; registrations publish a new
    /// map.
    pub(crate) registry: Slot<SourceMap>,
    /// Serializes registry *writers* (warm-from-disk, induction) so
    /// two racing registrations of one source insert once. Readers
    /// never take it.
    pub(crate) registry_write: Mutex<()>,
    /// Compiled annotation engines, one per domain, shared across
    /// inductions and drift-repair re-inductions: the recognizer set of
    /// a domain is fixed (per coverage setting), so the automatons are
    /// compiled once and the text memo cache stays warm between
    /// requests.
    pub(crate) annotators: Mutex<BTreeMap<String, Arc<Annotator>>>,
    /// The durable object sink, attached when
    /// [`ServeConfig::object_store`] names a directory. Extractions
    /// flow in (deduplicated, provenance-tagged) under the write half;
    /// `query` / `get` / `store-status` read concurrently.
    pub(crate) objstore: Option<RwLock<ObjectStore>>,
    /// Pool shape, set once by `conn::serve_tcp`; `None` for the
    /// stdin loop and in-process tests.
    pub(crate) pool: Mutex<Option<PoolInfo>>,
    /// Tail-based trace retention: bounded rings of the span trees of
    /// slow / errored / shed requests (`trace slow|errors|shed`).
    pub(crate) sampler: TraceSampler,
    /// Structured per-request JSONL log (`--access-log`); `None` when
    /// the daemon runs without one.
    pub(crate) access_log: Option<AccessLog>,
    /// Whether the span-buffer-wrapped warning has been emitted (once
    /// per daemon; the running count lives in `status.live`).
    span_loss_logged: AtomicBool,
}

/// The serving core. Owns the wrapper cache; one instance per daemon,
/// shared by reference across the connection pool.
pub struct Service {
    pub(crate) shared: Arc<ServiceShared>,
    /// Reader cache backing the cacheless convenience entry point
    /// [`Service::handle_line`] (stdin loop, tests). Pool workers own
    /// their caches and go through [`Service::handle_batch`] instead.
    fallback_cache: Mutex<ReaderCache>,
}

impl Service {
    /// A daemon-grade service: observability on, real clock, sliding
    /// windows feeding `status.live` / `watch` / the slow-trace
    /// threshold.
    pub fn new(config: ServeConfig) -> Service {
        let clock = Clock::system();
        let obs = Obs::with_windows(
            clock.clone(),
            DEFAULT_SPAN_CAPACITY,
            WindowConfig::default(),
        );
        Service::with_observability(config, obs, clock)
    }

    /// Construct with an explicit observability handle and clock —
    /// the test seam for fake-clock uptime/idle assertions and for
    /// running with observability disabled.
    ///
    /// When the config names an object-store directory that fails to
    /// open (corrupt store), this panics — a daemon must not come up
    /// silently dropping its sink. Callers wanting a softer failure
    /// open the store themselves first.
    pub fn with_observability(config: ServeConfig, obs: Obs, clock: Clock) -> Service {
        let start_mono = clock.monotonic_micros();
        let objstore = config.object_store.as_ref().map(|dir| {
            RwLock::new(
                ObjectStore::open(dir, obs.clone())
                    .unwrap_or_else(|e| panic!("object store {}: {e}", dir.display())),
            )
        });
        // Same contract as the object store: a daemon must not come up
        // silently dropping the log it was asked for.
        let access_log = config.access_log.as_ref().map(|path| {
            AccessLog::open(path, config.access_log_max_bytes)
                .unwrap_or_else(|e| panic!("access log {}: {e}", path.display()))
        });
        Service {
            shared: Arc::new(ServiceShared {
                config,
                obs,
                clock,
                start_mono,
                registry: Slot::new(Arc::new(SourceMap::new())),
                registry_write: Mutex::new(()),
                annotators: Mutex::new(BTreeMap::new()),
                objstore,
                pool: Mutex::new(None),
                sampler: TraceSampler::new(DEFAULT_RETAINED_PER_KIND),
                access_log,
                span_loss_logged: AtomicBool::new(false),
            }),
            fallback_cache: Mutex::new(ReaderCache::new()),
        }
    }

    /// The service's observability handle (spans + metrics registry).
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// A fresh per-worker reader cache. Each pool worker (and any
    /// other long-lived caller of [`Service::handle_batch`]) should
    /// own one so steady-state reads share no mutable state.
    pub fn reader_cache(&self) -> ReaderCache {
        ReaderCache::new()
    }

    /// Publish the connection pool's shape into `status` responses.
    pub fn set_pool_info(&self, info: PoolInfo) {
        *self.shared.pool.lock().expect("pool info poisoned") = Some(info);
    }

    /// Handle one protocol line, producing one response line (no
    /// trailing newline). Never panics on malformed input.
    pub fn handle_line(&self, line: &str) -> String {
        let mut cache = self.fallback_cache.lock().expect("fallback cache poisoned");
        self.handle_line_with(line, &mut cache)
    }

    /// [`Service::handle_line`] against a caller-owned reader cache —
    /// the single-request path pool workers use for non-batchable
    /// commands.
    pub fn handle_line_with(&self, line: &str, cache: &mut ReaderCache) -> String {
        let arrival = self.shared.clock.monotonic_micros();
        match Json::parse(line) {
            Ok(req) => self.handle(&req, cache, arrival),
            Err(e) => err(&format!("bad request: {e}")).render(),
        }
    }

    /// Handle a pipelined burst of protocol lines, one response per
    /// line in order. Consecutive `extract` requests against the same
    /// source run as **one** staged pipeline (one parse/clean/extract
    /// pass over the union of their pages — see `shard::extract_batch`)
    /// with byte-identical per-request responses; every other line is
    /// handled exactly as [`Service::handle_line`] would.
    pub fn handle_batch<S: AsRef<str>>(&self, lines: &[S], cache: &mut ReaderCache) -> Vec<String> {
        let arrival = self.shared.clock.monotonic_micros();
        self.handle_batch_at(lines, cache, arrival)
    }

    /// [`Service::handle_batch`] with an explicit arrival timestamp —
    /// the connection layer stamps arrival when the lines come off the
    /// socket, so the queue-wait half of the latency split covers the
    /// time spent behind admission control and batch mates.
    pub fn handle_batch_at<S: AsRef<str>>(
        &self,
        lines: &[S],
        cache: &mut ReaderCache,
        arrival_mono: u64,
    ) -> Vec<String> {
        let parsed: Vec<Result<Json, String>> = lines
            .iter()
            .map(|l| Json::parse(l.as_ref()).map_err(|e| format!("bad request: {e}")))
            .collect();
        let mut responses: Vec<String> = Vec::with_capacity(parsed.len());
        let mut i = 0;
        while i < parsed.len() {
            let req = match &parsed[i] {
                Err(e) => {
                    responses.push(err(e).render());
                    i += 1;
                    continue;
                }
                Ok(req) => req,
            };
            // Extend a batchable run: same source, all `extract`.
            if let Some(source) = batchable_source(req) {
                let mut j = i + 1;
                while j < parsed.len()
                    && parsed[j]
                        .as_ref()
                        .is_ok_and(|r| batchable_source(r) == Some(source))
                {
                    j += 1;
                }
                if j - i > 1 {
                    let group: Vec<&Json> = parsed[i..j]
                        .iter()
                        .map(|r| r.as_ref().expect("batch run parsed"))
                        .collect();
                    let spans: Vec<Span> = group
                        .iter()
                        .map(|_| {
                            self.shared
                                .obs
                                .counter_add("objectrunner.serve.requests.extract", 1);
                            self.shared.obs.trace("serve.extract")
                        })
                        .collect();
                    self.shared
                        .obs
                        .counter_add("objectrunner.serve.serving.batches", 1);
                    self.shared.obs.counter_add(
                        "objectrunner.serve.serving.batched_requests",
                        (j - i) as u64,
                    );
                    let started = self.shared.clock.monotonic_micros();
                    let queue_wait = started.saturating_sub(arrival_mono);
                    let results =
                        shard::extract_batch(&self.shared, cache, &group, &spans, Some(queue_wait));
                    let batch_size = j - i;
                    for ((response, span), req) in results.into_iter().zip(spans).zip(&group) {
                        let meta = RequestMeta {
                            cmd: "extract",
                            source: req.get("source").and_then(Json::as_str),
                            arrival_mono,
                            started_mono: started,
                            batched: true,
                            batch_size,
                        };
                        responses.push(self.shared.complete(span, response, &meta));
                    }
                    i = j;
                    continue;
                }
            }
            responses.push(self.handle(req, cache, arrival_mono));
            i += 1;
        }
        responses
    }

    fn handle(&self, req: &Json, cache: &mut ReaderCache, arrival_mono: u64) -> String {
        let shared = &self.shared;
        let started = shared.clock.monotonic_micros();
        let cmd = req.get("cmd").and_then(Json::as_str).map(str::to_owned);
        let span_name: &'static str = match cmd.as_deref() {
            Some("induce") => "serve.induce",
            Some("extract") => "serve.extract",
            Some("status") => "serve.status",
            Some("trace") => "serve.trace",
            Some("query") => "serve.query",
            Some("get") => "serve.get",
            Some("store-status") => "serve.store_status",
            Some("compact") => "serve.compact",
            _ => "serve.error",
        };
        let span = shared.obs.trace(span_name);
        shared.obs.counter_add(
            &format!(
                "objectrunner.serve.requests.{}",
                cmd.as_deref().unwrap_or("unknown")
            ),
            1,
        );
        let queue_wait = started.saturating_sub(arrival_mono);
        let response = match cmd.as_deref() {
            Some("induce") => shared.induce(req, &span),
            Some("extract") => shard::extract_batch(
                shared,
                cache,
                &[req],
                std::slice::from_ref(&span),
                Some(queue_wait),
            )
            .pop()
            .expect("one response per request"),
            Some("status") => shared.status(),
            Some("trace") => shared.trace_dump(req),
            Some("query") => shared.query_cmd(req, &span),
            Some("get") => shared.get_cmd(req),
            Some("store-status") => shared.store_status_cmd(),
            Some("compact") => shared.compact_cmd(&span),
            Some(other) => err(&format!("unknown cmd '{other}'")),
            None => err("missing 'cmd'"),
        };
        let meta = RequestMeta {
            cmd: cmd.as_deref().unwrap_or("unknown"),
            source: req.get("source").and_then(Json::as_str),
            arrival_mono,
            started_mono: started,
            batched: false,
            batch_size: 1,
        };
        shared.complete(span, response, &meta)
    }

    /// Parse `line` as a streaming protocol command, if it is one. The
    /// substring pre-filter keeps the connection layer from
    /// JSON-parsing every ordinary request line twice.
    pub fn special(&self, line: &str) -> Option<Special> {
        if !line.contains("watch") && !line.contains("metrics-text") {
            return None;
        }
        let req = Json::parse(line).ok()?;
        match req.get("cmd").and_then(Json::as_str) {
            Some("watch") => Some(Special::Watch {
                interval_micros: req
                    .get("interval_micros")
                    .and_then(Json::as_usize)
                    .map(|n| n as u64)
                    .unwrap_or(self.shared.config.watch_interval_micros),
                count: req
                    .get("count")
                    .and_then(Json::as_usize)
                    .map(|n| n as u64)
                    .unwrap_or(u64::MAX),
            }),
            Some("metrics-text") => Some(Special::MetricsText),
            _ => None,
        }
    }

    /// Run a streaming command, handing each output chunk to `emit`
    /// (one `watch` line per call, the whole text exposition for
    /// `metrics-text`; no trailing newline). `emit` returning `false`
    /// stops the stream — the peer went away.
    pub fn run_special(&self, spec: &Special, emit: &mut dyn FnMut(&str) -> bool) {
        match spec {
            Special::MetricsText => {
                self.shared
                    .obs
                    .counter_add("objectrunner.serve.requests.metrics_text", 1);
                emit(&self.metrics_text());
            }
            Special::Watch {
                interval_micros,
                count,
            } => {
                self.shared
                    .obs
                    .counter_add("objectrunner.serve.requests.watch", 1);
                let mut tick: u64 = 0;
                while tick < *count {
                    if !emit(&self.shared.watch_line(tick)) {
                        return;
                    }
                    tick += 1;
                    if tick < *count && *interval_micros > 0 {
                        std::thread::sleep(std::time::Duration::from_micros(*interval_micros));
                    }
                }
            }
        }
    }

    /// Prometheus-style text exposition of the whole metrics registry
    /// (the `metrics-text` command).
    pub fn metrics_text(&self) -> String {
        export::prometheus_text(&self.shared.obs.snapshot())
    }

    /// Account request lines shed by admission control: a typed
    /// `serve.shed` span per line, tail retention under the `shed`
    /// kind, and an access-log line (outcome `shed`,
    /// `response_bytes` = the typed overload response).
    pub fn record_shed(&self, count: usize, arrival_mono: u64, response_bytes: usize) {
        let shared = &self.shared;
        let now = shared.clock.monotonic_micros();
        let wall = shared.clock.wall_unix_micros();
        let queue_wait = now.saturating_sub(arrival_mono);
        for _ in 0..count {
            let mut span = shared.obs.trace("serve.shed");
            let trace_id = span.trace_id();
            span.attr_str("outcome", "shed");
            span.attr_u64("queue_wait_micros", queue_wait);
            span.finish();
            shared
                .sampler
                .offer(&shared.obs, TraceKind::Shed, trace_id, 0, wall);
            shared.access_line(&AccessRecord {
                wall_unix_micros: wall,
                trace: trace_id,
                cmd: "shed",
                source: None,
                outcome: "shed",
                queue_wait_micros: queue_wait,
                service_micros: 0,
                batched: false,
                batch_size: 1,
                bytes: response_bytes as u64,
                revision: None,
            });
        }
    }
}

/// A protocol command whose output streams (or is not one JSON line),
/// peeled off the normal request path by the stdin loop and the
/// connection layer before `handle_batch` sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Special {
    /// `{"cmd":"watch","interval_micros":N,"count":N}` — one canonical
    /// metrics-snapshot line per tick (defaults: the daemon's
    /// `--watch-interval`, unbounded count).
    Watch { interval_micros: u64, count: u64 },
    /// `{"cmd":"metrics-text"}` — Prometheus-style text exposition.
    MetricsText,
}

/// The source of a request that can join an extract batch.
fn batchable_source(req: &Json) -> Option<&str> {
    match req.get("cmd").and_then(Json::as_str) {
        Some("extract") => req.get("source").and_then(Json::as_str),
        _ => None,
    }
}

/// Per-request bookkeeping carried from parse to completion: what ran,
/// when it arrived off the socket, when the service actually started
/// on it, and how it was batched.
pub(crate) struct RequestMeta<'a> {
    pub cmd: &'a str,
    pub source: Option<&'a str>,
    pub arrival_mono: u64,
    pub started_mono: u64,
    pub batched: bool,
    pub batch_size: usize,
}

/// One access-log line's fields, in render order.
struct AccessRecord<'a> {
    wall_unix_micros: u64,
    trace: u64,
    cmd: &'a str,
    source: Option<&'a str>,
    outcome: &'a str,
    queue_wait_micros: u64,
    service_micros: u64,
    batched: bool,
    batch_size: usize,
    bytes: u64,
    revision: Option<i64>,
}

/// Histogram names of the request-level latency split; public so
/// benches and operators can address the windowed views by name.
pub const REQUEST_LATENCY: &str = "objectrunner.serve.request.latency_micros";
pub const REQUEST_QUEUE_WAIT: &str = "objectrunner.serve.request.queue_wait_micros";

/// Windowed samples required before the adaptive slow-trace threshold
/// kicks in (a p99 over a handful of requests is noise).
const SLOW_MIN_SAMPLES: u64 = 16;

impl ServiceShared {
    /// The wrapper file for a source.
    pub(crate) fn wrapper_path(&self, source: &str) -> PathBuf {
        self.config.store_dir.join(format!("{source}.orw"))
    }

    /// Finish a request: stamp the span's outcome and queue wait,
    /// record the latency split into the request histograms (and the
    /// sliding windows behind them), echo the trace id into the
    /// response, retain the trace when it qualifies (errors always,
    /// slow past [`ServiceShared::slow_threshold`]), and append the
    /// access-log line. Returns the rendered response line.
    pub(crate) fn complete(&self, mut span: Span, response: Json, meta: &RequestMeta) -> String {
        let trace_id = span.trace_id();
        let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
        let queue_wait = meta.started_mono.saturating_sub(meta.arrival_mono);
        let service = self
            .clock
            .monotonic_micros()
            .saturating_sub(meta.started_mono);
        span.attr_str("outcome", if ok { "ok" } else { "error" });
        span.attr_u64("queue_wait_micros", queue_wait);
        span.finish();
        self.obs
            .histogram_record(REQUEST_LATENCY, &LATENCY_BUCKETS_MICROS, service);
        self.obs
            .histogram_record(REQUEST_QUEUE_WAIT, &LATENCY_BUCKETS_MICROS, queue_wait);
        self.obs
            .counter_add("objectrunner.serve.request.completed", 1);
        let revision = response.get("revision").and_then(Json::as_i64);
        let rendered = match response {
            Json::Obj(mut pairs) => {
                pairs.push(("trace".into(), Json::int(trace_id)));
                Json::Obj(pairs).render()
            }
            other => other.render(),
        };
        let wall = self.clock.wall_unix_micros();
        if !ok {
            self.sampler
                .offer(&self.obs, TraceKind::Error, trace_id, service, wall);
        } else if self.slow_threshold().is_some_and(|t| service >= t) {
            self.sampler
                .offer(&self.obs, TraceKind::Slow, trace_id, service, wall);
        }
        self.access_line(&AccessRecord {
            wall_unix_micros: wall,
            trace: trace_id,
            cmd: meta.cmd,
            source: meta.source,
            outcome: if ok { "ok" } else { "error" },
            queue_wait_micros: queue_wait,
            service_micros: service,
            batched: meta.batched,
            batch_size: meta.batch_size,
            bytes: rendered.len() as u64 + 1,
            revision,
        });
        self.note_span_loss();
        rendered
    }

    /// The service-time threshold (micros) above which a completed
    /// request's trace is retained as *slow*: the max of the explicit
    /// `--slow-trace-micros` floor and the adaptive windowed-60s p99
    /// of request latency (once [`SLOW_MIN_SAMPLES`] windowed samples
    /// exist). `None` — no floor, window still cold — retains nothing.
    pub(crate) fn slow_threshold(&self) -> Option<u64> {
        let adaptive = self.obs.windows().and_then(|w| {
            let win = w.get(REQUEST_LATENCY)?;
            let snap = win.snapshot(self.clock.monotonic_micros(), 60_000_000);
            (snap.count >= SLOW_MIN_SAMPLES).then(|| snap.quantile(0.99))
        });
        match (self.config.slow_trace_micros, adaptive) {
            (Some(floor), Some(p99)) => Some(floor.max(p99)),
            (Some(floor), None) => Some(floor),
            (None, adaptive) => adaptive,
        }
    }

    /// One canonical `watch` line: fixed key order, every value a pure
    /// function of the clock and the recorded metrics — byte-stable
    /// across thread counts under a pinned fake clock.
    pub(crate) fn watch_line(&self, tick: u64) -> String {
        let now = self.clock.monotonic_micros();
        let snap = self.obs.snapshot();
        let win = self.obs.windows().and_then(|w| w.get(REQUEST_LATENCY));
        let (rps_1s, rps_10s, rps_60s, p50, p99, p999) = match &win {
            Some(w) => {
                let s = w.snapshot(now, 60_000_000);
                (
                    w.rate(now, 1_000_000),
                    w.rate(now, 10_000_000),
                    w.rate(now, 60_000_000),
                    s.quantile(0.5),
                    s.quantile(0.99),
                    s.quantile(0.999),
                )
            }
            None => (0.0, 0.0, 0.0, 0, 0, 0),
        };
        let serving = |name: &str| format!("objectrunner.serve.serving.{name}");
        Json::Obj(vec![
            ("type".into(), Json::str("watch")),
            ("tick".into(), Json::int(tick)),
            (
                "uptime_micros".into(),
                Json::int(now.saturating_sub(self.start_mono)),
            ),
            (
                "requests".into(),
                Json::int(snap.counter("objectrunner.serve.request.completed")),
            ),
            ("rps_1s".into(), Json::Float(rps_1s)),
            ("rps_10s".into(), Json::Float(rps_10s)),
            ("rps_60s".into(), Json::Float(rps_60s)),
            ("p50_us".into(), Json::int(p50)),
            ("p99_us".into(), Json::int(p99)),
            ("p999_us".into(), Json::int(p999)),
            (
                "inflight".into(),
                Json::int(snap.gauge(&serving("inflight"))),
            ),
            (
                "queue_depth".into(),
                Json::int(snap.gauge(&serving("queue_depth"))),
            ),
            (
                "active_conns".into(),
                Json::int(snap.gauge(&serving("active_conns"))),
            ),
            (
                "shed_requests".into(),
                Json::int(snap.counter(&serving("shed_requests"))),
            ),
            ("dropped_spans".into(), Json::int(self.obs.dropped_spans())),
            (
                "access_log_dropped".into(),
                Json::int(
                    self.access_log
                        .as_ref()
                        .map(|l| l.stats().dropped)
                        .unwrap_or(0),
                ),
            ),
        ])
        .render()
    }

    /// Append one structured line to the access log, if one is open.
    fn access_line(&self, r: &AccessRecord) {
        let Some(log) = &self.access_log else { return };
        let line = Json::Obj(vec![
            ("ts_unix_micros".into(), Json::int(r.wall_unix_micros)),
            ("trace".into(), Json::int(r.trace)),
            ("cmd".into(), Json::str(r.cmd)),
            (
                "source".into(),
                r.source.map(Json::str).unwrap_or(Json::Null),
            ),
            ("outcome".into(), Json::str(r.outcome)),
            ("queue_wait_micros".into(), Json::int(r.queue_wait_micros)),
            ("service_micros".into(), Json::int(r.service_micros)),
            ("batched".into(), Json::Bool(r.batched)),
            ("batch_size".into(), Json::int(r.batch_size)),
            ("bytes".into(), Json::int(r.bytes)),
            (
                "revision".into(),
                r.revision.map(Json::int).unwrap_or(Json::Null),
            ),
        ])
        .render();
        log.write_line(&line);
    }

    /// Warn once (per daemon) when the span ring has wrapped; the
    /// running count stays visible in `status.live.dropped_spans`.
    fn note_span_loss(&self) {
        if self.obs.dropped_spans() > 0 && !self.span_loss_logged.swap(true, Ordering::Relaxed) {
            eprintln!(
                "objectrunner-serve: span buffer wrapped (oldest spans dropped); \
                 see status.live.dropped_spans"
            );
        }
    }

    /// The shared annotation engine for a domain (compiled on first
    /// use, then reused by every induction of that domain).
    fn annotator_for(&self, domain: Domain) -> Arc<Annotator> {
        let key = domain.name().to_lowercase();
        let mut cache = self.annotators.lock().expect("annotator cache poisoned");
        Arc::clone(cache.entry(key).or_insert_with(|| {
            Arc::new(Annotator::new(&recognizers_for(
                domain,
                self.config.coverage,
            )))
        }))
    }

    /// Pipeline configuration for (re-)induction. When a request span
    /// is supplied, the pipeline's own spans nest under it, so one
    /// trace id covers the request end-to-end.
    fn pipeline_config(&self, parent: Option<&Span>) -> PipelineConfig {
        PipelineConfig {
            sample: SampleConfig {
                sample_size: self.config.sample_size,
                ..SampleConfig::default()
            },
            threads: self.config.threads,
            obs: self.obs.clone(),
            trace_context: parent.filter(|s| s.is_enabled()).map(Span::context),
            ..PipelineConfig::default()
        }
    }

    /// Induce (or re-induce) a wrapper from scratch on the given pages.
    pub(crate) fn induce_wrapper(
        &self,
        source: &str,
        domain: Domain,
        revision: u64,
        pages: &[String],
        parent: &Span,
    ) -> Result<(StoredWrapper, Vec<Instance>, String), String> {
        let sod = domain.sod();
        let recognizers = recognizers_for(domain, self.config.coverage);
        let config = self.pipeline_config(Some(parent));
        let clean = config.clean.clone();
        let pipeline =
            Pipeline::with_annotator(sod.clone(), recognizers, self.annotator_for(domain))
                .with_config(config);
        let outcome = pipeline
            .run_on_html(pages)
            .map_err(|e| format!("induction failed: {e}"))?;
        let stored = StoredWrapper {
            source: source.to_owned(),
            domain: domain.name().to_lowercase(),
            revision,
            sod,
            wrapper: outcome.wrapper,
            main_block: outcome.main_block,
            clean,
            repair: None,
        };
        Ok((stored, outcome.objects, outcome.stats.to_json()))
    }

    fn induce(&self, req: &Json, span: &Span) -> Json {
        let source = match req.get("source").and_then(Json::as_str) {
            Some(s) => s.to_owned(),
            None => return err("missing 'source'"),
        };
        let domain = match req.get("domain").and_then(Json::as_str) {
            Some(name) => match Domain::by_name(name) {
                Some(d) => d,
                None => return err(&format!("unknown domain '{name}'")),
            },
            None => return err("missing 'domain'"),
        };
        let pages = match request_pages(req) {
            Ok(p) => p,
            Err(e) => return err(&e),
        };
        let revision = self
            .registry
            .load()
            .1
            .get(&source)
            .map(|shard| shard.snapshot().revision + 1)
            .unwrap_or(1);
        let (stored, objects, stats) =
            match self.induce_wrapper(&source, domain, revision, &pages, span) {
                Ok(r) => r,
                Err(e) => return err(&e),
            };
        if let Err(e) = self.persist(&stored) {
            return err(&e);
        }
        self.obs.counter_add("objectrunner.serve.inductions", 1);
        self.obs.gauge_set(
            &format!("objectrunner.serve.revision.{source}"),
            revision as i64,
        );
        let response = Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("induce")),
            ("source".into(), Json::str(&source)),
            ("revision".into(), Json::int(revision as i64)),
            ("quality".into(), Json::Float(stored.wrapper.quality)),
            ("count".into(), Json::int(objects.len())),
            (
                "objects".into(),
                Json::Arr(objects.iter().map(instance_json).collect()),
            ),
            ("stats".into(), Json::Raw(stats)),
        ]);
        shard::install_induced(
            self,
            &source,
            stored,
            format!("induced: revision {revision}, {} pages", pages.len()),
        );
        response
    }

    pub(crate) fn persist(&self, stored: &StoredWrapper) -> Result<(), String> {
        std::fs::create_dir_all(&self.config.store_dir).map_err(|e| format!("store dir: {e}"))?;
        save_file(&self.wrapper_path(&stored.source), stored).map_err(|e| format!("persist: {e}"))
    }

    fn status(&self) -> Json {
        let now_mono = self.clock.monotonic_micros();
        let registry = self.registry.load().1;
        let sources = registry
            .iter()
            .map(|(name, s)| {
                let stored = s.snapshot();
                let lane = s.lane();
                let idle = if lane.last_activity_mono == 0 {
                    0
                } else {
                    now_mono.saturating_sub(lane.last_activity_mono)
                };
                Json::Obj(vec![
                    ("source".into(), Json::str(name)),
                    ("domain".into(), Json::str(&stored.domain)),
                    ("revision".into(), Json::int(stored.revision as i64)),
                    ("state".into(), Json::str(lane.state.as_str())),
                    ("quality".into(), Json::Float(stored.wrapper.quality)),
                    ("extracts".into(), Json::int(lane.extracts as i64)),
                    ("cache_hits".into(), Json::int(lane.cache_hits as i64)),
                    ("drift_events".into(), Json::int(lane.drift_events as i64)),
                    ("buffered".into(), Json::int(lane.buffer.len())),
                    (
                        "repair".into(),
                        match &stored.repair {
                            Some(p) => Json::Obj(vec![
                                ("repaired_from".into(), Json::int(p.repaired_from as i64)),
                                ("matched_exact".into(), Json::int(p.matched_exact)),
                                ("matched_container".into(), Json::int(p.matched_container)),
                                ("unmatched_old".into(), Json::int(p.unmatched_old)),
                                ("unmatched_new".into(), Json::int(p.unmatched_new)),
                            ]),
                            None => Json::Null,
                        },
                    ),
                    (
                        "last_activity_unix_micros".into(),
                        Json::int(lane.last_activity_wall),
                    ),
                    ("idle_micros".into(), Json::int(idle)),
                    (
                        "log".into(),
                        Json::Arr(lane.log.iter().map(Json::str).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("status")),
            (
                "uptime_micros".into(),
                Json::int(now_mono.saturating_sub(self.start_mono)),
            ),
            (
                // Echo of the tunable lifecycle knobs (CLI flags), so
                // an operator can read a daemon's effective thresholds
                // off a status probe.
                "config".into(),
                Json::Obj(vec![
                    (
                        "drift_threshold".into(),
                        Json::Float(self.config.drift_threshold),
                    ),
                    ("buffer_pages".into(), Json::int(self.config.buffer_pages)),
                    (
                        "min_reinduce_pages".into(),
                        Json::int(self.config.min_reinduce_pages),
                    ),
                    ("repair_floor".into(), Json::Float(self.config.repair_floor)),
                    (
                        "empty_page_threshold".into(),
                        Json::Float(self.config.empty_page_threshold),
                    ),
                ]),
            ),
            ("serving".into(), self.serving_section()),
            ("live".into(), self.live_section()),
            ("sources".into(), Json::Arr(sources)),
            ("metrics".into(), self.metrics_section()),
            (
                // Durable-sink summary (per-domain live objects, dedup
                // fusion rate, last compaction); null when the daemon
                // runs without `--object-store`.
                "object_store".into(),
                match &self.objstore {
                    Some(store) => {
                        store_status_json(&store.read().expect("object store poisoned").status())
                    }
                    None => Json::Null,
                },
            ),
        ])
    }

    /// The status response's `serving` section: the pool shape (null
    /// for the stdin loop), live load gauges, batching and shedding
    /// counters, and the per-connection I/O counters — everything an
    /// operator needs to see back-pressure building before it sheds.
    fn serving_section(&self) -> Json {
        let snap = self.obs.snapshot();
        let pool = self.pool.lock().expect("pool info poisoned").clone();
        let serving = |name: &str| format!("objectrunner.serve.serving.{name}");
        let conn = |name: &str| format!("objectrunner.serve.conn.{name}");
        Json::Obj(vec![
            (
                "pool".into(),
                match pool {
                    Some(p) => Json::Obj(vec![
                        ("workers".into(), Json::int(p.workers)),
                        ("max_conns".into(), Json::int(p.max_conns)),
                        ("inflight_budget".into(), Json::int(p.inflight_budget)),
                        ("batch_max".into(), Json::int(p.batch_max)),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "inflight".into(),
                Json::int(snap.gauge(&serving("inflight"))),
            ),
            (
                "queue_depth".into(),
                Json::int(snap.gauge(&serving("queue_depth"))),
            ),
            (
                "active_conns".into(),
                Json::int(snap.gauge(&serving("active_conns"))),
            ),
            (
                "requests".into(),
                Json::int(snap.counter(&serving("requests"))),
            ),
            (
                "batches".into(),
                Json::int(snap.counter(&serving("batches"))),
            ),
            (
                "batched_requests".into(),
                Json::int(snap.counter(&serving("batched_requests"))),
            ),
            (
                "shed_requests".into(),
                Json::int(snap.counter(&serving("shed_requests"))),
            ),
            (
                "shed_conns".into(),
                Json::int(snap.counter(&serving("shed_conns"))),
            ),
            (
                "conn".into(),
                Json::Obj(vec![
                    (
                        "accepted".into(),
                        Json::int(snap.counter(&conn("accepted"))),
                    ),
                    ("closed".into(), Json::int(snap.counter(&conn("closed")))),
                    (
                        "accept_errors".into(),
                        Json::int(snap.counter(&conn("accept_errors"))),
                    ),
                    (
                        "read_errors".into(),
                        Json::int(snap.counter(&conn("read_errors"))),
                    ),
                    (
                        "write_errors".into(),
                        Json::int(snap.counter(&conn("write_errors"))),
                    ),
                ]),
            ),
        ])
    }

    /// The status response's `live` section: sliding-window rates and
    /// quantiles for every windowed histogram, the effective
    /// slow-trace threshold, tail-retention counts, span loss, and the
    /// access log's health — the "right now" view next to the
    /// cumulative `metrics` section.
    fn live_section(&self) -> Json {
        let now = self.clock.monotonic_micros();
        let mut hists: Vec<(String, Json)> = Vec::new();
        if let Some(windows) = self.obs.windows() {
            for name in windows.names() {
                let Some(w) = windows.get(&name) else {
                    continue;
                };
                let s60 = w.snapshot(now, 60_000_000);
                hists.push((
                    name,
                    Json::Obj(vec![
                        ("rate_1s".into(), Json::Float(w.rate(now, 1_000_000))),
                        ("rate_10s".into(), Json::Float(w.rate(now, 10_000_000))),
                        ("rate_60s".into(), Json::Float(w.rate(now, 60_000_000))),
                        ("count_60s".into(), Json::int(s60.count)),
                        ("p50_60s".into(), Json::int(s60.quantile(0.5))),
                        ("p99_60s".into(), Json::int(s60.quantile(0.99))),
                        ("p999_60s".into(), Json::int(s60.quantile(0.999))),
                    ]),
                ));
            }
        }
        let (slow, errors, shed) = self.sampler.retained_counts();
        Json::Obj(vec![
            (
                "window".into(),
                match self.obs.windows().map(|w| w.config()) {
                    Some(c) => Json::Obj(vec![
                        ("bucket_micros".into(), Json::int(c.bucket_micros)),
                        ("buckets".into(), Json::int(c.buckets)),
                    ]),
                    None => Json::Null,
                },
            ),
            ("histograms".into(), Json::Obj(hists)),
            (
                "slow_trace_threshold_micros".into(),
                match self.slow_threshold() {
                    Some(t) => Json::int(t),
                    None => Json::Null,
                },
            ),
            (
                "traces".into(),
                Json::Obj(vec![
                    ("slow".into(), Json::int(slow)),
                    ("errors".into(), Json::int(errors)),
                    ("shed".into(), Json::int(shed)),
                    ("evicted".into(), Json::int(self.sampler.evicted())),
                ]),
            ),
            ("dropped_spans".into(), Json::int(self.obs.dropped_spans())),
            (
                "access_log".into(),
                match &self.access_log {
                    Some(log) => {
                        let s = log.stats();
                        Json::Obj(vec![
                            ("path".into(), Json::str(log.path().display().to_string())),
                            ("written".into(), Json::int(s.written)),
                            ("rotations".into(), Json::int(s.rotations)),
                            ("dropped".into(), Json::int(s.dropped)),
                            ("current_bytes".into(), Json::int(s.current_bytes)),
                        ])
                    }
                    None => Json::Null,
                },
            ),
        ])
    }

    /// The status response's `metrics` section: per-domain extract
    /// latency and drift-score histograms (read back out of the obs
    /// registry), wrapper revisions, annotation-memo hit rate, and
    /// request counters.
    fn metrics_section(&self) -> Json {
        let snap = self.obs.snapshot();
        let mut latency: Vec<(String, Json)> = Vec::new();
        let mut drift: Vec<(String, Json)> = Vec::new();
        for (name, h) in &snap.histograms {
            if let Some(domain) = name.strip_prefix("objectrunner.serve.extract.latency_micros.") {
                latency.push((domain.to_owned(), histogram_json(h)));
            } else if let Some(domain) = name.strip_prefix("objectrunner.serve.drift.score_milli.")
            {
                drift.push((domain.to_owned(), histogram_json(h)));
            }
        }
        let revisions = self
            .registry
            .load()
            .1
            .iter()
            .map(|(name, s)| (name.clone(), Json::int(s.snapshot().revision as i64)))
            .collect();
        let (hits, misses) = {
            let cache = self.annotators.lock().expect("annotator cache poisoned");
            cache.values().fold((0u64, 0u64), |(h, m), a| {
                (h + a.cache_hits(), m + a.cache_misses())
            })
        };
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };
        let requests = ["induce", "extract", "status", "trace"]
            .iter()
            .map(|&c| {
                (
                    c.to_owned(),
                    Json::int(snap.counter(&format!("objectrunner.serve.requests.{c}"))),
                )
            })
            .collect();
        Json::Obj(vec![
            ("extract_latency_micros".into(), Json::Obj(latency)),
            ("drift_score_milli".into(), Json::Obj(drift)),
            ("revisions".into(), Json::Obj(revisions)),
            (
                "annotation_memo".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::int(hits)),
                    ("misses".into(), Json::int(misses)),
                    ("hit_rate".into(), Json::Float(hit_rate)),
                ]),
            ),
            ("requests".into(), Json::Obj(requests)),
            (
                "reinductions".into(),
                Json::int(snap.counter("objectrunner.serve.reinductions")),
            ),
            (
                "repair".into(),
                Json::Obj(vec![
                    (
                        "attempts".into(),
                        Json::int(snap.counter("objectrunner.serve.repair.attempts")),
                    ),
                    (
                        "successes".into(),
                        Json::int(snap.counter("objectrunner.serve.repair.successes")),
                    ),
                    (
                        "fallbacks".into(),
                        Json::int(snap.counter("objectrunner.serve.repair.fallbacks")),
                    ),
                ]),
            ),
        ])
    }

    /// `{"cmd":"trace","limit":N}` — the span trees of the last `N`
    /// requests (default 3) still in the observability buffer. With
    /// `"kind":"slow"|"errors"|"shed"` the dump reads the tail-sampled
    /// retention rings instead: the span trees of the last qualifying
    /// requests, held even after the main buffer has wrapped. Spans
    /// are rendered in `(trace, id)` order, parents before children.
    fn trace_dump(&self, req: &Json) -> Json {
        let limit = req
            .get("limit")
            .and_then(Json::as_usize)
            .unwrap_or(3)
            .max(1);
        if let Some(kind) = req.get("kind").and_then(Json::as_str) {
            let Some(kind) = TraceKind::parse(kind) else {
                return err(&format!("unknown trace kind '{kind}' (slow|errors|shed)"));
            };
            let dumped = self.sampler.dump(kind, limit);
            let (slow, errors, shed) = self.sampler.retained_counts();
            let retained = match kind {
                TraceKind::Slow => slow,
                TraceKind::Error => errors,
                TraceKind::Shed => shed,
            };
            let traces: Vec<Json> = dumped
                .iter()
                .map(|t| {
                    Json::Obj(vec![
                        ("trace".into(), Json::int(t.trace)),
                        ("kind".into(), Json::str(t.kind.as_str())),
                        ("latency_micros".into(), Json::int(t.latency_micros)),
                        ("wall_unix_micros".into(), Json::int(t.wall_unix_micros)),
                        ("truncated".into(), Json::Bool(t.truncated)),
                        (
                            "spans".into(),
                            Json::Arr(t.spans.iter().map(span_json).collect()),
                        ),
                    ])
                })
                .collect();
            return Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("cmd".into(), Json::str("trace")),
                ("kind".into(), Json::str(kind.as_str())),
                ("retained".into(), Json::int(retained)),
                ("evicted".into(), Json::int(self.sampler.evicted())),
                ("traces".into(), Json::Arr(traces)),
                ("dropped_spans".into(), Json::int(self.obs.dropped_spans())),
            ]);
        }
        let spans = self.obs.spans();
        // `spans` is sorted by (trace, id) and trace ids are allocated
        // in request order, so the last distinct ids are the most
        // recent requests.
        let mut traces: Vec<u64> = Vec::new();
        for s in &spans {
            if traces.last() != Some(&s.trace) {
                traces.push(s.trace);
            }
        }
        let keep = &traces[traces.len().saturating_sub(limit)..];
        let rendered: Vec<Json> = spans
            .iter()
            .filter(|s| keep.contains(&s.trace))
            .map(span_json)
            .collect();
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("trace")),
            ("enabled".into(), Json::Bool(self.obs.is_enabled())),
            ("traces".into(), Json::int(keep.len())),
            ("spans".into(), Json::Arr(rendered)),
            ("dropped_spans".into(), Json::int(self.obs.dropped_spans())),
        ])
    }

    /// `{"cmd":"query", …}` — run a [`Query`] against the object
    /// store; see `objstore::query` for the filter grammar. Hits are
    /// rendered with per-attribute provenance; `next_cursor` (when
    /// present) feeds the next page's `"cursor"`.
    fn query_cmd(&self, req: &Json, span: &Span) -> Json {
        let Some(store) = &self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        let q = match Query::from_json(req) {
            Ok(q) => q,
            Err(e) => return err(&format!("bad query: {e}")),
        };
        let trace_context = Some(span.context()).filter(|_| span.is_enabled());
        let result = store
            .read()
            .expect("object store poisoned")
            .query(&q, trace_context);
        match result {
            Ok(result) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("cmd".into(), Json::str("query")),
                ("count".into(), Json::int(result.hits.len())),
                (
                    "hits".into(),
                    Json::Arr(
                        result
                            .hits
                            .iter()
                            .map(|h| record_json(h, &q.select))
                            .collect(),
                    ),
                ),
                (
                    "next_cursor".into(),
                    match result.next_cursor {
                        Some(c) => Json::str(c),
                        None => Json::Null,
                    },
                ),
                ("scanned".into(), Json::int(result.scanned)),
            ]),
            Err(e) => err(&format!("query: {e}")),
        }
    }

    /// `{"cmd":"get","key":K}` — fetch one object (with provenance)
    /// by its identity key.
    fn get_cmd(&self, req: &Json) -> Json {
        let Some(store) = &self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        let Some(key) = req.get("key").and_then(Json::as_str) else {
            return err("missing 'key'");
        };
        match store.read().expect("object store poisoned").get(key) {
            Ok(hit) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("cmd".into(), Json::str("get")),
                ("found".into(), Json::Bool(hit.is_some())),
                (
                    "hit".into(),
                    match &hit {
                        Some(record) => record_json(record, &[]),
                        None => Json::Null,
                    },
                ),
            ]),
            Err(e) => err(&format!("get: {e}")),
        }
    }

    /// `{"cmd":"store-status"}` — segment/object/byte counts and the
    /// cumulative dedup counters of the object store.
    fn store_status_cmd(&self) -> Json {
        let Some(store) = &self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        let mut pairs = vec![
            ("ok".into(), Json::Bool(true)),
            ("cmd".into(), Json::str("store-status")),
        ];
        if let Json::Obj(section) =
            store_status_json(&store.read().expect("object store poisoned").status())
        {
            pairs.extend(section);
        }
        Json::Obj(pairs)
    }

    /// `{"cmd":"compact"}` — rewrite live records into a fresh
    /// generation and drop superseded versions.
    fn compact_cmd(&self, span: &Span) -> Json {
        let now = self.clock.wall_unix_micros();
        let trace_context = Some(span.context()).filter(|_| span.is_enabled());
        let Some(store) = &self.objstore else {
            return err("no object store attached (start with --object-store DIR)");
        };
        let result = store
            .write()
            .expect("object store poisoned")
            .compact(now, trace_context);
        match result {
            Ok(r) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("cmd".into(), Json::str("compact")),
                ("live_records".into(), Json::int(r.live_records)),
                ("dropped_records".into(), Json::int(r.dropped_records)),
                ("segments_before".into(), Json::int(r.segments_before)),
                ("segments_after".into(), Json::int(r.segments_after)),
                ("bytes_before".into(), Json::int(r.bytes_before)),
                ("bytes_after".into(), Json::int(r.bytes_after)),
            ]),
            Err(e) => err(&format!("compact: {e}")),
        }
    }
}

/// Histogram snapshot as JSON (fixed key order).
fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::int(h.count)),
        ("sum".into(), Json::int(h.sum)),
        ("mean".into(), Json::Float(h.mean())),
        (
            "bounds".into(),
            Json::Arr(h.bounds.iter().map(|&b| Json::int(b)).collect()),
        ),
        (
            "counts".into(),
            Json::Arr(h.counts.iter().map(|&c| Json::int(c)).collect()),
        ),
    ])
}

/// One finished span as JSON, matching the JSONL exporter's field
/// names so `trace` output joins against `obs_check` tooling.
fn span_json(s: &SpanRecord) -> Json {
    let attrs = s
        .attrs
        .iter()
        .map(|(k, v)| ((*k).to_owned(), Json::Raw(v.render_json())))
        .collect();
    Json::Obj(vec![
        ("trace".into(), Json::int(s.trace)),
        ("id".into(), Json::int(s.id)),
        ("parent".into(), Json::int(s.parent)),
        ("name".into(), Json::str(s.name)),
        ("start_us".into(), Json::int(s.start_micros)),
        ("dur_us".into(), Json::int(s.dur_micros)),
        ("cpu_us".into(), Json::int(s.cpu_micros)),
        ("attrs".into(), Json::Obj(attrs)),
    ])
}

/// A [`StoreStatus`] as JSON (fixed key order) — shared by the
/// `store-status` command and the `status` response's `object_store`
/// section.
fn store_status_json(s: &StoreStatus) -> Json {
    let per_domain = s
        .per_domain
        .iter()
        .map(|(d, &n)| (d.clone(), Json::int(n)))
        .collect();
    // Of the sightings that collided with a stored object, the
    // fraction that contributed new attributes (cross-source gap
    // filling actually paying off).
    let fusion_rate = if s.duplicates == 0 {
        0.0
    } else {
        s.fused as f64 / s.duplicates as f64
    };
    Json::Obj(vec![
        ("generation".into(), Json::int(s.generation)),
        ("segments".into(), Json::int(s.segments)),
        ("live_objects".into(), Json::int(s.live_objects)),
        ("dead_records".into(), Json::int(s.dead_records)),
        ("bytes".into(), Json::int(s.bytes)),
        ("per_domain".into(), Json::Obj(per_domain)),
        ("ingested".into(), Json::int(s.ingested)),
        ("new_objects".into(), Json::int(s.new_objects)),
        ("fused".into(), Json::int(s.fused)),
        ("duplicates".into(), Json::int(s.duplicates)),
        ("skipped".into(), Json::int(s.skipped)),
        ("fusion_rate".into(), Json::Float(fusion_rate)),
        ("compactions".into(), Json::int(s.compactions)),
        (
            "last_compaction_unix_micros".into(),
            match s.last_compaction_unix_micros {
                Some(t) => Json::int(t),
                None => Json::Null,
            },
        ),
    ])
}

/// Resolve a request's page input: inline `"pages"` array or a
/// `"dir"` of `*.html` files in lexicographic order.
fn request_pages(req: &Json) -> Result<Vec<String>, String> {
    Ok(request_named_pages(req)?
        .into_iter()
        .map(|(_, html)| html)
        .collect())
}

/// Like [`request_pages`], but each page comes with a stable id the
/// object store uses as provenance: the file stem for `"dir"` input,
/// `page-<index>` for inline pages.
pub(crate) fn request_named_pages(req: &Json) -> Result<Vec<(String, String)>, String> {
    if let Some(arr) = req.get("pages").and_then(Json::as_arr) {
        return arr
            .iter()
            .enumerate()
            .map(|(i, p)| {
                p.as_str()
                    .map(|html| (format!("page-{i:04}"), html.to_owned()))
                    .ok_or_else(|| "'pages' holds a non-string".to_owned())
            })
            .collect();
    }
    if let Some(dir) = req.get("dir").and_then(Json::as_str) {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| format!("dir '{dir}': {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "html"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("dir '{dir}' holds no *.html files"));
        }
        return files
            .iter()
            .map(|p| {
                let name = p
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| p.display().to_string());
                std::fs::read_to_string(p)
                    .map(|html| (name, html))
                    .map_err(|e| format!("{}: {e}", p.display()))
            })
            .collect();
    }
    Err("missing 'pages' (inline array) or 'dir' (of *.html files)".to_owned())
}
