//! Disk-streaming corpus layout: one file per page plus a manifest.
//!
//! [`write_corpus`] drives the [`crate::site::site_pages`] generator
//! page by page, so a million-page corpus is written with one page in
//! memory at a time — the generator and the writer are both streams.
//! The layout is deliberately trivial:
//!
//! ```text
//! out-dir/
//!   manifest.json      (site, domain, seed, drift, page/object counts)
//!   page-000000.html
//!   page-000001.html
//!   …
//! ```
//!
//! [`CorpusDir`] reads the layout back, handing out each page as a
//! [`MappedText`] — a read-only `mmap` where available — so the
//! streaming extraction path never holds more pages resident than its
//! working window. Generation is deterministic: the same spec (same
//! seed) always produces byte-identical files, which is what lets
//! benchmark corpora be regenerated instead of shipped.

use crate::mmapfile::MappedText;
use crate::site::{site_pages, Drift, PageKind, SiteSpec};
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// File name of page `i` (fixed-width so lexicographic order is page
/// order up to a million pages).
pub fn page_file_name(i: usize) -> String {
    format!("page-{i:06}.html")
}

/// What one [`write_corpus`] run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusWriteStats {
    pub pages: usize,
    /// Golden objects across all pages.
    pub objects: usize,
    /// HTML bytes written (manifest excluded).
    pub bytes: u64,
}

/// Stream a site's pages to `dir` (created if missing), then write
/// `manifest.json`. Peak memory is one page regardless of corpus size.
pub fn write_corpus(spec: &SiteSpec, drift: &Drift, dir: &Path) -> io::Result<CorpusWriteStats> {
    fs::create_dir_all(dir)?;
    let mut stats = CorpusWriteStats {
        pages: 0,
        objects: 0,
        bytes: 0,
    };
    for (i, (page, truth)) in site_pages(spec, drift).enumerate() {
        let path = dir.join(page_file_name(i));
        let mut file = BufWriter::new(File::create(&path)?);
        file.write_all(page.as_bytes())?;
        file.flush()?;
        stats.pages += 1;
        stats.objects += truth.len();
        stats.bytes += page.len() as u64;
    }
    let manifest = manifest_json(spec, drift, &stats);
    fs::write(dir.join("manifest.json"), manifest)?;
    Ok(stats)
}

/// The manifest body (stable key order; one line, trailing newline).
fn manifest_json(spec: &SiteSpec, drift: &Drift, stats: &CorpusWriteStats) -> String {
    let kind = match spec.kind {
        PageKind::List => "list",
        PageKind::Detail => "detail",
    };
    format!(
        "{{\"site\":\"{}\",\"domain\":\"{}\",\"kind\":\"{kind}\",\"style\":{},\
         \"seed\":{},\"drift\":{},\"pages\":{},\"objects\":{},\"html_bytes\":{}}}\n",
        json_escape(&spec.name),
        spec.domain.name(),
        spec.style,
        spec.seed,
        drift.strength,
        stats.pages,
        stats.objects,
        stats.bytes,
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A corpus directory opened for reading: the sorted page files.
pub struct CorpusDir {
    files: Vec<PathBuf>,
}

impl CorpusDir {
    /// List the page files of `dir` (any `*.html`, sorted by name, so
    /// both this writer's layout and `seed-corpus` output work).
    pub fn open(dir: &Path) -> io::Result<CorpusDir> {
        let mut files: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "html"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{}: no .html pages", dir.display()),
            ));
        }
        Ok(CorpusDir { files })
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the corpus has no pages (never true after `open`).
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Map page `i`.
    pub fn page(&self, i: usize) -> io::Result<MappedText> {
        MappedText::open(&self.files[i])
    }

    /// Stable page id for page `i`: the file stem (consumers record it
    /// as extraction provenance).
    pub fn file_stem(&self, i: usize) -> String {
        self.files[i]
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| self.files[i].display().to_string())
    }

    /// Stream all pages in order, mapping each lazily. I/O errors
    /// surface per page; at most one page is mapped per loan the
    /// caller holds, so memory stays bounded by the consumer's window.
    pub fn pages(&self) -> impl Iterator<Item = io::Result<MappedText>> + Send + '_ {
        self.files.iter().map(|p| MappedText::open(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::site::generate_site_with;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("objectrunner-outdir-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(pages: usize) -> SiteSpec {
        SiteSpec::clean("corpus & co", Domain::Books, PageKind::List, pages, 99)
    }

    #[test]
    fn written_corpus_matches_in_memory_generation() {
        let dir = tmp_dir("match");
        let s = spec(7);
        let stats = write_corpus(&s, &Drift::NONE, &dir).expect("write");
        let source = generate_site_with(&s, &Drift::NONE);
        assert_eq!(stats.pages, 7);
        assert_eq!(stats.objects, source.object_count());
        for (i, page) in source.pages.iter().enumerate() {
            let on_disk = fs::read_to_string(dir.join(page_file_name(i))).expect("page file");
            assert_eq!(&on_disk, page, "page {i} diverged");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn same_seed_writes_byte_identical_files() {
        let dir_a = tmp_dir("det-a");
        let dir_b = tmp_dir("det-b");
        let s = spec(6);
        let drift = Drift::new(0.5);
        let a = write_corpus(&s, &drift, &dir_a).expect("write a");
        let b = write_corpus(&s, &drift, &dir_b).expect("write b");
        assert_eq!(a, b);
        for i in 0..6 {
            let pa = fs::read(dir_a.join(page_file_name(i))).expect("a");
            let pb = fs::read(dir_b.join(page_file_name(i))).expect("b");
            assert_eq!(pa, pb, "page {i} not byte-identical");
        }
        assert_eq!(
            fs::read(dir_a.join("manifest.json")).expect("a"),
            fs::read(dir_b.join("manifest.json")).expect("b"),
        );
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn manifest_records_the_run() {
        let dir = tmp_dir("manifest");
        let s = spec(3);
        let stats = write_corpus(&s, &Drift::new(0.25), &dir).expect("write");
        let manifest = fs::read_to_string(dir.join("manifest.json")).expect("manifest");
        assert!(manifest.contains("\"site\":\"corpus & co\""));
        assert!(manifest.contains("\"domain\":\"Books\""));
        assert!(manifest.contains("\"drift\":0.25"));
        assert!(manifest.contains(&format!("\"pages\":{}", stats.pages)));
        assert!(manifest.contains(&format!("\"objects\":{}", stats.objects)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_dir_reads_pages_back_in_order() {
        let dir = tmp_dir("read");
        let s = spec(5);
        write_corpus(&s, &Drift::NONE, &dir).expect("write");
        let source = generate_site_with(&s, &Drift::NONE);
        let corpus = CorpusDir::open(&dir).expect("open");
        assert_eq!(corpus.len(), 5);
        for (i, page) in corpus.pages().enumerate() {
            let page = page.expect("map page");
            assert_eq!(page.as_str(), source.pages[i], "page {i}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_dir_is_an_error() {
        let dir = tmp_dir("none");
        assert!(CorpusDir::open(&dir).is_err(), "missing dir");
        fs::create_dir_all(&dir).expect("mkdir");
        assert!(CorpusDir::open(&dir).is_err(), "no pages");
        let _ = fs::remove_dir_all(&dir);
    }
}
